"""Fig. 5a — game scale-out: throughput vs servers, all five systems."""

from repro.harness.experiments import fig5a, render


def test_fig5a_game_scaleout(once, jobs):
    data = once(fig5a, scale="quick", jobs=jobs)
    print("\n" + render("fig5a", data))
    at_max = {system: curve[-1][1] for system, curve in data.items()}
    # EventWave plateaus at its root sequencer: adding servers beyond the
    # knee must not help materially.
    ew = dict(data["eventwave"])
    servers = sorted(ew)
    assert ew[servers[-1]] < ew[servers[0]] * 2.5
    # Paper ordering at the largest scale: AEON > AEON_SO > EventWave,
    # Orleans* between AEON_SO-ish and EventWave, Orleans near the bottom.
    assert at_max["aeon"] > at_max["aeon_so"] > at_max["eventwave"]
    assert at_max["aeon"] > 2.0 * at_max["eventwave"]
    assert at_max["orleans_star"] > at_max["orleans"]
    assert at_max["aeon"] > at_max["orleans_star"]
