"""Fig. 8 — throughput while migrating 1/8/12 of 20 Room contexts."""

from repro.harness.experiments import fig8, render
from repro.sim.metrics import mean


def test_fig8_migration_impact(once, jobs):
    data = once(fig8, scale="quick", jobs=jobs)
    print("\n" + render("fig8", data))
    dips = {}
    for label, points in data.items():
        values = [v for _t, v in points if v > 0]
        steady = mean(values[: max(3, len(values) // 4)])
        dips[label] = (steady - min(values)) / steady if steady else 0.0
    # Migrating more contexts at once dips throughput more (mildly —
    # requests to a moving context are only delayed, per the paper).
    assert dips["12 contexts"] >= dips["1 contexts"]
    # Even the worst dip is bounded: the system keeps serving.
    assert dips["12 contexts"] < 0.6
