"""Fig. 6b — TPC-C latency vs throughput at 8 servers."""

from repro.harness.experiments import fig6b, render


def test_fig6b_tpcc_performance(once, jobs):
    data = once(fig6b, scale="quick", jobs=jobs)
    print("\n" + render("fig6b", data))
    # EventWave and Orleans saturate with few clients: their latency at
    # the end of the sweep is an order of magnitude above the start.
    for system in ("eventwave", "orleans"):
        lats = [lat for _thr, lat in data[system]]
        assert lats[-1] > 5 * lats[0], system
    # Orleans* sustains more throughput than AEON (its best-case, no
    # strict serializability), per the paper.
    max_star = max(thr for thr, _lat in data["orleans_star"])
    max_aeon = max(thr for thr, _lat in data["aeon"])
    assert max_star > 0.9 * max_aeon
