"""Fig. 5b — game latency vs throughput at 8 servers."""

from repro.harness.experiments import fig5b, render


def test_fig5b_game_performance(once, jobs):
    data = once(fig5b, scale="quick", jobs=jobs)
    print("\n" + render("fig5b", data))
    # Latency is flat at low load and explodes past saturation; AEON
    # sustains the highest throughput at bounded latency.
    def max_thr_under(system, latency_cap):
        return max(
            (thr for thr, lat in data[system] if lat <= latency_cap), default=0.0
        )

    cap = 40.0
    assert max_thr_under("aeon", cap) > max_thr_under("eventwave", cap)
    assert max_thr_under("aeon", cap) > max_thr_under("orleans", cap)
    # EventWave's latency skyrockets once the root saturates.
    ew_latencies = [lat for _thr, lat in data["eventwave"]]
    assert max(ew_latencies) > 3 * min(ew_latencies)
