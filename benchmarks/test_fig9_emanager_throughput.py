"""Fig. 9 — eManager max migration throughput by instance type/size."""

from repro.harness.experiments import fig9, render


def test_fig9_emanager_throughput(once, jobs):
    data = once(fig9, scale="quick", jobs=jobs)
    print("\n" + render("fig9", data))
    # Larger instances move more contexts per second...
    assert data["m1.large"]["1KB"] > data["m1.medium"]["1KB"] > data["m1.small"]["1KB"]
    assert data["m1.large"]["1MB"] > data["m1.medium"]["1MB"] >= data["m1.small"]["1MB"]
    # ...and big contexts migrate slower than small ones everywhere.
    for itype, sizes in data.items():
        assert sizes["1KB"] > sizes["1MB"], itype
    # Shape vs paper (90/40 on m1.large => ratio ~2.25 +- generous band).
    ratio = data["m1.large"]["1KB"] / data["m1.large"]["1MB"]
    assert 1.5 < ratio < 4.0
