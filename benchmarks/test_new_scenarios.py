"""Beyond-the-paper scenarios: co-tenancy, churn sweep, diurnal elasticity.

These run the three scenarios the declarative API added (none has a
legacy ``figN()``) end to end at quick scale, asserting the qualitative
claims each was built to show.  ``--experiment-set KEY=VALUE`` forwards
extra spec overrides; ``--experiment-jobs`` parallelises sweep cells.
"""

from repro.harness.scenarios import get_scenario, render_scenario, run_scenario


def test_mixed_cotenancy(once, jobs, overrides, cache):
    data = once(run_scenario, "mixed_cotenancy", scale="quick", jobs=jobs,
                overrides=overrides, **cache)
    print("\n" + render_scenario(get_scenario("mixed_cotenancy"), data))
    for system, run in data.items():
        # Both co-tenants make progress on every system under test.
        assert run["game"]["completed"] > 0, f"{system}: game starved"
        assert run["tpcc"]["completed"] > 0, f"{system}: tpcc starved"
    # AEON's multiple ownership keeps the co-tenant game faster than the
    # turn-locked Orleans variant under the same mixed load.
    assert (
        data["aeon"]["game"]["throughput_per_s"]
        > data["orleans"]["game"]["throughput_per_s"]
    )


def test_churn_sweep(once, jobs, overrides, cache):
    data = once(run_scenario, "churn_sweep", scale="quick", jobs=jobs,
                overrides=overrides, **cache)
    print("\n" + render_scenario(get_scenario("churn_sweep"), data))
    rows = data["rows"]
    assert len(rows) >= 2, "sweep needs at least two MTBF points"
    by_mtbf = {r["mtbf_ms"]: r for r in rows}
    fastest, slowest = min(by_mtbf), max(by_mtbf)
    # More churn, more crashes; availability stays ordered within noise
    # (the calmest churn must not be the worst availability point).
    assert by_mtbf[fastest]["crashes"] >= by_mtbf[slowest]["crashes"]
    assert (
        by_mtbf[slowest]["availability_pct"]
        >= by_mtbf[fastest]["availability_pct"] - 5.0
    )
    for row in rows:
        assert row["availability_pct"] > 50.0, f"collapsed at MTBF {row['mtbf_ms']}"


def test_diurnal_elasticity(once, jobs, overrides, cache):
    data = once(run_scenario, "diurnal", scale="quick", jobs=jobs,
                overrides=overrides, **cache)
    print("\n" + render_scenario(get_scenario("diurnal"), data))
    run = data["aeon"]
    # The fleet actually tracked the wave: it grew beyond its floor and
    # came back down (peak above average implies both directions moved).
    servers = [n for _t, n in run["server_series"]]
    assert run["peak_servers"] > min(servers)
    assert run["avg_servers"] < run["peak_servers"]
    # Two diurnal cycles -> the client curve has two distinct peaks.
    targets = [n for _t, n in run["client_series"]]
    floor = min(targets)
    peaks = 0
    above = False
    threshold = floor + 0.6 * (max(targets) - floor)
    for n in targets:
        if not above and n >= threshold:
            peaks += 1
            above = True
        elif above and n < threshold:
            above = False
    assert peaks >= 2, f"expected a two-peak wave, saw {peaks}"
