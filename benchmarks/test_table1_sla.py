"""Table 1 — % requests over the SLA and average servers per setup."""

from repro.harness.experiments import table1, render


def test_table1_sla_cost(once, jobs):
    rows = once(table1, scale="quick", jobs=jobs)
    print("\n" + render("table1", rows))
    by_setup = {row["setup"]: row for row in rows}
    # Violations decrease monotonically with fleet size.
    v8 = by_setup["8-server"]["violation_pct"]
    v16 = by_setup["16-server"]["violation_pct"]
    v32 = by_setup["32-server"]["violation_pct"]
    assert v8 >= v16 >= v32
    # The elastic setup approaches the 32-server SLA compliance with a
    # significantly smaller average fleet (the paper: 21.4 vs 32).
    elastic = by_setup["Elastic"]
    assert elastic["avg_servers"] < 32
    assert elastic["violation_pct"] < v8
