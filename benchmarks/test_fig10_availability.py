"""Fig. 10 — goodput and p99 through a crash/recovery timeline."""

from repro.harness.experiments import fig10, fig10_phases, render


def test_fig10_availability(once, jobs):
    data = once(fig10, scale="quick", jobs=jobs)
    print("\n" + render("fig10", data))
    for system, run in data.items():
        phases = fig10_phases(run)
        # The crash costs goodput while the victim's contexts are gone...
        assert phases["outage"] < phases["pre"], f"{system}: no outage dip"
        # ...and checkpoint-restore brings the system back to steady state.
        assert phases["post"] >= 0.85 * phases["pre"], f"{system}: no recovery"
        # The detector actually declared the victim dead, with a latency
        # bounded by lease + check interval (650 + 100 ms, plus slack).
        detections = [d for d in run["detections"] if d["latency_ms"] is not None]
        assert detections, f"{system}: crash never detected"
        assert all(d["latency_ms"] <= 1200.0 for d in detections)
        # Everything the victim hosted was re-placed.
        assert run["contexts_recovered"] > 0
