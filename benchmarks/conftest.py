"""Benchmark configuration: one round per experiment (simulations are
deterministic, variance across rounds is zero by construction)."""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once and attach its result."""

    def run(fn, *args, **kwargs):
        out = {}

        def wrapper():
            out["result"] = fn(*args, **kwargs)

        benchmark.pedantic(wrapper, rounds=1, iterations=1)
        return out["result"]

    return run
