"""Benchmark configuration: one round per experiment (simulations are
deterministic, variance across rounds is zero by construction).

``--experiment-jobs N`` fans independent experiment cells out to N
worker processes (0 = one per core); figure data — and therefore every
assertion — is byte-identical to the serial run, only the wall-clock
changes.  ``--experiment-set KEY=VALUE`` (repeatable) forwards scenario
overrides to the benchmarks that accept them (the ``overrides``
fixture), e.g. shrinking the new-scenario benchmarks::

    pytest benchmarks/test_new_scenarios.py --experiment-set duration_ms=9000

``--experiment-cache-dir PATH`` attaches the persistent result store to
the benchmarks that accept it (the ``cache`` fixture): a second
benchmark run against the same store loads every cell instead of
simulating it — useful for iterating on assertions without re-paying
the simulation cost.  Timings then measure the store, not the kernel.

See docs/EXPERIMENTS.md and docs/SCENARIOS.md.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--experiment-jobs",
        type=int,
        default=1,
        help="worker processes for independent experiment cells "
        "(1 = serial, 0 = one per CPU core; results are byte-identical)",
    )
    parser.addoption(
        "--experiment-set",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="scenario --set overrides forwarded to benchmarks that "
        "accept them (repeatable)",
    )
    parser.addoption(
        "--experiment-cache-dir",
        default=None,
        metavar="PATH",
        help="persistent result store for benchmarks that accept it "
        "(default: no caching — benchmarks measure the simulation)",
    )


@pytest.fixture
def jobs(request):
    """The ``--experiment-jobs`` value, passed to figure functions."""
    return request.config.getoption("--experiment-jobs")


@pytest.fixture
def overrides(request):
    """The ``--experiment-set`` assignments, passed to run_scenario."""
    return request.config.getoption("--experiment-set")


@pytest.fixture
def cache(request):
    """``run_scenario`` cache kwargs from ``--experiment-cache-dir``."""
    path = request.config.getoption("--experiment-cache-dir")
    return {"cache": "auto" if path else "off", "cache_dir": path}


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once and attach its result."""

    def run(fn, *args, **kwargs):
        out = {}

        def wrapper():
            out["result"] = fn(*args, **kwargs)

        benchmark.pedantic(wrapper, rounds=1, iterations=1)
        return out["result"]

    return run
