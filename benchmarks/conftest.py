"""Benchmark configuration: one round per experiment (simulations are
deterministic, variance across rounds is zero by construction).

``--experiment-jobs N`` fans independent experiment cells out to N
worker processes (0 = one per core); figure data — and therefore every
assertion — is byte-identical to the serial run, only the wall-clock
changes.  See docs/EXPERIMENTS.md.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--experiment-jobs",
        type=int,
        default=1,
        help="worker processes for independent experiment cells "
        "(1 = serial, 0 = one per CPU core; results are byte-identical)",
    )


@pytest.fixture
def jobs(request):
    """The ``--experiment-jobs`` value, passed to figure functions."""
    return request.config.getoption("--experiment-jobs")


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once and attach its result."""

    def run(fn, *args, **kwargs):
        out = {}

        def wrapper():
            out["result"] = fn(*args, **kwargs)

        benchmark.pedantic(wrapper, rounds=1, iterations=1)
        return out["result"]

    return run
