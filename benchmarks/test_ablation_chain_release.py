"""Ablation (beyond the paper): chain release vs hold-till-commit.

The paper attributes part of AEON's TPC-C advantage to releasing the
Warehouse as soon as the transaction continues downward asynchronously
(§6.1.2).  This bench quantifies that design choice.
"""

from repro.harness.experiments import ablation_chain_release, render


def test_ablation_chain_release(once, jobs):
    data = once(ablation_chain_release, scale="quick", jobs=jobs)
    print("\n" + render("ablation", data))
    # Chain release pipelines the WH -> District -> Customer chain and
    # must outperform strict hold-till-commit significantly.
    assert data["chain-release"] > 1.3 * data["hold-till-commit"]
