"""Fig. 7 — elastic game vs static fleets under a client ramp."""

from repro.harness.experiments import _elastic_game_run
from repro.sim.metrics import mean


def test_fig7_elastic_vs_static(once):
    def run():
        return {
            setup: _elastic_game_run(setup, "quick")
            for setup in ("elastic", "8", "32")
        }

    data = once(run)
    for setup, result in data.items():
        values = [v for _t, v in result["latency_series"]]
        print(f"{setup:>8}: mean={mean(values):6.2f} ms  "
              f"violations={result['sla'].violation_pct:5.1f}%")
    # The static 8-server fleet buckles at peak load; the elastic fleet
    # and the 32-server fleet hold the SLA far better.
    static8 = data["8"]["sla"].violation_pct
    static32 = data["32"]["sla"].violation_pct
    elastic = data["elastic"]["sla"].violation_pct
    assert static8 > 2 * static32
    assert elastic < static8
    # Elasticity actually grew the fleet.
    servers = [v for _t, v in data["elastic"]["server_series"]]
    assert max(servers) > 8
    # ...and used fewer servers on average than the static 32 fleet.
    assert data["elastic"]["sla"].avg_servers < 32
