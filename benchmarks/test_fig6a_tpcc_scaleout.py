"""Fig. 6a — TPC-C scale-out: throughput vs servers (district-partitioned)."""

from repro.harness.experiments import fig6a, render


def test_fig6a_tpcc_scaleout(once, jobs):
    data = once(fig6a, scale="quick", jobs=jobs)
    print("\n" + render("fig6a", data))
    at_max = {system: curve[-1][1] for system, curve in data.items()}
    # Neither EventWave nor Orleans scales (flat curves).
    for flat in ("eventwave", "orleans"):
        first = data[flat][0][1]
        last = data[flat][-1][1]
        assert last < first * 1.5, flat
    # AEON_SO scales further than AEON (the multi-ownership District
    # sequencing saturates first), and Orleans* catches AEON_SO's league
    # at the largest scale — both above AEON there.
    assert at_max["aeon_so"] > at_max["aeon"]
    assert at_max["orleans_star"] > at_max["aeon"]
    # AEON still beats both strictly-serializable baselines everywhere.
    for n_servers, thr in data["aeon"]:
        assert thr > dict(data["eventwave"])[n_servers]
        assert thr > dict(data["orleans"])[n_servers]
