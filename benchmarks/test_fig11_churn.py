"""Fig. 11 — availability SLO under sustained crash/restart churn."""

from repro.harness.experiments import fig11, render


def test_fig11_availability_under_churn(once, jobs):
    data = once(fig11, scale="quick", jobs=jobs)
    print("\n" + render("fig11", data))
    aeon = data["systems"]["aeon"]

    # The churn actually happened and was detected + recovered from.
    assert aeon["crashes"] >= 3, "churn schedule too quiet to stress anything"
    assert aeon["detections"] >= aeon["crashes"] * 0.5
    assert aeon["recoveries"] >= 3
    assert aeon["contexts_recovered"] > 0
    # Detection stays within lease + check interval (650 + 100 ms + slack).
    assert 0.0 < aeon["mean_detection_latency_ms"] <= 1200.0

    # AEON meets the availability SLO across the whole churn horizon:
    # ≥90% of windows keep ≥85% of fault-free goodput at bounded p99.
    assert aeon["slo"]["availability_pct"] >= 90.0, aeon["slo"]
    # Push-invalidation actually fired (the detector-driven redirection).
    assert aeon["cache_invalidations"] > 0

    # Every system sustained majority availability under the same churn.
    for system, run in data["systems"].items():
        assert run["slo"]["availability_pct"] >= 60.0, (
            f"{system}: availability collapsed under churn"
        )

    # Incremental checkpoints cut checkpoint bytes written by >= 50% on
    # the identical (skewed-traffic) churn scenario.
    delta_bytes = aeon["checkpoint_bytes_written"]
    full_bytes = data["aeon_full"]["checkpoint_bytes_written"]
    assert full_bytes > 0
    assert delta_bytes <= 0.5 * full_bytes, (
        f"delta checkpoints saved too little: {delta_bytes} vs {full_bytes}"
    )
    # Delta mode also skipped unchanged intervals outright.
    assert aeon["checkpoints_skipped"] > 0
    assert data["aeon_full"]["checkpoints_skipped"] == 0
