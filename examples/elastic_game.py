"""Elastic game service: the §6.2 scenario end to end.

An AEON game deployment starts on 6 small servers; a normally
distributed client ramp (peaking at 96 clients) drives load; the
eManager scales the cluster out and back in to hold a 10 ms SLA,
migrating Room contexts live — while every event keeps its strict
serializability.

Run with::

    python examples/elastic_game.py
"""

from repro.apps.game import GameConfig, build_game
from repro.core import AeonRuntime
from repro.elasticity import CloudStorage, EManager, SLAPolicy
from repro.sim import Cluster, M1_SMALL, Network, Simulator, RngRegistry
from repro.workloads import DynamicClients, RampProfile


def main(duration_ms=25_000.0, n_servers=6, rooms=12, machines=6):
    """Run the elastic scenario (tests call this at a tiny scale)."""
    sla_ms = 10.0

    sim = Simulator()
    cluster = Cluster(sim, boot_delay_ms=1500.0)
    network = Network(sim)
    servers = [cluster.add_server(M1_SMALL) for _ in range(n_servers)]
    runtime = AeonRuntime(sim, network, cluster)

    # The arena: rooms spread over the starting servers.
    config = GameConfig(rooms=rooms, players_per_room=6, shared_items_per_room=2)
    app = build_game(runtime, config, "aeon", servers=servers)

    # The elasticity manager with the SLA policy of §6.2.
    storage = CloudStorage(sim)
    policy = SLAPolicy(sla_ms=sla_ms, scale_out_step=2, min_servers=4, max_servers=24)
    manager = EManager(runtime, storage, policy, M1_SMALL,
                       report_interval_ms=1000.0, max_concurrent_migrations=4)
    manager.start()

    # Clients ramp up and back down following a normal-shaped curve
    # (8 -> 96 -> 8 at the default scale).
    profile = RampProfile.normal_peak(duration_ms, machines=machines,
                                      min_per_machine=1, max_per_machine=16)
    clients = DynamicClients(runtime, app.sample_op, profile, think_ms=40.0,
                             rng=RngRegistry(7), stop_at_ms=duration_ms)
    clients.start()

    sim.run(until=duration_ms + 5000.0)
    manager.stop()

    # Report: latency + fleet size over time.
    print(f"{'time(s)':>8}  {'clients':>8}  {'servers':>8}  {'mean lat(ms)':>12}")
    lat_series = runtime.latency.windowed_mean(2000.0, duration_ms)
    servers_at = {round(t): v for t, v in manager.server_count_series.points}
    clients_at = {round(t): v for t, v in clients.active_series}

    def nearest(mapping, t_ms):
        if not mapping:
            return 0
        key = min(mapping, key=lambda k: abs(k - t_ms))
        return mapping[key]

    for t_ms, lat in lat_series.points:
        print(f"{t_ms / 1000.0:8.1f}  {nearest(clients_at, t_ms):8d}  "
              f"{nearest(servers_at, t_ms):8.0f}  {lat:12.2f}")

    total = runtime.latency.count()
    violations = runtime.latency.fraction_over(sla_ms) * 100.0
    print(f"\nrequests: {total}   over-SLA: {violations:.1f}%   "
          f"migrations: {manager.migrations_started}   "
          f"final fleet: {len(cluster.alive_servers())} servers")


if __name__ == "__main__":
    main()
