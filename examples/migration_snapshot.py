"""Live migration + consistent snapshots (the §5 machinery).

A hot counter context receives a steady write stream while (a) the
migration protocol moves it between servers mid-stream, and (b) a
consistent snapshot of its whole subtree is taken concurrently.  The
event stream never observes an inconsistency, and the snapshot is a
single point in the serial order.

Run with::

    python examples/migration_snapshot.py
"""

from repro.core import AeonRuntime, ContextClass, RefSet, readonly
from repro.elasticity import CloudStorage, MigrationCoordinator, snapshot_context
from repro.sim import Cluster, M1_LARGE, M1_SMALL, Network, Server, Simulator


class Shard(ContextClass):
    """A counter shard."""

    size_bytes = 500_000  # half a megabyte of state to move

    def __init__(self):
        self.count = 0

    def bump(self):
        self.count += 1
        return self.count


class Ledger(ContextClass):
    """Owns shards; updates fan out to one shard per event."""

    shards = RefSet(Shard)

    def __init__(self):
        self.sequence = 0

    def record(self, shard_index):
        self.sequence += 1
        shards = self.shards.refs()
        result = yield shards[shard_index % len(shards)].bump()
        return result

    @readonly
    def total(self):
        total = 0
        for shard in self.shards:
            value = yield shard.peek() if hasattr(shard, "peek") else shard.count
            total += value
        return total


def main():
    sim = Simulator()
    cluster = Cluster(sim)
    network = Network(sim)
    s1 = cluster.add_server(M1_SMALL, "server-1")
    s2 = cluster.add_server(M1_SMALL, "server-2")
    runtime = AeonRuntime(sim, network, cluster, record_history=True)

    ledger = runtime.create_context(Ledger, server=s1, name="ledger")
    for i in range(3):
        shard = runtime.create_context(
            Shard, owners=[ledger], server=s1, name=f"shard-{i}"
        )
        runtime.instance_of(ledger).shards.add(shard)

    storage = CloudStorage(sim)
    emanager_host = Server(sim, "~emanager", M1_LARGE)
    network.register(emanager_host.name, emanager_host.mailbox, M1_LARGE)
    coordinator = MigrationCoordinator(runtime, storage, emanager_host)

    client = runtime.register_client("writer")
    submissions = []

    def write_stream():
        for i in range(200):
            submissions.append(client.submit(ledger.record(i), tag="write"))
            yield sim.timeout(0.5)

    log = []

    def migrate_mid_stream():
        yield sim.timeout(20.0)
        log.append(f"t={sim.now:.1f}ms  migrating shard-1 to {s2.name} ...")
        done = coordinator.migrate("shard-1", s2)
        yield done
        record = done.value
        log.append(
            f"t={sim.now:.1f}ms  migrated in "
            f"{record.finished_ms - record.started_ms:.1f} ms "
            f"({record.size_bytes / 1e6:.1f} MB)"
        )

    snap_keys = []

    def snapshot_mid_stream():
        yield sim.timeout(40.0)
        done = snapshot_context(runtime, storage, ledger)
        yield done
        snap_keys.append(done.value)
        log.append(f"t={sim.now:.1f}ms  snapshot stored at {done.value!r}")

    sim.process(write_stream())
    sim.process(migrate_mid_stream())
    sim.process(snapshot_mid_stream())
    sim.run()

    for line in log:
        print(line)
    completed = sum(1 for s in submissions if s.triggered)
    errors = [s.value.error for s in submissions if s.triggered and s.value.error]
    print(f"writes completed: {completed}/200, errors: {len(errors)}")
    print(f"shard-1 now hosted on: {runtime.placement['shard-1']}")

    bundle = storage.peek(snap_keys[0])
    snap_counts = {cid: state["count"] for cid, state in bundle.items()
                   if cid.startswith("shard")}
    snap_seq = bundle["ledger"]["sequence"]
    print(f"snapshot: ledger.sequence={snap_seq}, shard counts={snap_counts}")
    assert sum(snap_counts.values()) == snap_seq, "snapshot not consistent!"
    print("snapshot is consistent (shard sum == ledger sequence) ✓")
    runtime.check_history()
    print("history: strictly serializable across the migration ✓")


if __name__ == "__main__":
    main()
