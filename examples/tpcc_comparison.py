"""TPC-C on all five systems: the §6.1.2 comparison in one script.

Runs the scaled-down TPC-C benchmark on AEON (multi-ownership), AEON_SO,
EventWave, Orleans (tree-locked) and Orleans* (non-serializable), prints
throughput/latency, and — the punchline — checks the cross-context
invariant (warehouse YTD == sum of district YTDs == sum of customer YTD
payments).  Every strictly serializable system preserves it; Orleans*
visibly does not.

Run with::

    python examples/tpcc_comparison.py
"""

from repro.apps.tpcc import TpccConfig, TpccWorkload, build_tpcc
from repro.harness.runner import SYSTEMS, make_testbed
from repro.workloads import ClosedLoopClients

DURATION_MS = 8000.0
WARMUP_MS = 2500.0


def run_system(system, duration_ms=DURATION_MS, warmup_ms=WARMUP_MS, n_clients=48):
    testbed = make_testbed(system, n_servers=4, seed=1)
    config = TpccConfig(districts=4, customers_per_district=10)
    deployment = build_tpcc(
        testbed.runtime,
        config,
        multi_ownership=(system == "aeon"),
        servers=testbed.servers,
        colocate=system in ("aeon", "aeon_so", "eventwave"),
    )
    workload = TpccWorkload(deployment, system)
    clients = ClosedLoopClients(
        testbed.runtime, workload.sample_op, n_clients=n_clients,
        think_ms=5.0, rng=testbed.rng, stop_at_ms=duration_ms,
    )
    clients.start()
    testbed.sim.run(until=duration_ms + 15000.0)

    runtime = testbed.runtime
    window_s = (duration_ms - warmup_ms) / 1000.0
    throughput = runtime.throughput.count_between(warmup_ms, duration_ms) / window_s
    latency = runtime.latency.mean_latency(warmup_ms)
    probe = deployment.consistency_probe()
    consistent = (
        probe["warehouse_ytd"] == probe["district_ytd"] == probe["customer_ytd"]
    )
    return throughput, latency, consistent, probe


def main(systems=SYSTEMS, duration_ms=DURATION_MS, warmup_ms=WARMUP_MS,
         n_clients=48):
    """Compare the systems (tests call this with a reduced roster/scale)."""
    print(f"{'system':>13}  {'txn/s':>8}  {'mean lat':>9}  {'YTD invariant':>14}")
    for system in systems:
        throughput, latency, consistent, probe = run_system(
            system, duration_ms, warmup_ms, n_clients
        )
        verdict = "holds" if consistent else "VIOLATED"
        print(f"{system:>13}  {throughput:8.0f}  {latency:8.1f}m  {verdict:>14}")
        if not consistent:
            print(f"{'':>13}  warehouse={probe['warehouse_ytd']}  "
                  f"districts={probe['district_ytd']}  "
                  f"customers={probe['customer_ytd']}")
    print("\nOrleans* is the paper's 'best-case but erroneous' baseline: "
          "fast, and it breaks the money-conservation invariant.")


if __name__ == "__main__":
    main()
