"""Quickstart: declare contextclasses, run events on the AEON runtime.

This is the paper's Listing 1 in miniature: a Room that owns Players,
players that own Items, an event with sequential semantics spanning
several contexts, plus a read-only event running concurrently.

Run with::

    python examples/quickstart.py
"""

from repro.core import AeonRuntime, ContextClass, Ref, RefSet, readonly
from repro.sim import Cluster, M3_LARGE, Network, Simulator


class Item(ContextClass):
    """A quantity-bearing game object."""

    def __init__(self, qty=0):
        self.qty = qty

    def get(self, amount):
        """Withdraw; returns whether there was enough."""
        if self.qty >= amount:
            self.qty -= amount
            return True
        return False

    def put(self, amount):
        """Deposit."""
        self.qty += amount

    @readonly
    def peek(self):
        """Read-only balance."""
        return self.qty


class Player(ContextClass):
    """Owns a private gold mine and treasure (Listing 1)."""

    gold_mine = Ref(Item)
    treasure = Ref(Item)

    def __init__(self, player_id):
        self.player_id = player_id

    def get_gold(self, amount):
        """Move gold atomically between two owned contexts.

        The body is a generator: each ``yield <call>`` is a synchronous
        method call on an owned context.  The whole event is strictly
        serializable — no locks in user code.
        """
        ok = yield self.gold_mine.get(amount)
        if ok:
            yield self.treasure.put(amount)
        return ok


class Room(ContextClass):
    """Owns the players currently inside."""

    players = RefSet(Player)

    def __init__(self, name):
        self.name = name

    @readonly
    def nr_players(self):
        """Read-only events share locks and run in parallel."""
        return len(self.players)


def main():
    # 1. A simulated two-server deployment.
    sim = Simulator()
    cluster = Cluster(sim)
    network = Network(sim)
    s1 = cluster.add_server(M3_LARGE, "server-1")
    s2 = cluster.add_server(M3_LARGE, "server-2")
    runtime = AeonRuntime(sim, network, cluster, record_history=True)

    # 2. Build the ownership graph (a DAG; cycles are rejected).
    room = runtime.create_context(Room, server=s1, args=("lobby",))
    alice = runtime.create_context(Player, owners=[room], server=s1, args=(1,))
    bob = runtime.create_context(Player, owners=[room], server=s2, args=(2,))
    for player in (alice, bob):
        runtime.instance_of(room).players.add(player)
        mine = runtime.create_context(Item, owners=[player], args=(100,))
        chest = runtime.create_context(Item, owners=[player], args=(0,))
        instance = runtime.instance_of(player)
        instance.gold_mine = mine
        instance.treasure = chest

    # 3. Clients submit events; the runtime guarantees strict
    #    serializability, deadlock- and starvation-freedom.
    client = runtime.register_client("client-1")
    submissions = [
        client.submit(alice.get_gold(30), tag="alice"),
        client.submit(bob.get_gold(45), tag="bob"),
        client.submit(room.nr_players(), tag="count"),
    ]
    sim.run()

    for done in submissions:
        event = done.value
        print(f"{event.tag:>6}: result={event.result!r}  "
              f"latency={event.committed_ms - event.submitted_ms:.3f} ms  "
              f"dominator={event.dom}")

    # 4. The recorded history is checkably strictly serializable.
    runtime.check_history()
    print("history: strictly serializable ✓")
    alice_chest = runtime.instance_of(runtime.instance_of(alice).treasure)
    print(f"alice's treasure now holds {alice_chest.qty} gold")


if __name__ == "__main__":
    main()
