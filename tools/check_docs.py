#!/usr/bin/env python
"""Link-check the documentation: no dead relative links, no phantom figures.

Checks, over ``README.md`` and every ``docs/*.md``:

1. every relative markdown link resolves to an existing file;
2. every ``#fragment`` pointing into a checked markdown file matches a
   heading anchor (GitHub slug rules, simplified);
3. every figure-shaped token (``figN``/``figNx``/``tableN``/``ablation``)
   mentioned anywhere in the docs names a real experiment in the CLI
   (``repro.harness.experiments.ALL_EXPERIMENTS``);
4. every experiment the CLI exposes is documented in
   ``docs/EXPERIMENTS.md``.

Run from the repository root (CI's docs job does)::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Markdown inline links: [text](target) — excluding images' alt ! prefix
#: is irrelevant here; schemes and pure anchors are filtered below.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
#: Figure-shaped tokens: fig5a, fig10, table1, ablation.
FIGURE_RE = re.compile(r"\b(fig\d+[a-z]?|table\d+|ablation)\b")


def github_slug(heading: str) -> str:
    """GitHub's heading-anchor slug, simplified (ASCII-ish docs only)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def doc_files() -> list[Path]:
    files = [REPO / "README.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def check_links(files: list[Path]) -> list[str]:
    errors = []
    anchors = {
        f: {github_slug(h) for h in HEADING_RE.findall(f.read_text())}
        for f in files
    }
    for f in files:
        for target in LINK_RE.findall(f.read_text()):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
                continue
            path_part, _, fragment = target.partition("#")
            dest = f if not path_part else (f.parent / path_part).resolve()
            if not dest.exists():
                errors.append(f"{f.relative_to(REPO)}: dead link -> {target}")
                continue
            if fragment and dest in anchors and fragment not in anchors[dest]:
                errors.append(
                    f"{f.relative_to(REPO)}: dead anchor -> {target} "
                    f"(no heading slug {fragment!r})"
                )
    return errors


def check_figures(files: list[Path]) -> list[str]:
    sys.path.insert(0, str(REPO / "src"))
    from repro.harness.experiments import ALL_EXPERIMENTS

    errors = []
    known = set(ALL_EXPERIMENTS)
    mentioned_anywhere = set()
    for f in files:
        mentioned = set(FIGURE_RE.findall(f.read_text()))
        mentioned_anywhere |= mentioned
        for name in sorted(mentioned - known):
            errors.append(
                f"{f.relative_to(REPO)}: mentions {name!r}, which is not an "
                f"experiment the CLI exposes ({', '.join(sorted(known))})"
            )
    experiments_md = REPO / "docs" / "EXPERIMENTS.md"
    documented = (
        set(FIGURE_RE.findall(experiments_md.read_text()))
        if experiments_md.exists()
        else set()
    )
    for name in sorted(known - documented):
        errors.append(f"docs/EXPERIMENTS.md: experiment {name!r} is undocumented")
    return errors


def check_scenarios(files: list[Path]) -> list[str]:
    """Cross-check scenario names between the docs and the registry.

    1. every registered scenario is documented in docs/SCENARIOS.md;
    2. every ``--scenario NAME`` example anywhere in the docs names a
       registered scenario;
    3. every legacy figure name stays a registered scenario (the
       ``figN()`` aliases and the registry never drift apart).
    """
    sys.path.insert(0, str(REPO / "src"))
    from repro.harness.experiments import ALL_EXPERIMENTS
    from repro.harness.scenarios import list_scenarios

    errors = []
    registered = set(list_scenarios())
    for name in sorted(set(ALL_EXPERIMENTS) - registered):
        errors.append(
            f"registry: legacy experiment {name!r} has no registered scenario"
        )
    scenarios_md = REPO / "docs" / "SCENARIOS.md"
    if not scenarios_md.exists():
        errors.append("docs/SCENARIOS.md: missing (scenario reference)")
        return errors
    text = scenarios_md.read_text()
    for name in sorted(registered):
        if not re.search(rf"\b{re.escape(name)}\b", text):
            errors.append(f"docs/SCENARIOS.md: scenario {name!r} is undocumented")
    flag_re = re.compile(r"--scenario[= ]([A-Za-z0-9_]+)")
    for f in files:
        for name in sorted(set(flag_re.findall(f.read_text())) - {"NAME"}):
            if name not in registered:
                errors.append(
                    f"{f.relative_to(REPO)}: '--scenario {name}' names an "
                    f"unregistered scenario ({', '.join(sorted(registered))})"
                )
    return errors


def main() -> int:
    files = doc_files()
    errors = check_links(files) + check_figures(files) + check_scenarios(files)
    for error in errors:
        print(f"check_docs: {error}", file=sys.stderr)
    if errors:
        print(f"check_docs: {len(errors)} error(s)", file=sys.stderr)
        return 1
    print(f"check_docs: OK ({len(files)} files)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
