#!/usr/bin/env python
"""Byte-compare two experiment JSON dumps (the --json output format).

Usage::

    python tools/compare_figures.py GOLDEN.json ACTUAL.json [FIGURE ...]

Compares the ``experiments`` payloads figure by figure (all figures
present in GOLDEN by default, or only the named ones).  Exit code 0
when every compared figure is byte-identical after canonical JSON
re-serialization (sorted keys), 1 otherwise — the CI experiments-smoke
job runs this against ``tests/data/figures_quick_seed0.json`` to pin
every figure's data across the whole stack, not just the fast ones
tier-1 re-runs.
"""

from __future__ import annotations

import json
import sys


def canonical(value) -> str:
    return json.dumps(value, sort_keys=True)


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    golden_path, actual_path, *names = argv
    golden = json.load(open(golden_path))["experiments"]
    actual = json.load(open(actual_path))["experiments"]
    names = names or sorted(golden)
    failures = 0
    for name in names:
        if name not in golden:
            print(f"compare_figures: {name}: not in {golden_path}", file=sys.stderr)
            failures += 1
            continue
        if name not in actual:
            print(f"compare_figures: {name}: missing from {actual_path}", file=sys.stderr)
            failures += 1
            continue
        if canonical(golden[name]) == canonical(actual[name]):
            print(f"compare_figures: {name}: byte-identical")
        else:
            print(f"compare_figures: {name}: MISMATCH", file=sys.stderr)
            failures += 1
    if failures:
        print(f"compare_figures: {failures} figure(s) diverged", file=sys.stderr)
        return 1
    print(f"compare_figures: OK ({len(names)} figures)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
