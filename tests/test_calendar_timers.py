"""Unit tests for the calendar-queue timer wheel (sim/kernel.py).

The kernel's timer queue must order entries *exactly* by
``(fire_at, seq)`` — any deviation breaks the determinism trace
checksums — so every test here cross-checks :class:`CalendarTimers`
against :class:`HeapTimers` on the same entry stream, plus targeted
coverage of bucket rollover, far-future jumps, width re-tunes and
cancellation.
"""

import random

import pytest

from repro.sim.kernel import (
    AdaptiveTimers,
    CalendarTimers,
    HeapTimers,
    SimulationError,
    Simulator,
)


def _entry(t, seq):
    return (t, seq, None, ())


def _drain(queue):
    out = []
    while len(queue):
        assert queue.head is not None
        out.append(queue.pop())
    assert queue.head is None
    return out


def test_push_pop_orders_by_time_then_seq():
    cal = CalendarTimers()
    entries = [_entry(5.0, 2), _entry(1.0, 3), _entry(5.0, 1), _entry(0.5, 4)]
    for entry in entries:
        cal.push(entry)
    assert _drain(cal) == sorted(entries)


def test_bucket_rollover_across_widths():
    # Entries straddling many bucket boundaries (width defaults to 1.0)
    # must come out in exact global order as the wheel advances bucket
    # by bucket.
    cal = CalendarTimers(width=1.0)
    entries = [_entry(0.1 + 0.37 * i, i) for i in range(200)]
    for entry in reversed(entries):
        cal.push(entry)
    assert _drain(cal) == sorted(entries)


def test_far_future_timer_jump():
    # A lone timer far beyond SCAN_LIMIT empty buckets exercises the
    # min(buckets) jump instead of a lap walk.
    cal = CalendarTimers(width=1.0)
    near = _entry(1.5, 1)
    far = _entry(1e6, 2)
    cal.push(near)
    cal.push(far)
    assert cal.pop() is near
    assert cal.head is far
    assert cal.pop() is far
    assert cal.head is None


def test_in_window_push_keeps_order():
    # Pushing an entry that lands *inside* the current sorted run (a
    # shorter delay than the run's remaining entries) must bisect in,
    # not wait for the next lap.
    cal = CalendarTimers(width=10.0)
    a, b, c = _entry(1.0, 1), _entry(5.0, 2), _entry(9.0, 3)
    for entry in (a, b, c):
        cal.push(entry)
    assert cal.pop() is a
    d = _entry(2.0, 4)  # lands before b in the current run
    cal.push(d)
    assert cal.head is d
    assert _drain(cal) == [d, b, c]


def test_retune_on_oversized_bucket_preserves_order():
    # Everything in one giant bucket: the promote-time re-tune must
    # re-bucket without losing or reordering entries (including the ones
    # sharing the head's new bucket).
    cal = CalendarTimers(width=1e9)
    entries = [_entry(float(i % 977), i) for i in range(CalendarTimers.OVERSIZE * 2)]
    for entry in entries:
        cal.push(entry)
    assert _drain(cal) == sorted(entries)


def test_randomized_equivalence_with_heap():
    # Monotone interleaved push/pop streams (the kernel's usage pattern:
    # pushes never predate the last popped fire time) must produce
    # identical pop sequences from both queue implementations.
    rng = random.Random(1234)
    for round_ in range(5):
        cal, heap = CalendarTimers(), HeapTimers()
        seq = 0
        now = 0.0
        popped_cal, popped_heap = [], []
        for _ in range(3000):
            if len(cal) and rng.random() < 0.45:
                entry = cal.pop()
                assert heap.pop() is entry
                now = entry[0]
                popped_cal.append(entry)
            else:
                seq += 1
                # Delay mix: grid-clustered, continuous and far-future.
                roll = rng.random()
                if roll < 0.5:
                    delay = rng.choice((0.25, 0.5, 1.0, 2.0))
                elif roll < 0.9:
                    delay = rng.uniform(0.01, 30.0)
                else:
                    delay = rng.uniform(1e3, 1e5)
                entry = _entry(now + delay, seq)
                cal.push(entry)
                heap.push(entry)
            assert cal.head is heap.head or cal.head == heap.head
        drained = _drain(cal)
        assert drained == _drain(heap)


def test_cancel_head_mid_run_and_future():
    cal = CalendarTimers(width=1.0)
    a, b, c, d = _entry(0.5, 1), _entry(0.6, 2), _entry(0.7, 3), _entry(50.0, 4)
    for entry in (a, b, c, d):
        cal.push(entry)
    cal.cancel(a)  # head
    assert cal.head is b
    cal.cancel(c)  # mid current run
    cal.cancel(d)  # future bucket
    assert _drain(cal) == [b]


def test_cancel_missing_entry_raises():
    cal = CalendarTimers()
    cal.push(_entry(1.0, 1))
    with pytest.raises(ValueError):
        cal.cancel(_entry(2.0, 2))
    with pytest.raises(ValueError):
        cal.cancel(_entry(1.0, 3))  # same bucket, not queued


def test_heap_timers_cancel():
    heap = HeapTimers()
    a, b = _entry(1.0, 1), _entry(2.0, 2)
    heap.push(a)
    heap.push(b)
    heap.cancel(a)
    assert heap.head is b
    with pytest.raises(ValueError):
        heap.cancel(a)


def test_simulator_cancel_prevents_firing():
    fired = []
    for mode in ("calendar", "heap"):
        sim = Simulator(timers=mode)
        keep = sim.schedule(5.0, fired.append, f"keep-{mode}")
        drop = sim.schedule(3.0, fired.append, f"drop-{mode}")
        sim.cancel(drop)
        sim.run()
        assert keep[0] == 5.0
        with pytest.raises(SimulationError):
            sim.cancel(drop)  # already cancelled
        with pytest.raises(SimulationError):
            sim.cancel(keep)  # already fired
    assert fired == ["keep-calendar", "keep-heap"]


def test_simulator_cancel_immediate_entry():
    sim = Simulator()
    fired = []
    entry = sim.schedule(0.0, fired.append, "immediate")
    sim.cancel(entry)
    sim.run()
    assert fired == []


def test_timer_mode_selection():
    assert isinstance(Simulator()._timers, AdaptiveTimers)
    assert isinstance(Simulator(timers="adaptive")._timers, AdaptiveTimers)
    assert isinstance(Simulator(timers="heap")._timers, HeapTimers)
    assert isinstance(Simulator(timers="calendar")._timers, CalendarTimers)
    with pytest.raises(ValueError):
        Simulator(timers="splay")


def test_run_trace_identical_across_timer_modes():
    # The same program must produce the same completion order and clock
    # under all three timer queues.
    def trace(mode):
        sim = Simulator(timers=mode)
        log = []

        def worker(name, delay):
            for i in range(50):
                yield sim.timeout(delay)
                log.append((sim.now, name, i))

        for i, delay in enumerate((0.5, 0.75, 1.0, 1.25, 33.0)):
            sim.process(worker(f"w{i}", delay))
        sim.run()
        return log, sim.now

    assert trace("calendar") == trace("heap") == trace("adaptive")


# ----------------------------------------------------------------------
# AdaptiveTimers: heap below the threshold, wheel above, exact handoff
# ----------------------------------------------------------------------
def test_adaptive_starts_as_heap_and_migrates_both_ways():
    ada = AdaptiveTimers()
    assert ada.mode == "heap"
    assert isinstance(ada, AdaptiveTimers)
    entries = [_entry(float(i), i) for i in range(AdaptiveTimers.UP + 1)]
    for entry in entries:
        ada.push(entry)
    # Crossed UP: now a calendar wheel (still the same object, still an
    # AdaptiveTimers), with the same head.
    assert ada.mode == "calendar"
    assert isinstance(ada, AdaptiveTimers)
    assert ada.head is entries[0]
    # Drain below DOWN: back to a heap, order still exact.
    drained = []
    while len(ada) >= AdaptiveTimers.DOWN:
        drained.append(ada.pop())
    assert ada.mode == "heap"
    drained.extend(_drain(ada))
    assert drained == sorted(entries)


def test_adaptive_randomized_equivalence_with_heap():
    # Push/pop streams sized to cross the UP/DOWN thresholds repeatedly:
    # every pop must match a reference heap exactly despite migrations.
    rng = random.Random(99)
    ada, heap = AdaptiveTimers(), HeapTimers()
    seq = 0
    now = 0.0
    modes_seen = set()
    for _ in range(6000):
        grow = rng.random() < (0.7 if len(ada) < AdaptiveTimers.UP * 2 else 0.3)
        if len(ada) and not grow:
            entry = ada.pop()
            assert heap.pop() is entry
            now = entry[0]
        else:
            seq += 1
            entry = _entry(now + rng.uniform(0.01, 20.0), seq)
            ada.push(entry)
            heap.push(entry)
        modes_seen.add(ada.mode)
        assert ada.head is heap.head
    assert modes_seen == {"heap", "calendar"}, "stream never crossed the thresholds"
    assert _drain(ada) == _drain(heap)


def test_adaptive_cancel_in_both_modes():
    ada = AdaptiveTimers()
    small = [_entry(float(i), i) for i in range(4)]
    for entry in small:
        ada.push(entry)
    ada.cancel(small[2])
    assert _drain(ada) == [small[0], small[1], small[3]]
    big = [_entry(float(i), i) for i in range(AdaptiveTimers.UP * 2)]
    for entry in big:
        ada.push(entry)
    assert ada.mode == "calendar"
    ada.cancel(big[5])
    with pytest.raises(ValueError):
        ada.cancel(big[5])
    assert _drain(ada) == [e for e in big if e is not big[5]]
