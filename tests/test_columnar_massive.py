"""The million-context columnar core: table, pooling, sampling, massive tier.

Covers the PR 8 surface end to end:

* cid interning round-trips and slot recycling in the struct-of-arrays
  :class:`~repro.core.table.ContextTable`;
* dict-faithful :class:`~repro.core.table.ContextColumnView` semantics
  (insertion order is observable in traces);
* ``grow``/``compact`` under churn: contiguous bulk rows, old->new slot
  maps, ``_aeon_slot`` re-stamping, parent-link remapping;
* pooled event records — ``reinit`` reuses containers without aliasing,
  and ``recycle_event`` refuses records the runtime may still touch;
* the :class:`~repro.sim.metrics.LatencyRecorder` reservoir: exact
  aggregates, bounded percentile error vs an exact recorder on seeded
  streams, deterministic resampling, and cross-mode byte-identity below
  the threshold (the golden quick figures never leave exact mode);
* auto-tuned :class:`~repro.sim.kernel.AdaptiveTimers` thresholds;
* the massive-tier application and its registered scenarios; and
* result-store compression plus the ``gc --max-bytes`` byte budget.
"""

import argparse
import json
import pickle
import zlib
from random import Random

import pytest

from repro.apps.massive import MassiveConfig, build_massive, run_checksum
from repro.core.events import AccessMode, CallSpec, Event
from repro.core.table import ContextColumnView, ContextTable
from repro.harness.experiments import ALL_EXPERIMENTS
from repro.harness.runner import Cell, make_testbed, run_game
from repro.harness.scenarios import SCALES, get_scenario, list_scenarios
from repro.results import MISS, ResultStore
from repro.results.__main__ import parse_size
from repro.sim.kernel import AdaptiveTimers
from repro.sim.metrics import DEFAULT_SAMPLE_THRESHOLD, LatencyRecorder
from repro.workloads.generators import ClosedLoopClients


# ----------------------------------------------------------------------
# ContextTable: interning, recycling, grow
# ----------------------------------------------------------------------
class _Obj:
    """Instance stand-in; compact() re-stamps ``_aeon_slot`` on these."""


def _views(table):
    return (
        ContextColumnView(table, table.instance),
        ContextColumnView(table, table.owner),
        ContextColumnView(table, table.lock),
    )


def test_intern_round_trips():
    table = ContextTable()
    slots = [table.intern(f"c{i}") for i in range(5)]
    assert slots == [0, 1, 2, 3, 4]  # dense, allocation order
    assert [table.intern(f"c{i}") for i in range(5)] == slots  # idempotent
    assert [table.slot(f"c{i}") for i in range(5)] == slots
    assert [table.cids[s] for s in slots] == [f"c{i}" for i in range(5)]
    assert len(table) == 5 and table.capacity == 5
    with pytest.raises(KeyError):
        table.slot("unknown")


def test_slot_freed_only_when_all_columns_release_it():
    table = ContextTable()
    inst, owner, lock = _views(table)
    for cid in ("a", "b"):
        inst[cid] = _Obj()
        owner[cid] = "s1"
        lock[cid] = object()
    slot_a = table.slot("a")
    table.version[slot_a] = 7
    del inst["a"]
    del owner["a"]
    assert "a" in table.index  # lock column still holds state
    del lock["a"]
    assert "a" not in table.index and table._free == [slot_a]
    assert table.capacity == 2  # row kept, marked free
    # The next intern recycles the freed row with reset scalar columns.
    assert table.intern("c") == slot_a
    assert table.version[slot_a] == 0 and table.parent[slot_a] == -1
    assert table.capacity == 2


def test_grow_is_contiguous_and_never_recycles():
    table = ContextTable()
    inst, owner, lock = _views(table)
    inst["a"] = _Obj()
    owner["b"] = "s1"
    del inst["a"]  # slot 0 is free now
    assert table._free
    start = table.grow(3)
    assert start == 2  # appended past the free slot, not into it
    assert table.capacity == 5
    assert table.cids[start:] == [None, None, None]


# ----------------------------------------------------------------------
# ContextColumnView: dict-faithful semantics
# ----------------------------------------------------------------------
def test_view_preserves_dict_insertion_order_semantics():
    table = ContextTable()
    owner, = (ContextColumnView(table, table.owner),)
    mirror = {}
    for cid, value in [("x", "s1"), ("y", "s2"), ("z", "s3")]:
        owner[cid] = value
        mirror[cid] = value
    owner["x"] = "s9"  # overwrite keeps position
    mirror["x"] = "s9"
    del owner["y"]  # delete + re-insert moves to the end
    del mirror["y"]
    owner["y"] = "s4"
    mirror["y"] = "s4"
    assert list(owner) == list(mirror)
    assert list(owner.items()) == list(mirror.items())
    assert len(owner) == len(mirror)


def test_view_absent_sentinel_and_errors():
    table = ContextTable()
    inst, owner, _lock = _views(table)
    inst["a"] = _Obj()
    # "a" is interned, but the *owner* column holds nothing for it.
    assert "a" not in owner
    assert owner.get("a", "dflt") == "dflt"
    with pytest.raises(KeyError):
        owner["a"]
    with pytest.raises(KeyError):
        del owner["a"]
    with pytest.raises(ValueError):
        owner["a"] = None  # None is the absent sentinel


# ----------------------------------------------------------------------
# compact() under churn
# ----------------------------------------------------------------------
def test_compact_squeezes_remaps_and_restamps():
    table = ContextTable()
    inst, owner, lock = _views(table)
    objs = {}
    for i in range(8):
        cid = f"c{i}"
        objs[cid] = _Obj()
        inst[cid] = objs[cid]
        owner[cid] = f"s{i % 3}"
        lock[cid] = object()
        table.version[table.slot(cid)] = 10 + i
    # Parent links: c1..c7 are children of c0.
    root = table.slot("c0")
    for i in range(1, 8):
        table.parent[table.slot(f"c{i}")] = root
    # Churn: fully release c1 and c4 (slots become free).
    for cid in ("c1", "c4"):
        del inst[cid]
        del owner[cid]
        del lock[cid]
    survivors = [f"c{i}" for i in (0, 2, 3, 5, 6, 7)]
    old_slots = {cid: table.slot(cid) for cid in survivors}
    order_before = list(inst)

    remap = table.compact()

    assert table.capacity == len(survivors) and not table._free
    assert table.cids == sorted(survivors)  # sorted-cid total order
    for cid in survivors:
        new = table.slot(cid)
        assert remap[old_slots[cid]] == new
        assert inst[cid] is objs[cid]
        assert objs[cid]._aeon_slot == new  # re-stamped
        assert table.version[new] == 10 + int(cid[1:])  # moved with the row
        if cid != "c0":
            assert table.parent[new] == table.slot("c0")  # remapped link
    # Views keep their own insertion order across compaction.
    assert list(inst) == order_before


def test_compact_drops_parent_links_to_freed_rows():
    table = ContextTable()
    inst, owner, lock = _views(table)
    for cid in ("parent", "child"):
        inst[cid] = _Obj()
        owner[cid] = "s1"
        lock[cid] = object()
    table.parent[table.slot("child")] = table.slot("parent")
    for view in (inst, owner, lock):
        del view["parent"]
    table.compact()
    assert table.parent[table.slot("child")] == -1


# ----------------------------------------------------------------------
# Pooled event records
# ----------------------------------------------------------------------
def test_reinit_reuses_containers_without_aliasing():
    event = Event(7, CallSpec("x", "m", (1,)), AccessMode.EX, "cli-1", 5.0, tag="t")
    event.reads["x"] = 3
    event.writes["x"] = 4
    event.sub_events.append(CallSpec("y", "n"))
    event.hops = 9
    event.result = "r"
    event.error = ValueError("boom")
    event.dom = "x"
    event.held = None  # finished
    event.release_horizon = 12.5
    reads, writes, subs = event.reads, event.writes, event.sub_events

    spec2 = CallSpec("y", "n", (2,))
    event.reinit(8, spec2, AccessMode.RO, "cli-2", 6.0)

    # Containers are the same objects, cleared in place — their insertion
    # order restarts, so a recycled record commits byte-identically.
    assert event.reads is reads and not reads
    assert event.writes is writes and not writes
    assert event.sub_events is subs and not subs
    assert event.eid == 8 and event.spec is spec2
    assert event.mode is AccessMode.RO and event.client == "cli-2"
    assert event.submitted_ms == 6.0 and event.tag == ""
    assert event.result is None and event.error is None and event.dom is None
    assert event.started_ms is None and event.committed_ms is None
    assert event.held == set() and event.hops == 0
    assert event.open_branches == 1 and event.deferred_locks == []
    assert event.release_horizon == -1.0


def test_recycle_event_gates():
    runtime = make_testbed("aeon", 1, seed=0).runtime
    assert runtime.sim.now == 0.0

    def _finished(eid, horizon):
        event = Event(eid, CallSpec("x", "m"), AccessMode.EX, "c", 0.0)
        event.held = None
        event.release_horizon = horizon
        return event

    runtime.recycle_event(None)  # tolerated no-op
    assert runtime._event_pool == []

    in_flight = Event(1, CallSpec("x", "m"), AccessMode.EX, "c", 0.0)
    runtime.recycle_event(in_flight)  # held is a live set -> refused
    assert runtime._event_pool == []

    pending_release = _finished(2, 0.0)  # horizon not strictly past
    runtime.recycle_event(pending_release)
    assert runtime._event_pool == []

    done = _finished(3, -1.0)
    runtime.recycle_event(done)
    assert runtime._event_pool == [done]


# ----------------------------------------------------------------------
# LatencyRecorder: reservoir mode
# ----------------------------------------------------------------------
def _stream(n, seed=0):
    rng = Random(seed)
    out = []
    for i in range(n):
        start = i * 0.01
        out.append((start, start + rng.expovariate(1.0 / 5.0), "op"))
    return out


def _feed(recorder, stream):
    for start, end, tag in stream:
        recorder.record(start, end, tag)
    return recorder


def test_recorder_stays_exact_below_threshold():
    recorder = _feed(LatencyRecorder(sample_threshold=1000), _stream(999))
    assert recorder.sampling is False
    assert len(recorder) == 999
    assert len(recorder.latencies()) == 999  # every sample kept


def test_cross_mode_byte_identity_below_threshold():
    # The default threshold must not perturb sub-threshold metrics: a
    # recorder that can never sample answers byte-identically, which is
    # why the golden quick figures are safe at the default.
    stream = _stream(5000)
    default = _feed(LatencyRecorder(), stream)
    unbounded = _feed(LatencyRecorder(sample_threshold=2**62), stream)
    assert default.sampling is False

    def fingerprint(rec):
        return json.dumps(
            {
                "count": rec.count(),
                "mean": rec.mean_latency(),
                "p50": rec.percentile_latency(50.0),
                "p90": rec.percentile_latency(90.0),
                "p99": rec.percentile_latency(99.0),
                "window": rec.latencies_between(10.0, 40.0),
            },
            sort_keys=True,
        )

    assert fingerprint(default) == fingerprint(unbounded)


def test_reservoir_keeps_exact_aggregates():
    stream = _stream(30_000)
    sampled = _feed(LatencyRecorder(sample_threshold=2000, reservoir_size=512), stream)
    assert sampled.sampling is True
    assert len(sampled) == 30_000  # total count stays exact
    assert sampled.count() == 30_000
    exact_mean = sum(e - s for s, e, _t in stream) / len(stream)
    assert sampled.mean_latency() == pytest.approx(exact_mean, rel=1e-12)
    # The reservoir itself is bounded.
    assert len(sampled.samples) == 512


def test_reservoir_percentiles_within_error_bounds():
    stream = _stream(60_000, seed=3)
    exact = _feed(LatencyRecorder(sample_threshold=2**62), stream)
    sampled = _feed(
        LatencyRecorder(sample_threshold=1000, reservoir_size=8192), stream
    )
    assert not exact.sampling and sampled.sampling
    for pct in (50.0, 90.0, 99.0):
        truth = exact.percentile_latency(pct)
        estimate = sampled.percentile_latency(pct)
        assert estimate == pytest.approx(truth, rel=0.10), pct


def test_reservoir_is_deterministic():
    stream = _stream(20_000, seed=5)
    a = _feed(LatencyRecorder(sample_threshold=500, reservoir_size=256), stream)
    b = _feed(LatencyRecorder(sample_threshold=500, reservoir_size=256), stream)
    assert a.samples == b.samples
    assert a.percentile_latency(99.0) == b.percentile_latency(99.0)


def test_quick_figure_runs_never_leave_exact_mode():
    # A representative quick-tier cell: completion counts sit orders of
    # magnitude under the switchover, so golden figures stay exact.
    result, testbed, _app = run_game(
        "aeon", 2, n_clients=24, duration_ms=400.0, warmup_ms=100.0, seed=0
    )
    recorder = testbed.runtime.latency
    assert recorder.sampling is False
    assert 0 < len(recorder) < DEFAULT_SAMPLE_THRESHOLD
    assert result.completed > 0


# ----------------------------------------------------------------------
# AdaptiveTimers: auto-tuned thresholds
# ----------------------------------------------------------------------
def _entry(t, seq):
    return (t, seq, None, ())


def test_band_seeds_at_measured_crossover():
    assert AdaptiveTimers().band == (AdaptiveTimers.UP, AdaptiveTimers.DOWN) == (64, 24)


def test_band_recenters_at_upshift():
    ada = AdaptiveTimers()
    for i in range(65):
        ada.push(_entry(1.0 + 0.01 * i, i))
    assert ada.mode == "calendar"  # crossed UP -> migrated
    up, down = ada.band
    assert (up, down) == (130, 32)  # first observation: mean = 65
    assert up >= 4 * down  # hysteresis spans at least 4x


def test_band_recenters_at_downshift():
    ada = AdaptiveTimers()
    for i in range(65):
        ada.push(_entry(1.0 + 0.01 * i, i))
    band_after_up = ada.band
    while ada.mode == "calendar":
        ada.pop()
    up, down = ada.band
    assert ada.band != band_after_up  # downshift folded in a new sample
    assert AdaptiveTimers.UP <= up <= AdaptiveTimers.UP_MAX
    assert AdaptiveTimers.DOWN_MIN <= down <= up >> 2


def test_band_clamps_to_hard_limits():
    huge = AdaptiveTimers()
    huge._observe(10**6)
    assert huge.band == (AdaptiveTimers.UP_MAX, AdaptiveTimers.UP_MAX >> 2)
    tiny = AdaptiveTimers()
    tiny._observe(1)
    assert tiny.band == (AdaptiveTimers.UP, AdaptiveTimers.DOWN_MIN)


def test_adaptation_preserves_handoff_exactness():
    # Pops must drain in (fire_at, seq) order across auto-tuned
    # migrations exactly as a plain heap would.
    ada = AdaptiveTimers()
    rng = Random(11)
    entries = [_entry(rng.random() * 50.0, i) for i in range(300)]
    for entry in entries:
        ada.push(entry)
    drained = []
    while len(ada):
        drained.append(ada.pop())
    assert drained == sorted(entries)


# ----------------------------------------------------------------------
# Massive tier: bulk registration, lazy materialization, determinism
# ----------------------------------------------------------------------
def test_massive_config_validation():
    with pytest.raises(ValueError):
        MassiveConfig(contexts=0).validate()
    with pytest.raises(ValueError):
        MassiveConfig(flavor="nope").validate()
    with pytest.raises(ValueError):
        MassiveConfig(p_read=1.5).validate()


def _mini_massive(flavor="game", seed=7, contexts=500):
    testbed = make_testbed("aeon", 4, seed=seed)
    app = build_massive(
        testbed.runtime, MassiveConfig(contexts=contexts, flavor=flavor),
        testbed.servers,
    )
    clients = ClosedLoopClients(
        testbed.runtime, app.sample_op, n_clients=16, think_ms=2.0,
        rng=testbed.rng, stop_at_ms=300.0,
    )
    clients.start()
    testbed.sim.run(until=800.0)
    return testbed, app


def test_bulk_registration_is_lazy():
    testbed = make_testbed("aeon", 4, seed=0)
    app = build_massive(
        testbed.runtime, MassiveConfig(contexts=200), testbed.servers
    )
    runtime = testbed.runtime
    # 200 leaves + 1 region + 4 shards registered; only the eager 5
    # exist as Python objects.
    assert runtime.context_count() == 205
    assert len(runtime.instances) == 5
    assert len(app.shards) == 4
    # First touch materializes exactly the touched leaf.
    player = runtime.instance_of("p-7")
    assert player.score == 0 and player.taps == 0
    assert runtime.instance_of("p-7") is player
    assert len(runtime.instances) == 6
    assert runtime.context_count() == 205  # materialization adds nothing
    # Bulk rows share the interned placement columns.
    assert runtime.placement["p-7"] in {s.name for s in testbed.servers}


def test_bulk_rejects_duplicate_cids():
    testbed = make_testbed("aeon", 2, seed=0)
    build_massive(testbed.runtime, MassiveConfig(contexts=50), testbed.servers)
    with pytest.raises(ValueError):
        testbed.runtime.create_contexts_bulk(
            type(testbed.runtime.instance_of("p-0")), ["p-0"], testbed.servers
        )


def test_sample_op_mix_and_determinism():
    testbed = make_testbed("aeon", 2, seed=0)
    app = build_massive(
        testbed.runtime, MassiveConfig(contexts=100, p_read=0.0), testbed.servers
    )
    def draw():
        rng = Random(3)
        return [
            (spec.target, spec.method, spec.args, tag)
            for spec, tag in (app.sample_op(rng) for _ in range(5))
        ]

    ops = draw()
    assert ops == draw()  # seeded -> same
    assert all(tag == "tap" for *_call, tag in ops)  # p_read=0 -> writes only
    app.config.p_read = 1.0
    spec, tag = app.sample_op(Random(3))
    assert tag == "peek" and spec.method == "peek" and spec.args == ()


def test_mini_massive_run_is_deterministic():
    testbed_a, app_a = _mini_massive(seed=7)
    checksum_a = run_checksum(testbed_a.runtime, app_a)
    testbed_b, app_b = _mini_massive(seed=7)
    assert run_checksum(testbed_b.runtime, app_b) == checksum_a
    # The run did real work but only materialized what it touched.
    runtime = testbed_a.runtime
    assert runtime.events_completed > 0 and runtime.events_failed == 0
    assert 5 < len(runtime.instances) <= 505
    assert runtime.context_count() == 505
    # Clients recycled finished records into the bounded event pool.
    assert 0 < len(runtime._event_pool) <= 2048
    # A different seed produces different observable state.
    testbed_c, app_c = _mini_massive(seed=8)
    assert run_checksum(testbed_c.runtime, app_c) != checksum_a


def test_mini_massive_tpcc_flavor():
    testbed, app = _mini_massive(flavor="tpcc", seed=7)
    checksum = run_checksum(testbed.runtime, app)
    terminal_cids = [c for c in testbed.runtime.instances if c.startswith("t-")]
    assert terminal_cids  # some terminals materialized
    testbed_b, app_b = _mini_massive(flavor="tpcc", seed=7)
    assert run_checksum(testbed_b.runtime, app_b) == checksum


def test_massive_scenarios_registered():
    for name in ("massive_game", "massive_tpcc"):
        assert name in list_scenarios()
        assert name not in ALL_EXPERIMENTS  # they are --scenario only
        assert get_scenario(name).output == "massive"
    assert SCALES["massive"].massive_contexts >= 1_000_000
    # The quick smoke tier stays CI-sized.
    assert SCALES["quick"].massive_contexts <= 100_000


# ----------------------------------------------------------------------
# Result store: compression and the gc byte budget
# ----------------------------------------------------------------------
def _cell(i):
    return Cell((i,), "m:f", {"i": i})


def test_store_compresses_on_disk(tmp_path):
    store = ResultStore(tmp_path / "store")
    value = {"series": [float(i % 17) for i in range(5000)]}
    store.put(_cell(0), value, wall_ms=1.0)
    assert store.load(_cell(0)) == value
    entry = store.entries()[0]
    assert entry["raw_bytes"] > entry["bytes"]  # repetitive data shrinks
    blob = (store.root / "objects" / f"{entry['key']}.pkl").read_bytes()
    assert pickle.loads(zlib.decompress(blob)) == value


def test_gc_max_bytes_evicts_oldest_first(tmp_path):
    store = ResultStore(tmp_path / "store")
    for i in range(5):
        store.put(_cell(i), list(range(i * 1000, i * 1000 + 1000)))
    entries = store.entries()  # oldest first
    assert [e["cell"] for e in entries] == [str((i,)) for i in range(5)]
    budget = sum(e["bytes"] for e in entries[-2:])
    assert store.gc(max_bytes=budget) == 3
    assert store.load(_cell(0)) is MISS and store.load(_cell(2)) is MISS
    assert store.load(_cell(3)) == list(range(3000, 4000))
    assert store.load(_cell(4)) == list(range(4000, 5000))
    assert store.gc(max_bytes=budget) == 0  # already within budget


def test_parse_size():
    assert parse_size("123") == 123
    assert parse_size("512K") == 512 * 1024
    assert parse_size("256M") == 256 * 1024**2
    assert parse_size("2G") == 2 * 1024**3
    assert parse_size("1kb") == 1024  # trailing 'b' tolerated
    with pytest.raises(argparse.ArgumentTypeError):
        parse_size("lots")
    with pytest.raises(argparse.ArgumentTypeError):
        parse_size("-5")
