"""Unit tests for ContextLock and the serializability checker."""

import pytest

from repro.core.events import AccessMode, CallSpec, Event
from repro.core.history import HistoryRecorder, SerializabilityViolation
from repro.core.locking import ContextLock
from repro.sim.kernel import Simulator


def make_event(eid, mode=AccessMode.EX):
    return Event(eid, CallSpec("ctx", "m"), mode, "client", 0.0)


# ----------------------------------------------------------------------
# ContextLock
# ----------------------------------------------------------------------
def test_first_exclusive_granted_immediately():
    sim = Simulator()
    lock = ContextLock(sim, "c")
    grant, owned = lock.request(make_event(1))
    assert grant.triggered and owned
    assert lock.holders() == [1]


def test_second_exclusive_waits_for_release():
    sim = Simulator()
    lock = ContextLock(sim, "c")
    e1, e2 = make_event(1), make_event(2)
    g1, _ = lock.request(e1)
    g2, _ = lock.request(e2)
    assert g1.triggered and not g2.triggered
    assert lock.queue_length == 1
    lock.release(e1)
    assert g2.triggered
    assert lock.holders() == [2]


def test_readonly_events_share():
    sim = Simulator()
    lock = ContextLock(sim, "c")
    r1 = make_event(1, AccessMode.RO)
    r2 = make_event(2, AccessMode.RO)
    g1, _ = lock.request(r1)
    g2, _ = lock.request(r2)
    assert g1.triggered and g2.triggered
    assert sorted(lock.holders()) == [1, 2]


def test_exclusive_waits_for_all_readers():
    sim = Simulator()
    lock = ContextLock(sim, "c")
    r1 = make_event(1, AccessMode.RO)
    r2 = make_event(2, AccessMode.RO)
    w = make_event(3, AccessMode.EX)
    lock.request(r1)
    lock.request(r2)
    gw, _ = lock.request(w)
    assert not gw.triggered
    lock.release(r1)
    assert not gw.triggered
    lock.release(r2)
    assert gw.triggered


def test_fifo_reader_does_not_overtake_queued_writer():
    """Starvation freedom: a reader arriving after a queued writer waits."""
    sim = Simulator()
    lock = ContextLock(sim, "c")
    r1 = make_event(1, AccessMode.RO)
    w = make_event(2, AccessMode.EX)
    r2 = make_event(3, AccessMode.RO)
    lock.request(r1)
    gw, _ = lock.request(w)
    gr2, _ = lock.request(r2)
    assert not gw.triggered and not gr2.triggered
    lock.release(r1)
    assert gw.triggered and not gr2.triggered
    lock.release(w)
    assert gr2.triggered


def test_consecutive_readers_admitted_together():
    sim = Simulator()
    lock = ContextLock(sim, "c")
    w = make_event(1, AccessMode.EX)
    r1 = make_event(2, AccessMode.RO)
    r2 = make_event(3, AccessMode.RO)
    lock.request(w)
    g1, _ = lock.request(r1)
    g2, _ = lock.request(r2)
    lock.release(w)
    assert g1.triggered and g2.triggered


def test_request_idempotent_for_holder():
    sim = Simulator()
    lock = ContextLock(sim, "c")
    event = make_event(1)
    lock.request(event)
    again, owned = lock.request(event)
    assert again.triggered and not owned
    assert lock.holders() == [1]


def test_request_shares_pending_grant():
    sim = Simulator()
    lock = ContextLock(sim, "c")
    e1, e2 = make_event(1), make_event(2)
    lock.request(e1)
    first, owned_first = lock.request(e2)
    second, owned_second = lock.request(e2)
    assert first is second
    assert owned_first and not owned_second


def test_release_cancels_pending_reservation():
    sim = Simulator()
    lock = ContextLock(sim, "c")
    e1, e2, e3 = make_event(1), make_event(2), make_event(3)
    lock.request(e1)
    lock.request(e2)
    g3, _ = lock.request(e3)
    lock.release(e2)  # e2 aborts its reservation
    lock.release(e1)
    assert g3.triggered
    assert lock.holders() == [3]


def test_double_release_tolerated():
    sim = Simulator()
    lock = ContextLock(sim, "c")
    event = make_event(1)
    lock.request(event)
    lock.release(event)
    lock.release(event)  # no-op
    assert not lock.is_held()


def test_acquisition_counter():
    sim = Simulator()
    lock = ContextLock(sim, "c")
    for eid in range(3):
        event = make_event(eid)
        lock.request(event)
        lock.release(event)
    assert lock.total_acquisitions == 3


# ----------------------------------------------------------------------
# HistoryRecorder
# ----------------------------------------------------------------------
def test_empty_history_is_valid():
    recorder = HistoryRecorder()
    recorder.check()
    assert recorder.is_strictly_serializable()


def test_serial_writers_valid():
    recorder = HistoryRecorder()
    recorder.commit(1, "a", 0.0, 1.0, reads={}, writes={"x": 1})
    recorder.commit(2, "b", 2.0, 3.0, reads={}, writes={"x": 2})
    recorder.check()
    assert recorder.serial_order() == [1, 2]


def test_conflict_cycle_detected():
    recorder = HistoryRecorder()
    # 1 wrote x before 2 (x: v1 -> v2), but 2 wrote y before 1.
    recorder.commit(1, "", 0.0, 5.0, reads={}, writes={"x": 1, "y": 2})
    recorder.commit(2, "", 0.0, 5.0, reads={}, writes={"x": 2, "y": 1})
    with pytest.raises(SerializabilityViolation):
        recorder.check()
    assert recorder.serial_order() is None


def test_read_write_ordering_edges():
    recorder = HistoryRecorder()
    recorder.commit(1, "", 0.0, 1.0, reads={}, writes={"x": 1})
    recorder.commit(2, "", 1.5, 2.0, reads={"x": 1}, writes={})
    recorder.commit(3, "", 2.5, 3.0, reads={}, writes={"x": 2})
    edges = recorder.conflict_edges()
    assert (1, 2) in edges  # reader follows its writer
    assert (2, 3) in edges  # reader precedes the next writer
    assert (1, 3) in edges  # write-write order
    recorder.check()


def test_real_time_violation_detected():
    recorder = HistoryRecorder()
    # Event 2 commits long before event 1 starts, yet event 1 precedes
    # it in the version order: a strictness violation.
    recorder.commit(1, "", 100.0, 110.0, reads={}, writes={"x": 1})
    recorder.commit(2, "", 0.0, 1.0, reads={}, writes={"x": 2})
    with pytest.raises(SerializabilityViolation) as excinfo:
        recorder.check()
    assert "real-time" in str(excinfo.value)


def test_disjoint_events_any_order_valid():
    recorder = HistoryRecorder()
    recorder.commit(1, "", 0.0, 10.0, reads={}, writes={"x": 1})
    recorder.commit(2, "", 0.0, 10.0, reads={}, writes={"y": 1})
    recorder.check()
    assert set(recorder.serial_order()) == {1, 2}


def test_readers_of_same_version_unordered():
    recorder = HistoryRecorder()
    recorder.commit(1, "", 0.0, 1.0, reads={}, writes={"x": 1})
    recorder.commit(2, "", 1.0, 2.0, reads={"x": 1}, writes={})
    recorder.commit(3, "", 1.0, 2.0, reads={"x": 1}, writes={})
    edges = recorder.conflict_edges()
    assert (2, 3) not in edges and (3, 2) not in edges
    recorder.check()
