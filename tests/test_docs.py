"""Documentation link-check as a tier-1 test (same checks CI's docs job runs).

Guards the contract in docs/: no dead relative links or anchors, every
figure mentioned in the docs exists in the CLI, and every experiment
the CLI exposes has a reference entry in docs/EXPERIMENTS.md.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def test_docs_are_link_checked():
    result = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_docs.py")],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    assert result.returncode == 0, result.stderr or result.stdout
