"""Tests for the game application across all five system wirings."""

import pytest
from random import Random

from repro.apps.game import GAME_VARIANTS, GameConfig, build_game
from repro.harness.runner import make_testbed
from repro.workloads import ClosedLoopClients


def build(system, n_servers=2, **config_kwargs):
    testbed = make_testbed(system, n_servers, record_history=True)
    defaults = dict(rooms=n_servers, players_per_room=4, shared_items_per_room=2)
    defaults.update(config_kwargs)
    config = GameConfig(**defaults)
    app = build_game(testbed.runtime, config, system, servers=testbed.servers)
    return testbed, app


def drive(testbed, app, n_ops=60, seed=3):
    client = testbed.runtime.register_client("driver")
    rng = Random(seed)
    done = []
    for _ in range(n_ops):
        spec, tag = app.sample_op(rng)
        done.append(client.submit(spec, tag=tag))
    testbed.sim.run(until=testbed.sim.now + 120000)
    return done


def test_config_validation():
    with pytest.raises(ValueError):
        GameConfig(p_private=0.9, p_shared=0.2, p_readonly=0.2).validate()
    with pytest.raises(ValueError):
        GameConfig(rooms=0).validate()
    GameConfig().validate()


def test_unknown_variant_rejected():
    testbed = make_testbed("aeon", 2)
    with pytest.raises(ValueError):
        build_game(testbed.runtime, GameConfig(rooms=2), "nope",
                   servers=testbed.servers)


@pytest.mark.parametrize("system", GAME_VARIANTS)
def test_game_runs_on_every_system(system):
    testbed, app = build(system)
    done = drive(testbed, app)
    assert all(d.triggered for d in done), f"stuck events on {system}"
    errors = [d.value.error for d in done if d.value.error]
    assert not errors, f"{system}: {errors[:2]}"


@pytest.mark.parametrize("system", ["aeon", "aeon_so", "eventwave", "orleans"])
def test_game_strict_serializability(system):
    """All systems except Orleans* guarantee strict serializability."""
    testbed, app = build(system)
    drive(testbed, app, n_ops=80)
    testbed.runtime.check_history()


@pytest.mark.parametrize("system", GAME_VARIANTS)
def test_gold_conserved(system):
    """Private gold moves conserve the total across mine+treasure."""
    testbed, app = build(system)
    initial = app.total_gold()
    drive(testbed, app, n_ops=80)
    assert app.total_gold() == initial


def test_aeon_colocates_rooms():
    testbed, app = build("aeon", n_servers=2)
    runtime = testbed.runtime
    for room_idx, room in enumerate(app.rooms):
        room_server = runtime.placement[room.cid]
        for player in app.players[room_idx]:
            assert runtime.placement[player.cid] == room_server


def test_orleans_scatters_grains():
    testbed, app = build("orleans_star", n_servers=2,
                         players_per_room=8)
    runtime = testbed.runtime
    hosts = {runtime.placement[p.cid] for ps in app.players for p in ps}
    assert len(hosts) == 2  # spread, not co-located


def test_multi_ownership_dominators():
    testbed, app = build("aeon")
    runtime = testbed.runtime
    config = app.config
    sharers = max(1, int(round(config.players_per_room * config.sharers_fraction)))
    for room_idx, room in enumerate(app.rooms):
        players = app.players[room_idx]
        for i, player in enumerate(players):
            dom = runtime.ownership.dominator(player.cid)
            if i < sharers:
                assert dom == room.cid  # shares items -> room sequences
            else:
                assert dom == player.cid  # private -> parallel


def test_single_ownership_has_no_item_sharing():
    testbed, app = build("aeon_so")
    runtime = testbed.runtime
    for ps in app.players:
        for player in ps:
            assert len(runtime.instance_of(player).shared_items) == 0


def test_update_time_of_day_fans_out():
    testbed, app = build("aeon")
    client = testbed.runtime.register_client("tick")
    done = client.submit(app.building.update_time_of_day(7))
    testbed.sim.run(until=60000)
    assert done.triggered and done.value.error is None
    runtime = testbed.runtime
    for room in app.rooms:
        assert runtime.instance_of(room).time_of_day == 7
    for ps in app.players:
        for player in ps:
            assert runtime.instance_of(player).time_of_day == 7


def test_count_players_readonly():
    testbed, app = build("aeon")
    client = testbed.runtime.register_client("counter")
    done = client.submit(app.building.count_players())
    testbed.sim.run(until=60000)
    event = done.value
    assert event.error is None
    assert event.result == sum(len(ps) for ps in app.players)
    assert event.writes == {}


def test_shared_op_targets_room_in_so_variants():
    for system in ("aeon_so", "eventwave"):
        testbed, app = build(system)
        rng = Random(0)
        seen_room_target = False
        for _ in range(200):
            spec, tag = app.sample_op(rng)
            if tag == "shared":
                assert spec.target.endswith(tuple(r.cid for r in app.rooms)) or \
                    spec.target in {r.cid for r in app.rooms}
                seen_room_target = True
        assert seen_room_target


def test_sampled_mix_matches_weights():
    testbed, app = build("aeon")
    rng = Random(1)
    tags = {"private": 0, "shared": 0, "readonly": 0}
    n = 3000
    for _ in range(n):
        _spec, tag = app.sample_op(rng)
        tags[tag] += 1
    config = app.config
    assert tags["private"] / n == pytest.approx(config.p_private, abs=0.05)
    assert tags["shared"] / n == pytest.approx(config.p_shared, abs=0.05)
    assert tags["readonly"] / n == pytest.approx(config.p_readonly, abs=0.05)
