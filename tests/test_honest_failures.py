"""Honest failure semantics: fencing epochs, crash-time state loss,
self-healing recovery.

These tests exercise the knobs `EManager.enable_fault_tolerance` keeps
off by default (``fencing``, ``honest_recovery``, ``crash_drops_state``)
— the configurations where recovery may never peek the simulator's
ground truth and crashes really drop volatile state.
"""

import json

import pytest

from repro.core import AeonRuntime, is_retryable
from repro.core.errors import FencedError
from repro.core.ownership import FencingTable
from repro.elasticity import CloudStorage, EManager
from repro.faults import (
    FailureDetector,
    FaultInjector,
    FaultSchedule,
    NetworkPartition,
    ServerCrash,
)
from repro.sim import M3_LARGE

from conftest import Cell, Testbed


def _bed(n_servers=3):
    bed = Testbed(AeonRuntime, n_servers=n_servers, record_history=False)
    storage = CloudStorage(bed.sim)
    manager = EManager(bed.runtime, storage, None, M3_LARGE)
    detector = FailureDetector(
        bed.sim, bed.network, bed.cluster,
        heartbeat_interval_ms=50.0, lease_ms=160.0, check_interval_ms=25.0,
    )
    return bed, storage, manager, detector


# ----------------------------------------------------------------------
# FencingTable mechanics
# ----------------------------------------------------------------------
def test_fencing_table_fence_grant_and_write_checks():
    table = FencingTable()
    table.track("root", ["root", "root/a"], "s1")
    assert table.epoch("root") == 0 and table.holder("root") == "s1"
    table.check_write("root/a")  # unfenced: no-op

    epoch = table.fence("root")
    assert epoch == 1 and table.is_fenced("root")
    assert table.fence("root") == 1  # idempotent while fenced
    with pytest.raises(FencedError) as exc:
        table.check_write("root/a")
    assert is_retryable(exc.value)
    assert table.rejected == 1

    assert table.grant("root", "s2") == 1
    assert not table.is_fenced("root") and table.holder("root") == "s2"
    table.check_write("root/a")  # granted: writes flow again

    # Epochs only move forward, from wherever they were persisted.
    table.adopt_epoch("root", 5)
    assert table.epoch("root") == 5
    table.adopt_epoch("root", 3)
    assert table.epoch("root") == 5
    assert table.bump_manager() == 1
    assert table.manager_epoch == 1


def test_honest_knobs_default_off():
    # The legacy configuration (all 11 golden figures) must not see any
    # honest-failure behavior unless explicitly asked for.
    from repro.harness.scenarios import FaultSpec

    f = FaultSpec(kind="crash")
    assert f.fencing is False
    assert f.honest_recovery is False
    assert f.crash_drops_state is False

    bed, _storage, manager, detector = _bed()
    bed.runtime.create_context(Cell, server=bed.servers[0], name="plain")
    manager.enable_fault_tolerance(detector, checkpoint_interval_ms=100.0,
                                   roots=["plain"])
    assert not manager._honest_mode
    assert manager.fencing is None and bed.runtime.fencing is None


# ----------------------------------------------------------------------
# Fencing end to end: false declaration, step-down flush, zero loss
# ----------------------------------------------------------------------
def _fenced_partition_bed():
    bed, storage, manager, detector = _bed()
    victim = bed.servers[0]
    cell = bed.runtime.create_context(Cell, server=victim, name="hot")
    manager.enable_fault_tolerance(detector, checkpoint_interval_ms=100.0,
                                   roots=["hot"], fencing=True)
    detector.start()
    # Asymmetric cut: the detector loses the victim, clients still
    # reach it — the split-brain window fencing exists to close.
    schedule = FaultSchedule(
        [NetworkPartition(150.0, 2000.0, (detector.name,), (victim.name,))]
    )
    FaultInjector(bed.sim, bed.network, bed.cluster, schedule).start()
    return bed, storage, manager, detector, victim, cell


def test_fencing_rejects_stale_owner_and_loses_no_acked_writes():
    bed, storage, manager, detector, victim, cell = _fenced_partition_bed()
    runtime, sim = bed.runtime, bed.sim

    done = [bed.submit(cell.add(1)) for _ in range(5)]
    sim.run(until=140.0)
    assert all(d.value.error is None for d in done)

    # Declaration (~150 + lease 160 + check 25) fences the root; a
    # write hitting the still-reachable old owner during the grace
    # window is rejected, not silently acked-then-rolled-back.
    sim.run(until=400.0)
    assert detector.detections and manager.fencing.is_fenced("hot")
    fenced = bed.submit(cell.add(1))
    sim.run(until=430.0)
    assert fenced.triggered and isinstance(fenced.value.error, FencedError)
    assert is_retryable(fenced.value.error)
    assert manager.fencing.rejected >= 1

    # The fenced owner's step-down flush reached cloud storage: the
    # restore is byte-fresh, nothing acked was lost, and the flush is
    # durable evidence the declaration was false.
    sim.run(until=1200.0)
    assert manager.flush_restores == 1
    assert manager.false_detections == 1
    assert runtime.writes_rolled_back == 0
    assert runtime.placement["hot"] != victim.name
    assert runtime.instance_of("hot").value == 5
    assert manager.recovery_log[0]["flushed_roots"] == 1
    assert not manager.fencing.is_fenced("hot")
    assert manager.fencing.holder("hot") == runtime.placement["hot"]
    assert storage.peek("fencing/hot") == manager.fencing.epoch("hot")

    after = bed.submit(cell.add(2))
    sim.run(until=1500.0)
    assert after.value.error is None
    assert runtime.instance_of("hot").value == 7
    detector.stop()
    manager.stop()


def test_fencing_recovery_never_peeks_ground_truth(monkeypatch):
    # Acceptance: with fencing on, no recovery or checkpoint path may
    # consult the simulator's omniscient liveness.  Every legacy peek
    # routes through this one accessor — make it explode.
    def boom(self, name):
        raise AssertionError(
            "ground-truth aliveness consulted in a fencing run"
        )

    monkeypatch.setattr(EManager, "_ground_truth_alive", boom)
    bed, _storage, manager, detector, victim, cell = _fenced_partition_bed()
    [bed.submit(cell.add(1)) for _ in range(4)]
    bed.sim.run(until=1500.0)
    detector.stop()
    manager.stop()
    # The full declare → fence → flush → restore → grant pipeline ran
    # to completion without ever touching the accessor.
    assert manager.contexts_recovered == 1
    assert bed.runtime.placement["hot"] != victim.name
    assert bed.runtime.instance_of("hot").value == 4


# ----------------------------------------------------------------------
# Crash realism: state dies at crash time, restarts rehydrate
# ----------------------------------------------------------------------
def test_fast_restart_rehydrates_from_checkpoint_not_memory():
    # A restart *faster than the declaration* used to behave like an OS
    # blip whose memory survived.  With crash_drops_state the crash is
    # honest: post-checkpoint writes die with the host and the restart
    # rolls back to durable state — a declaration racing the restart
    # finds nothing left to resurrect either way.
    bed, storage, manager, detector = _bed()
    runtime, sim = bed.runtime, bed.sim
    victim = bed.servers[1]
    cell = runtime.create_context(Cell, server=victim, name="hot")
    manager.enable_fault_tolerance(detector, checkpoint_interval_ms=100.0,
                                   roots=["hot"], crash_drops_state=True)
    detector.start()
    schedule = FaultSchedule(
        [ServerCrash(150.0, victim.name, restart_after_ms=60.0)]
    )
    FaultInjector(sim, bed.network, bed.cluster, schedule).start()

    # Five increments land before the t=100 checkpoint, three after.
    done = [bed.submit(cell.add(1)) for _ in range(5)]
    sim.run(until=120.0)
    assert all(d.value.error is None for d in done)
    assert storage.peek("checkpoint/hot")["hot"]["value"] == 5
    done = [bed.submit(cell.add(1)) for _ in range(3)]
    sim.run(until=149.0)
    assert runtime.instance_of("hot").value == 8

    # Restart at t=210 beats the lease: no declaration — but the three
    # post-checkpoint writes are gone, accounted as rolled back.
    sim.run(until=600.0)
    assert not detector.detections
    assert manager.rehydrations == 1
    assert runtime.writes_rolled_back == 3
    assert runtime.placement["hot"] == victim.name
    assert runtime.instance_of("hot").value == 5
    assert not runtime.instance_of("hot")._aeon_state_dropped

    after = bed.submit(cell.add(1))
    sim.run(until=800.0)
    assert after.value.error is None
    assert runtime.instance_of("hot").value == 6
    detector.stop()
    manager.stop()


# ----------------------------------------------------------------------
# eManager failover: durable epochs, fenced WAL appends, re-driven
# restores, never-reused migration ids
# ----------------------------------------------------------------------
def test_fencing_epochs_survive_emanager_failover():
    bed, storage, manager, detector, victim, cell = _fenced_partition_bed()
    sim = bed.sim
    bed.submit(cell.add(1))
    sim.run(until=1200.0)  # declare → fence → flush → restore → grant
    root_epoch = manager.fencing.epoch("hot")
    assert root_epoch >= 1
    assert storage.peek("fencing/hot") == root_epoch

    manager.crash()
    successor = manager.recover()
    sim.run(until=sim.now + 50.0)  # land the fencing/manager write
    assert storage.peek("fencing/manager") == 1

    # Model a successor with a cold cache: wipe the in-memory table and
    # make enable_fault_tolerance rebuild it from durable state alone.
    bed.runtime.fencing = None
    successor.enable_fault_tolerance(detector, checkpoint_interval_ms=100.0,
                                     roots=["hot"], fencing=True)
    assert successor.fencing is not manager.fencing
    assert successor.fencing.epoch("hot") == root_epoch
    assert successor.fencing.manager_epoch == 1
    assert successor.coordinator.acting_epoch == 1
    detector.stop()
    successor.stop()


def test_predecessor_wal_appends_are_fenced_after_failover():
    # Split-brain *manager*: the predecessor is partitioned, not dead —
    # recover() is called without crash().  Once the bumped manager
    # epoch lands in storage, the predecessor's WAL appends fence.
    bed, _storage, manager, detector = _bed()
    runtime, sim = bed.runtime, bed.sim
    runtime.create_context(Cell, server=bed.servers[0], name="mover")
    manager.enable_fault_tolerance(detector, checkpoint_interval_ms=100.0,
                                   roots=["mover"], fencing=True)
    assert manager.coordinator.acting_epoch == 0

    successor = manager.recover()
    sim.run(until=sim.now + 50.0)
    assert successor.coordinator.acting_epoch == 1

    stale = manager.coordinator.migrate("mover", bed.servers[1])
    sim.run(until=sim.now + 500.0)
    assert stale.triggered and not stale.ok
    assert manager.coordinator.fenced_appends >= 1
    assert runtime.placement["mover"] == bed.servers[0].name  # no effect

    fresh = successor.coordinator.migrate("mover", bed.servers[1])
    sim.run(until=sim.now + 500.0)
    assert fresh.ok
    assert runtime.placement["mover"] == bed.servers[1].name
    detector.stop()
    manager.stop()
    successor.stop()


def test_failover_redrives_half_done_restore_with_fresh_id():
    # The manager dies mid-restore.  The successor must (a) seed its
    # migration counter past the half-done restore's id — a drain
    # during failover can never double-assign it — and (b) re-drive the
    # restore from its WAL journal instead of stalling until the
    # detector re-declares the victim.
    bed, storage, manager, detector = _bed()
    runtime, sim = bed.runtime, bed.sim
    victim = bed.servers[1]
    cell = runtime.create_context(Cell, server=victim, name="hot")
    manager.enable_fault_tolerance(detector, checkpoint_interval_ms=100.0,
                                   roots=["hot"])
    detector.start()
    FaultInjector(
        sim, bed.network, bed.cluster,
        FaultSchedule([ServerCrash(150.0, victim.name)]),
    ).start()
    done = [bed.submit(cell.add(1)) for _ in range(5)]
    sim.run(until=120.0)
    assert all(d.value.error is None for d in done)

    # Step until the declared recovery's WAL record exists but is not
    # yet past the state push ("moved" would make re-driving unsafe).
    walled = None
    while sim.now < 2000.0 and walled is None:
        sim.run(until=sim.now + 2.0)
        for key in storage.keys_with_prefix("migration/"):
            payload = storage.peek(key)
            if payload and payload.get("kind") == "restore" \
                    and payload.get("step") == "prepared":
                walled = dict(payload)
    assert walled is not None, "never caught the restore mid-flight"
    stale_id = int(walled["migration_id"])

    manager.crash()
    successor = manager.recover()
    assert successor._pending_restores  # journaled for re-drive
    successor.enable_fault_tolerance(detector, checkpoint_interval_ms=100.0,
                                     roots=["hot"])
    sim.run(until=sim.now + 1500.0)
    detector.stop()
    successor.stop()

    assert successor.contexts_recovered >= 1
    assert runtime.placement["hot"] != victim.name
    assert runtime.instance_of("hot").value == 5
    assert storage.keys_with_prefix("migration/") == []  # WAL retired
    ids = [r.migration_id for r in successor.coordinator.records]
    assert ids and len(set(ids)) == len(ids)
    assert min(ids) > stale_id  # the stale id is never reused


# ----------------------------------------------------------------------
# The split_brain scenario: invariant + determinism
# ----------------------------------------------------------------------
def test_split_brain_invariant_and_determinism():
    from repro.harness.scenarios import get_scenario, run_point

    spec = get_scenario("split_brain").with_(duration_ms=6000.0)
    fenced = run_point(spec=spec, system="aeon", fencing=True)
    again = run_point(spec=spec, system="aeon", fencing=True)
    unfenced = run_point(spec=spec, system="aeon", fencing=False)

    # Byte-level determinism: same point, same trace.
    assert json.dumps(fenced, sort_keys=True) == json.dumps(again, sort_keys=True)

    # The headline invariant: fencing turns lost updates into rejected
    # (retryable) writes; without it the same partition silently rolls
    # back acked work.
    assert fenced["lost_updates"] == 0
    assert fenced["fenced_writes"] > 0
    assert fenced["flush_restores"] >= 1
    assert unfenced["lost_updates"] > 0
    assert unfenced["fenced_writes"] == 0
    assert fenced["false_detections"] >= 1  # learned from the flush
