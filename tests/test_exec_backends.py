"""Executor strategies: backend selection, serial/pool equivalence, and
retry-on-worker-death (docs/ARCHITECTURE.md § Executors).

The recovery tests SIGKILL real pool workers mid-cell (via the
``exec_cells:kill_self`` body) and assert the sweep either survives —
pool respawned, in-flight cells re-run, byte-identical data — or fails
loudly with :class:`~repro.exec.WorkerLostError` naming the lost cells,
with every completed cell already persisted.
"""

import pytest

from repro.exec import (
    ProcessExecutor,
    SerialExecutor,
    WorkerLostError,
    make_executor,
    resolve_executor,
)
from repro.harness.runner import Cell, CellPool, run_cells
from repro.results.store import MISS, ResultStore


def _cells(values):
    return [Cell((x,), "json:dumps", {"obj": x}) for x in values]


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------
def test_resolve_executor_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
    assert resolve_executor(None, 1) == "serial"
    assert resolve_executor(None, 4) == "pool"
    monkeypatch.setenv("REPRO_EXECUTOR", "queue")
    assert resolve_executor(None, 1) == "queue"
    assert resolve_executor("serial", 4) == "serial"  # explicit beats env
    with pytest.raises(ValueError):
        resolve_executor("warp", 1)


def test_make_executor_instance_passthrough_and_queue_dir(tmp_path):
    backend = SerialExecutor()
    assert make_executor(backend) is backend
    made = make_executor(None, jobs=1, queue_dir=tmp_path / "q")
    try:
        assert type(made).__name__ == "QueueExecutor"
    finally:
        made.shutdown()


# ----------------------------------------------------------------------
# Serial / pool equivalence
# ----------------------------------------------------------------------
def test_serial_and_pool_backends_agree():
    cells = _cells([3, 1, 2])
    serial = run_cells(cells, executor="serial")
    pooled = run_cells(cells, jobs=2, executor="pool")
    assert [r.value for r in serial] == [r.value for r in pooled] == ["3", "1", "2"]
    assert [r.key for r in pooled] == [(3,), (1,), (2,)]


# ----------------------------------------------------------------------
# Worker-death recovery
# ----------------------------------------------------------------------
def test_pool_respawns_after_worker_sigkill(tmp_path):
    # The cell SIGKILLs its first worker mid-run (leaving a marker), so
    # the pool breaks once; the respawned pool's retry returns the value.
    marker = tmp_path / "survived"
    cells = [Cell(("k",), "exec_cells:kill_self", {"marker": str(marker), "x": 42})]
    with CellPool(jobs=2, executor="pool") as pool:
        results = pool.gather(pool.submit(cells))
        assert pool.executor.stats()["respawns"] == 1
    assert [(r.key, r.value) for r in results] == [(("k",), 42)]


def test_pool_worker_loss_is_bounded_and_resumable(tmp_path):
    store = ResultStore(tmp_path / "results")
    safe = Cell(("safe",), "json:dumps", {"obj": 7})
    run_cells([safe], store=store)  # one completed cell already persisted
    doomed = Cell(("doomed",), "exec_cells:kill_self", {})  # dies every attempt
    backend = ProcessExecutor(jobs=2, store=store, max_respawns=1)
    with pytest.raises(WorkerLostError) as info:
        with CellPool(jobs=2, store=store, executor=backend) as pool:
            pool.gather(pool.submit([doomed]))
    assert ("doomed",) in info.value.cells
    # the partial store survives the crash — rerunning resumes from it
    assert ResultStore(tmp_path / "results").load(safe) == "7"


def test_cli_reports_lost_cells_and_exits_nonzero(monkeypatch, capsys, tmp_path):
    from repro.harness import experiments

    class DoomedPool:
        def __init__(self, *args, **kwargs):
            pass

        def __enter__(self):
            return self

        def __exit__(self, *exc_info):
            return False

        def submit(self, cells):
            return [(cell, None) for cell in cells]

        def gather(self, handles):
            raise WorkerLostError(
                "worker death broke the process pool",
                cells=[handles[0][0].key],
            )

    monkeypatch.setattr(experiments, "CellPool", DoomedPool)
    rc = experiments.main(
        ["--figure", "fig9", "--cache-dir", str(tmp_path / "cache")]
    )
    assert rc == 2
    err = capsys.readouterr().err
    assert "executor error" in err
    assert "lost cell" in err
    assert "rerun to resume" in err
