"""Importable cell bodies for the executor tests.

Pool workers and queue worker subprocesses resolve cell bodies by
dotted path (``exec_cells:kill_self``), so the bodies the executor
tests need — sleepers, crashers, self-killers — live in this plain
module rather than inside a test file.  The tests directory rides on
``sys.path`` in-process (pytest rootdir insertion) and is appended to
``PYTHONPATH`` for the worker subprocesses the tests spawn.
"""

import os
import signal
import time
from pathlib import Path


def echo(x):
    return x


def sleepy(x, sleep_s=0.0, marker=None):
    """Return ``x`` after ``sleep_s`` — instantly once ``marker`` exists.

    Lets a test make the *first* attempt at a cell arbitrarily slow
    (the straggler / doomed-worker attempt) while any re-dispatched
    attempt, started after the test touches the marker, is fast.
    """
    if marker is None or not Path(marker).exists():
        time.sleep(sleep_s)
    return x


def explode(message="boom"):
    raise RuntimeError(message)


def kill_self(marker=None, x=None):
    """SIGKILL the executing process — once, if ``marker`` is given.

    With a marker path the first attempt creates it and dies, so a
    retry in a respawned worker survives and returns ``x``; without one
    every attempt dies (the bounded-retry exhaustion case).
    """
    if marker is not None:
        if Path(marker).exists():
            return x
        Path(marker).touch()
    os.kill(os.getpid(), signal.SIGKILL)
