"""Smoke tests: every ``examples/*.py`` runs in-process at a tiny scale.

The examples are documentation that executes; these tests keep them from
silently rotting as the library evolves.  Heavy examples expose scale
parameters on ``main()`` precisely so this suite can finish in seconds.
"""

import pathlib
import sys

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[1] / "examples"
if str(EXAMPLES_DIR) not in sys.path:
    sys.path.insert(0, str(EXAMPLES_DIR))

import elastic_game  # noqa: E402
import migration_snapshot  # noqa: E402
import quickstart  # noqa: E402
import tpcc_comparison  # noqa: E402


def test_all_examples_are_covered():
    scripts = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
    covered = {"quickstart", "migration_snapshot", "elastic_game", "tpcc_comparison"}
    assert scripts == covered, f"add a smoke test for: {scripts - covered}"


def test_quickstart_runs(capsys):
    quickstart.main()
    out = capsys.readouterr().out
    assert "strictly serializable" in out


def test_migration_snapshot_runs(capsys):
    migration_snapshot.main()
    out = capsys.readouterr().out
    assert "snapshot is consistent" in out


def test_elastic_game_runs_tiny(capsys):
    elastic_game.main(duration_ms=2500.0, n_servers=2, rooms=4, machines=2)
    out = capsys.readouterr().out
    assert "requests:" in out


def test_tpcc_comparison_runs_tiny(capsys):
    tpcc_comparison.main(
        systems=("aeon", "orleans_star"), duration_ms=1500.0,
        warmup_ms=500.0, n_clients=8,
    )
    out = capsys.readouterr().out
    assert "aeon" in out and "orleans_star" in out
