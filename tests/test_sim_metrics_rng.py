"""Unit tests for metrics recorders and the RNG registry."""

import pytest

from repro.sim.metrics import (
    LatencyRecorder,
    ThroughputRecorder,
    TimeSeries,
    mean,
    percentile,
)
from repro.sim.rng import RngRegistry


def test_mean_empty_and_values():
    assert mean([]) == 0.0
    assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)


def test_percentile_nearest_rank():
    values = list(range(1, 101))
    assert percentile(values, 0) == 1
    assert percentile(values, 50) == pytest.approx(50, abs=1)
    assert percentile(values, 100) == 100


def test_percentile_bounds_checked():
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_latency_recorder_basics():
    rec = LatencyRecorder()
    rec.record(0.0, 5.0, tag="a")
    rec.record(10.0, 12.0, tag="b")
    assert rec.count() == 2
    assert rec.mean_latency() == pytest.approx(3.5)
    assert rec.latencies(tag="a") == [5.0]


def test_latency_recorder_rejects_time_travel():
    rec = LatencyRecorder()
    with pytest.raises(ValueError):
        rec.record(5.0, 4.0)


def test_latency_since_filter():
    rec = LatencyRecorder()
    rec.record(0.0, 1.0)
    rec.record(0.0, 100.0)
    assert rec.count(since_ms=50.0) == 1


def test_fraction_over_threshold():
    rec = LatencyRecorder()
    for latency in (1.0, 2.0, 20.0, 30.0):
        rec.record(0.0, latency)
    assert rec.fraction_over(10.0) == pytest.approx(0.5)
    assert LatencyRecorder().fraction_over(10.0) == 0.0


def test_windowed_mean_buckets():
    rec = LatencyRecorder()
    rec.record(0.0, 1.0)    # latency 1, ends at 1
    rec.record(0.0, 9.0)    # latency 9, ends at 9
    rec.record(10.0, 15.0)  # latency 5, ends at 15
    series = rec.windowed_mean(window_ms=10.0, horizon_ms=20.0)
    assert series.points[0][1] == pytest.approx(5.0)
    assert series.points[1][1] == pytest.approx(5.0)


def test_throughput_rates():
    rec = ThroughputRecorder()
    for t in (1.0, 2.0, 3.0, 11.0):
        rec.record(t)
    assert rec.count_between(0.0, 10.0) == 3
    assert rec.rate_per_s(0.0, 10.0) == pytest.approx(300.0)
    assert rec.rate_per_s(5.0, 5.0) == 0.0


def test_throughput_windowed_series():
    rec = ThroughputRecorder()
    for t in (1.0, 2.0, 12.0):
        rec.record(t)
    series = rec.windowed_rate(window_ms=10.0, horizon_ms=20.0)
    assert [v for _t, v in series.points] == [pytest.approx(200.0), pytest.approx(100.0)]


def test_time_series_helpers():
    series = TimeSeries()
    series.add(0.0, 1.0)
    series.add(10.0, 3.0)
    assert series.mean_value() == pytest.approx(2.0)
    assert series.max_value() == 3.0
    resampled = series.resample([5.0, 15.0])
    assert resampled.values() == [1.0, 3.0]


def test_time_series_resample_before_first_point():
    series = TimeSeries([(10.0, 5.0)])
    assert series.resample([0.0]).values() == [0.0]


def test_rng_streams_are_independent_and_stable():
    reg = RngRegistry(42)
    a1 = [reg.stream("a").random() for _ in range(3)]
    reg2 = RngRegistry(42)
    b = reg2.stream("b")  # created before "a": order must not matter
    _ = b.random()
    a2 = [reg2.stream("a").random() for _ in range(3)]
    assert a1 == a2


def test_rng_different_seeds_differ():
    assert RngRegistry(1).stream("x").random() != RngRegistry(2).stream("x").random()


def test_rng_fork_is_deterministic():
    f1 = RngRegistry(7).fork("child").stream("s").random()
    f2 = RngRegistry(7).fork("child").stream("s").random()
    assert f1 == f2
