"""Unit tests for metrics recorders and the RNG registry."""

import pytest

from repro.sim.metrics import (
    LatencyRecorder,
    ThroughputRecorder,
    TimeSeries,
    mean,
    percentile,
)
from repro.sim.rng import RngRegistry


def test_mean_empty_and_values():
    assert mean([]) == 0.0
    assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)


def test_percentile_nearest_rank():
    values = list(range(1, 101))
    assert percentile(values, 0) == 1
    assert percentile(values, 50) == pytest.approx(50, abs=1)
    assert percentile(values, 100) == 100


def test_percentile_bounds_checked():
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_latency_recorder_basics():
    rec = LatencyRecorder()
    rec.record(0.0, 5.0, tag="a")
    rec.record(10.0, 12.0, tag="b")
    assert rec.count() == 2
    assert rec.mean_latency() == pytest.approx(3.5)
    assert rec.latencies(tag="a") == [5.0]


def test_latency_recorder_rejects_time_travel():
    rec = LatencyRecorder()
    with pytest.raises(ValueError):
        rec.record(5.0, 4.0)


def test_latency_since_filter():
    rec = LatencyRecorder()
    rec.record(0.0, 1.0)
    rec.record(0.0, 100.0)
    assert rec.count(since_ms=50.0) == 1


def test_fraction_over_threshold():
    rec = LatencyRecorder()
    for latency in (1.0, 2.0, 20.0, 30.0):
        rec.record(0.0, latency)
    assert rec.fraction_over(10.0) == pytest.approx(0.5)
    assert LatencyRecorder().fraction_over(10.0) == 0.0


def test_windowed_mean_buckets():
    rec = LatencyRecorder()
    rec.record(0.0, 1.0)    # latency 1, ends at 1
    rec.record(0.0, 9.0)    # latency 9, ends at 9
    rec.record(10.0, 15.0)  # latency 5, ends at 15
    series = rec.windowed_mean(window_ms=10.0, horizon_ms=20.0)
    assert series.points[0][1] == pytest.approx(5.0)
    assert series.points[1][1] == pytest.approx(5.0)


def test_throughput_rates():
    rec = ThroughputRecorder()
    for t in (1.0, 2.0, 3.0, 11.0):
        rec.record(t)
    assert rec.count_between(0.0, 10.0) == 3
    assert rec.rate_per_s(0.0, 10.0) == pytest.approx(300.0)
    assert rec.rate_per_s(5.0, 5.0) == 0.0


def test_throughput_windowed_series():
    rec = ThroughputRecorder()
    for t in (1.0, 2.0, 12.0):
        rec.record(t)
    series = rec.windowed_rate(window_ms=10.0, horizon_ms=20.0)
    assert [v for _t, v in series.points] == [pytest.approx(200.0), pytest.approx(100.0)]


def test_time_series_helpers():
    series = TimeSeries()
    series.add(0.0, 1.0)
    series.add(10.0, 3.0)
    assert series.mean_value() == pytest.approx(2.0)
    assert series.max_value() == 3.0
    resampled = series.resample([5.0, 15.0])
    assert resampled.values() == [1.0, 3.0]


def test_time_series_resample_before_first_point():
    series = TimeSeries([(10.0, 5.0)])
    assert series.resample([0.0]).values() == [0.0]


def _out_of_order_recorder():
    """Hand-fed records whose end times are NOT nondecreasing.

    Exercises the recorder's linear-scan fallback paths (the bisect fast
    path requires simulator-ordered completions).
    """
    rec = LatencyRecorder()
    rec.record(0.0, 5.0, tag="ok")      # latency 5
    rec.record(20.0, 25.0, tag="bad")   # latency 5, beyond-horizon filler
    rec.record(5.0, 15.0, tag="ok")     # latency 10, OUT OF ORDER
    rec.record(2.0, 8.0, tag="ok")      # latency 6, out of order again
    assert not rec._monotonic
    return rec


def test_nonmonotonic_latencies_and_counts():
    rec = _out_of_order_recorder()
    # since filter must scan by value, not trust record order.
    assert sorted(rec.latencies(since_ms=10.0)) == [5.0, 10.0]
    assert rec.count(since_ms=10.0) == 2
    assert rec.count() == 4
    # The tag filter composes with the value scan.
    assert rec.latencies(since_ms=10.0, tag="ok") == [10.0]
    assert rec.latencies(tag="bad") == [5.0]
    assert sorted(rec.latencies_between(6.0, 16.0)) == [6.0, 10.0]
    assert rec.fraction_over(5.5, since_ms=6.0) == pytest.approx(2 / 3)


def test_nonmonotonic_windowed_series_with_exclude_tag():
    rec = _out_of_order_recorder()
    # Beyond-horizon records sit mid-list: bucketing must skip (not
    # break on) them and keep scanning later in-horizon records.
    counts = rec.windowed_count(10.0, 20.0)
    assert [v for _t, v in counts.points] == [
        pytest.approx(200.0),  # ends 5 and 8 -> 2 per 10 ms window
        pytest.approx(100.0),  # end 15
    ]
    excl = rec.windowed_count(10.0, 20.0, exclude_tag="ok")
    assert [v for _t, v in excl.points] == [0.0, 0.0]  # 25 is past horizon
    p99 = rec.windowed_percentile(99.0, 10.0, 20.0, exclude_tag="bad")
    assert [v for _t, v in p99.points] == [pytest.approx(6.0), pytest.approx(10.0)]
    means = rec.windowed_mean(10.0, 20.0)
    assert means.points[0][1] == pytest.approx(5.5)
    assert means.points[1][1] == pytest.approx(10.0)


def test_monotonic_windowed_exclude_tag_matches_scan():
    # Same data fed in order: the bisect/early-break fast path must agree
    # with the out-of-order scan fallback.
    rec = LatencyRecorder()
    rec.record(0.0, 5.0, tag="ok")
    rec.record(2.0, 8.0, tag="ok")
    rec.record(5.0, 15.0, tag="ok")
    rec.record(20.0, 25.0, tag="bad")
    assert rec._monotonic
    counts = rec.windowed_count(10.0, 20.0, exclude_tag="bad")
    assert [v for _t, v in counts.points] == [
        pytest.approx(200.0),
        pytest.approx(100.0),
    ]
    assert sorted(rec.latencies(since_ms=10.0)) == [5.0, 10.0]


def test_rng_streams_are_independent_and_stable():
    reg = RngRegistry(42)
    a1 = [reg.stream("a").random() for _ in range(3)]
    reg2 = RngRegistry(42)
    b = reg2.stream("b")  # created before "a": order must not matter
    _ = b.random()
    a2 = [reg2.stream("a").random() for _ in range(3)]
    assert a1 == a2


def test_rng_different_seeds_differ():
    assert RngRegistry(1).stream("x").random() != RngRegistry(2).stream("x").random()


def test_rng_fork_is_deterministic():
    f1 = RngRegistry(7).fork("child").stream("s").random()
    f2 = RngRegistry(7).fork("child").stream("s").random()
    assert f1 == f2
