"""Unit tests for the ownership network: DAG, share, dominators, paths.

The share/dominator cases mirror the paper's running examples: the game
graph of Fig. 3 (Kings Room / Players / Treasure / Sword) and the TPC-C
District/Customer/Order sharing of §6.1.2.
"""

import pytest

from repro.core.errors import OwnershipCycleError, UnknownContextError
from repro.core.ownership import OwnershipNetwork, VIRTUAL_PREFIX


def build_game_graph():
    """Fig. 3's castle: returns the populated network."""
    g = OwnershipNetwork()
    g.add_context("castle")
    g.add_context("kings-room", parents=["castle"])
    g.add_context("armory", parents=["castle"])
    g.add_context("p1", parents=["kings-room"])
    g.add_context("p2", parents=["kings-room"])
    g.add_context("p3", parents=["armory"])
    g.add_context("treasure", parents=["kings-room", "p1", "p2"])
    g.add_context("weapons-vault", parents=["armory"])
    g.add_context("sword", parents=["weapons-vault"])
    g.add_context("horse", parents=["p1", "p2"])
    return g


# ----------------------------------------------------------------------
# Structure
# ----------------------------------------------------------------------
def test_add_context_duplicate_rejected():
    g = OwnershipNetwork()
    g.add_context("a")
    with pytest.raises(ValueError):
        g.add_context("a")


def test_add_context_unknown_parent_rejected():
    g = OwnershipNetwork()
    with pytest.raises(UnknownContextError):
        g.add_context("a", parents=["ghost"])


def test_parents_children_roundtrip():
    g = OwnershipNetwork()
    g.add_context("a")
    g.add_context("b", parents=["a"])
    assert g.parents("b") == {"a"}
    assert g.children("a") == {"b"}
    assert g.roots() == ["a"]


def test_edge_cycle_rejected():
    g = OwnershipNetwork()
    g.add_context("a")
    g.add_context("b", parents=["a"])
    with pytest.raises(OwnershipCycleError):
        g.add_edge("b", "a")
    with pytest.raises(OwnershipCycleError):
        g.add_edge("a", "a")


def test_remove_edge_and_context():
    g = OwnershipNetwork()
    g.add_context("a")
    g.add_context("b", parents=["a"])
    g.remove_edge("a", "b")
    assert g.parents("b") == set()
    g.remove_context("b")
    assert "b" not in g
    assert len(g) == 1


def test_descendants_include_self():
    g = build_game_graph()
    assert "castle" in g.descendants("castle")
    assert g.descendants("sword") == {"sword"}
    assert {"p1", "treasure", "horse"} <= g.descendants("kings-room")


def test_ancestors_include_self():
    g = build_game_graph()
    assert g.ancestors("treasure") >= {"treasure", "p1", "p2", "kings-room", "castle"}


def test_owns_transitive():
    g = build_game_graph()
    assert g.owns("castle", "sword")
    assert g.owns("p1", "horse")
    assert not g.owns("armory", "treasure")


def test_is_acyclic():
    assert build_game_graph().is_acyclic()


def test_edges_and_snapshot():
    g = OwnershipNetwork()
    g.add_context("a")
    g.add_context("b", parents=["a"])
    assert ("a", "b") in g.edges()
    assert g.snapshot() == {"a": ["b"], "b": []}


# ----------------------------------------------------------------------
# share (the paper's two clauses)
# ----------------------------------------------------------------------
def test_share_of_sharing_players_includes_owner_and_peer():
    g = build_game_graph()
    # Clause 2: p2 shares treasure/horse with p1; clause 1: the Kings
    # Room shares the treasure child with p1.
    assert g.share("p1") >= {"p2", "kings-room"}


def test_share_of_unshared_leaf_is_empty():
    g = build_game_graph()
    assert g.share("sword") == set()


def test_share_in_plain_tree_is_empty():
    g = OwnershipNetwork()
    g.add_context("root")
    g.add_context("mid", parents=["root"])
    g.add_context("leaf", parents=["mid"])
    for cid in ("root", "mid", "leaf"):
        assert g.share(cid) == set()


# ----------------------------------------------------------------------
# Dominators (Fig. 3's annotations)
# ----------------------------------------------------------------------
def test_dominator_of_sharing_players_is_room():
    g = build_game_graph()
    assert g.dominator("p1") == "kings-room"
    assert g.dominator("p2") == "kings-room"


def test_dominator_of_unshared_contexts_is_self():
    g = build_game_graph()
    assert g.dominator("sword") == "sword"
    assert g.dominator("p3") == "armory" or g.dominator("p3") == "p3"
    assert g.dominator("castle") == "castle"
    assert g.dominator("horse") == "horse"


def test_dominator_tree_case_all_self():
    g = OwnershipNetwork()
    g.add_context("root")
    g.add_context("mid", parents=["root"])
    g.add_context("leaf", parents=["mid"])
    assert g.dominator("leaf") == "leaf"
    assert g.dominator("mid") == "mid"


def test_dominator_tpcc_customer_is_district():
    g = OwnershipNetwork()
    g.add_context("wh")
    g.add_context("d1", parents=["wh"])
    g.add_context("c1", parents=["d1"])
    g.add_context("c2", parents=["d1"])
    g.add_context("o1", parents=["c1", "d1"])  # multi-ownership
    assert g.dominator("c1") == "d1"
    assert g.dominator("d1") == "d1"
    assert g.dominator("wh") == "wh"
    # Customers without shared orders stay their own dominator.
    assert g.dominator("c2") == "c2"


def test_dominator_tpcc_single_ownership_customer_is_self():
    g = OwnershipNetwork()
    g.add_context("wh")
    g.add_context("d1", parents=["wh"])
    g.add_context("c1", parents=["d1"])
    g.add_context("o1", parents=["c1"])
    assert g.dominator("c1") == "c1"


def test_dominator_virtual_root_for_disjoint_maxima():
    g = OwnershipNetwork()
    g.add_context("a")
    g.add_context("b")
    g.add_context("x", parents=["a", "b"])
    dom = g.dominator("a")
    assert g.is_virtual(dom)
    assert dom.startswith(VIRTUAL_PREFIX)
    assert g.dominator("b") == dom
    assert g.children(dom) >= {"a", "b"}
    assert g.is_acyclic()


def test_dominator_diamond_with_single_join():
    g = OwnershipNetwork()
    g.add_context("root")
    g.add_context("a", parents=["root"])
    g.add_context("b", parents=["root"])
    g.add_context("x", parents=["a", "b"])
    assert g.dominator("a") == "root"
    assert g.dominator("b") == "root"


def test_virtual_root_reused_for_same_maxima():
    g = OwnershipNetwork()
    g.add_context("a")
    g.add_context("b")
    g.add_context("x", parents=["a", "b"])
    first = g.dominator("a")
    g.add_context("y", parents=["a", "b"])
    second = g.dominator("b")
    assert first == second


# ----------------------------------------------------------------------
# Incremental caching under leaf additions (the TPC-C hot path)
# ----------------------------------------------------------------------
def test_leaf_addition_updates_descendants_incrementally():
    g = build_game_graph()
    _ = g.descendants("castle")  # populate cache
    g.add_context("new-item", parents=["p1"])
    assert "new-item" in g.descendants("castle")
    assert "new-item" in g.descendants("p1")
    assert "new-item" not in g.descendants("armory")


def test_leaf_addition_flips_dominator_of_parents():
    g = OwnershipNetwork()
    g.add_context("wh")
    g.add_context("d", parents=["wh"])
    g.add_context("c", parents=["d"])
    assert g.dominator("c") == "c"  # no sharing yet
    g.add_context("o", parents=["c", "d"])
    assert g.dominator("c") == "d"  # sharing flips the dominator


def test_leaf_additions_match_full_recompute():
    g = OwnershipNetwork()
    g.add_context("wh")
    for d in range(2):
        g.add_context(f"d{d}", parents=["wh"])
        for c in range(3):
            g.add_context(f"c{d}{c}", parents=[f"d{d}"])
    # Interleave queries (forcing caches) with multi-parent leaf adds.
    for d in range(2):
        for c in range(3):
            _ = g.dominator(f"c{d}{c}")
            g.add_context(f"o{d}{c}", parents=[f"c{d}{c}", f"d{d}"])
    fresh = OwnershipNetwork()
    fresh.add_context("wh")
    for d in range(2):
        fresh.add_context(f"d{d}", parents=["wh"])
        for c in range(3):
            fresh.add_context(f"c{d}{c}", parents=[f"d{d}"])
            fresh.add_context(f"o{d}{c}", parents=[f"c{d}{c}", f"d{d}"])
    for cid in fresh.contexts():
        assert g.dominator(cid) == fresh.dominator(cid), cid
        assert g.share(cid) == fresh.share(cid), cid


# ----------------------------------------------------------------------
# find_path
# ----------------------------------------------------------------------
def test_find_path_self():
    g = build_game_graph()
    assert g.find_path("p1", "p1") == ["p1"]


def test_find_path_down_the_dag():
    g = build_game_graph()
    path = g.find_path("castle", "sword")
    assert path[0] == "castle" and path[-1] == "sword"
    for parent, child in zip(path, path[1:]):
        assert child in g.children(parent)


def test_find_path_not_descendant_raises():
    g = build_game_graph()
    with pytest.raises(ValueError):
        g.find_path("armory", "treasure")


def test_find_path_unknown_raises():
    g = build_game_graph()
    with pytest.raises(UnknownContextError):
        g.find_path("castle", "ghost")


def test_epoch_bumps_on_mutation():
    g = OwnershipNetwork()
    before = g.epoch
    g.add_context("a")
    assert g.epoch > before
