"""The persistent result store: keys, robustness, resume, byte-identity.

Covers the `repro.results` subsystem end to end:

* content-addressed keys — stable across assembly positions, sensitive
  to every spec field, ``--set`` override, fault/fencing knob and seed;
* store robustness — corrupted/truncated entries degrade to cache
  misses (recompute + atomic overwrite, never a crash), a version-tag
  change invalidates the whole store, killed writers leave no torn
  state behind;
* resume — a store populated by a partial run makes the rerun execute
  only the remainder (the killed ``--all`` contract), and a failing
  cell does not lose the cells completed before it;
* byte-identity — cached figures (fig5a, fig11 quick) are identical to
  fresh ones at ``--jobs`` 1 and 4, pinned against the golden file;
* the CLI surface — ``--cache-dir``/``--no-cache``/``--refresh`` on the
  experiments CLI (warm pass = 100% hits) and the ``python -m
  repro.results`` maintenance commands.
"""

import json
from pathlib import Path

import pytest

from repro.harness.experiments import fig5a, fig11, main
from repro.harness.runner import Cell, CellPool, run_cells
from repro.harness.scenarios import _jsonable, expand, get_scenario, prepare_scenario
from repro.results import MISS, ResultStore, cell_key
from repro.results.__main__ import main as results_main, parse_age

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "figures_quick_seed0.json").read_text()
)["experiments"]


def _dump(data) -> str:
    return json.dumps(_jsonable(data), sort_keys=True)


def _golden(name) -> str:
    return json.dumps(GOLDEN[name], sort_keys=True)


def _keys(name, overrides=()):
    spec = prepare_scenario(name, scale="quick", seed=0, overrides=overrides)
    return [cell_key(cell) for cell in expand(spec)]


# ----------------------------------------------------------------------
# Content-addressed keys
# ----------------------------------------------------------------------
def test_key_stable_and_assembly_position_excluded():
    a = Cell(("aeon", 2), "m:f", {"x": 1, "spec": None})
    b = Cell(("somewhere", "else"), "m:f", {"spec": None, "x": 1})
    assert cell_key(a) == cell_key(b)  # key ≠ content; kwarg order ≠ content
    assert cell_key(a) != cell_key(Cell(("aeon", 2), "m:g", {"x": 1, "spec": None}))
    assert cell_key(a) != cell_key(Cell(("aeon", 2), "m:f", {"x": 2, "spec": None}))


def test_shared_elastic_setups_hash_to_one_entry():
    # fig7 and table1 request the same (setup, rep) cells; content
    # addressing must give them the same entries.
    fig7_keys = set(_keys("fig7"))
    table1_keys = set(_keys("table1"))
    assert fig7_keys <= table1_keys


@pytest.mark.parametrize(
    "override",
    [
        "think_ms=9.5",
        "faults.fencing=True",
        "faults.mtbf_ms=1234.0",
        "faults.checkpoint_ms=777.0",
        "duration_ms=12345.0",
    ],
)
def test_every_override_lands_in_every_key(override):
    # Any --set change must invalidate ALL of fig11's cells: a stale hit
    # after turning a fault knob would silently corrupt the figure.
    assert not set(_keys("fig11")) & set(_keys("fig11", (override,)))


def test_seed_and_scale_land_in_the_key():
    base = set(_keys("fig5a"))
    other_seed = {
        cell_key(c)
        for c in expand(prepare_scenario("fig5a", scale="quick", seed=1))
    }
    other_scale = {
        cell_key(c) for c in expand(prepare_scenario("fig5a", scale="full"))
    }
    assert not base & other_seed
    assert not base & other_scale


def test_version_tag_lands_in_the_key(monkeypatch):
    cell = Cell((), "m:f", {"x": 1})
    before = cell_key(cell)
    monkeypatch.setattr("repro.results.store.STORE_TAG", "repro-results/99 kernel=next")
    assert cell_key(cell) != before


# ----------------------------------------------------------------------
# Store basics: roundtrip, manifest, atomicity
# ----------------------------------------------------------------------
def test_put_load_roundtrip_and_counters(tmp_path):
    store = ResultStore(tmp_path / "store")
    cell = Cell(("a",), "m:f", {"x": 1})
    assert store.load(cell) is MISS
    store.put(cell, {"v": [1, 2]}, wall_ms=12.5)
    assert store.load(cell) == {"v": [1, 2]}
    assert (store.hits, store.misses) == (1, 1)
    # None is a legal cached value, distinct from MISS.
    none_cell = Cell(("b",), "m:f", {"x": 2})
    store.put(none_cell, None)
    assert store.load(none_cell) is None


def test_manifest_entry_fields(tmp_path):
    store = ResultStore(tmp_path / "store")
    spec = get_scenario("fig5a")
    cell = expand(spec)[0]
    store.put(cell, 42.0, wall_ms=3.25)
    (entry,) = store.entries()
    assert entry["key"] == cell_key(cell)
    assert entry["scenario"] == "fig5a"
    assert entry["cell"] == repr(tuple(cell.key))
    assert entry["fn"] == cell.fn
    assert entry["wall_ms"] == 3.25
    assert entry["status"] == "ok"
    assert entry["created_at"] > 0
    assert entry["bytes"] > 0


def test_no_stray_tmp_files_after_puts(tmp_path):
    store = ResultStore(tmp_path / "store")
    for i in range(5):
        store.put(Cell((i,), "m:f", {"i": i}), list(range(i)))
    assert not list((tmp_path / "store" / "objects").glob("*.tmp*"))


def test_refresh_mode_always_misses_but_overwrites(tmp_path):
    root = tmp_path / "store"
    cell = Cell(("a",), "m:f", {"x": 1})
    ResultStore(root).put(cell, "old")
    refreshing = ResultStore(root, refresh=True)
    assert refreshing.load(cell) is MISS
    refreshing.put(cell, "new")
    assert ResultStore(root).load(cell) == "new"


# ----------------------------------------------------------------------
# Robustness: corruption, truncation, version bumps
# ----------------------------------------------------------------------
def _object_path(store, cell):
    return store.root / "objects" / f"{cell_key(cell)}.pkl"


@pytest.mark.parametrize("damage", [b"not a pickle", b""])
def test_corrupt_or_truncated_entry_is_a_miss_then_overwritten(tmp_path, damage):
    store = ResultStore(tmp_path / "store")
    cell = Cell(("a",), "repro.sim.metrics:mean", {"values": [1.0, 3.0]})
    store.put(cell, 2.0)
    _object_path(store, cell).write_bytes(damage)  # partial write / bad bytes
    assert store.load(cell) is MISS  # logged, never raised
    # The execution layer recomputes and atomically overwrites:
    (result,) = run_cells([cell], store=store)
    assert result.value == 2.0
    assert ResultStore(tmp_path / "store").load(cell) == 2.0


def test_torn_manifest_line_is_skipped(tmp_path):
    store = ResultStore(tmp_path / "store")
    store.put(Cell(("a",), "m:f", {"x": 1}), "value")
    with open(store.root / "manifest.jsonl", "a", encoding="utf-8") as handle:
        handle.write('{"key": "torn-half-wr')  # killed mid-append
    (entry,) = store.entries()
    assert entry["scenario"] == "m:f"
    assert store.stats()["entries"] == 1


def test_version_tag_bump_invalidates_whole_store(tmp_path):
    root = tmp_path / "store"
    cell = Cell(("a",), "m:f", {"x": 1})
    ResultStore(root).put(cell, "value")
    # Simulate a store written by an older kernel generation.
    (root / "FORMAT").write_text("repro-results/0 kernel=older", encoding="utf-8")
    reopened = ResultStore(root)
    assert reopened.load(cell) is MISS
    assert reopened.entries() == []
    assert (root / "FORMAT").read_text(encoding="utf-8") != "repro-results/0 kernel=older"


# ----------------------------------------------------------------------
# Resume: only the remainder executes; failures lose nothing completed
# ----------------------------------------------------------------------
def _record_cell(tag, out_dir):
    """Test cell body: logs its execution, returns a marker value."""
    with open(Path(out_dir) / "executed.log", "a", encoding="utf-8") as handle:
        handle.write(f"{tag}\n")
    return f"ran-{tag}"


def _failing_cell(tag, out_dir):
    if tag == "boom":
        raise RuntimeError("cell failure")
    return _record_cell(tag, out_dir)


def _executions(out_dir):
    log = Path(out_dir) / "executed.log"
    return log.read_text().splitlines() if log.exists() else []


_HERE = "test_result_store"


def test_interrupted_run_resumes_with_only_the_remainder(tmp_path):
    cells = [
        Cell((tag,), f"{_HERE}:_record_cell", {"tag": tag, "out_dir": str(tmp_path)})
        for tag in ("c0", "c1", "c2", "c3", "c4")
    ]
    # "Killed" run: only the first two cells completed and persisted.
    run_cells(cells[:2], store=ResultStore(tmp_path / "store"))
    assert _executions(tmp_path) == ["c0", "c1"]
    # Rerun of the full sweep: only the remainder executes.
    store = ResultStore(tmp_path / "store")
    results = run_cells(cells, store=store)
    assert _executions(tmp_path) == ["c0", "c1", "c2", "c3", "c4"]
    assert (store.hits, store.misses) == (2, 3)
    assert [r.value for r in results] == [f"ran-c{i}" for i in range(5)]
    # Fully warm rerun: nothing executes at all.
    warm = ResultStore(tmp_path / "store")
    run_cells(cells, store=warm)
    assert _executions(tmp_path) == ["c0", "c1", "c2", "c3", "c4"]
    assert (warm.hits, warm.misses) == (5, 0)


def test_failing_cell_keeps_earlier_cells_persisted(tmp_path):
    cells = [
        Cell((tag,), f"{_HERE}:_failing_cell", {"tag": tag, "out_dir": str(tmp_path)})
        for tag in ("ok0", "ok1", "boom", "ok2")
    ]
    with pytest.raises(RuntimeError, match="cell failure"):
        run_cells(cells, store=ResultStore(tmp_path / "store"))
    # The cells completed before the failure survived the crash...
    store = ResultStore(tmp_path / "store")
    assert store.load(cells[0]) == "ran-ok0"
    assert store.load(cells[1]) == "ran-ok1"
    # ...and the failed cell was never persisted.
    assert store.load(cells[2]) is MISS


# ----------------------------------------------------------------------
# Byte-identity: cached == fresh at any --jobs level, against golden
# ----------------------------------------------------------------------
def test_fig5a_cached_byte_identical_across_jobs(tmp_path):
    cache_dir = str(tmp_path / "store")
    cold = fig5a(scale="quick", seed=0, jobs=1, cache="auto", cache_dir=cache_dir)
    assert _dump(cold) == _golden("fig5a")
    # Warm parallel read of a serially-written store: every cell is a
    # hit, nothing is dispatched, bytes match the golden exactly.
    spec = get_scenario("fig5a")
    cells = expand(spec)
    store = ResultStore(cache_dir)
    with CellPool(jobs=4, store=store) as pool:
        results = pool.gather(pool.submit(cells))
    from repro.harness.scenarios import assemble_scenario

    warm = assemble_scenario(spec, cells, results)
    assert (store.hits, store.misses) == (len(cells), 0)
    assert _dump(warm) == _golden("fig5a")
    assert _dump(warm) == _dump(cold)


def test_fig11_cached_byte_identical_across_jobs(tmp_path):
    cache_dir = str(tmp_path / "store")
    cold = fig11(scale="quick", seed=0, jobs=4, cache="auto", cache_dir=cache_dir)
    assert _dump(cold) == _golden("fig11")
    warm = fig11(scale="quick", seed=0, jobs=1, cache="auto", cache_dir=cache_dir)
    assert _dump(warm) == _golden("fig11")


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cli_cache_flags_warm_pass_is_all_hits(tmp_path, capsys):
    cache_dir = str(tmp_path / "store")
    cold_json = tmp_path / "cold.json"
    warm_json = tmp_path / "warm.json"
    args = ["--figure", "fig9", "--scale", "quick", "--cache-dir", cache_dir]
    assert main(args + ["--json", str(cold_json)]) == 0
    out_cold = capsys.readouterr().out
    assert main(args + ["--json", str(warm_json)]) == 0
    out_warm = capsys.readouterr().out

    cold = json.loads(cold_json.read_text())
    warm = json.loads(warm_json.read_text())
    assert cold["experiments"] == warm["experiments"]
    assert cold["cache"]["hits"] == 0 and cold["cache"]["misses"] > 0
    assert warm["cache"]["misses"] == 0
    assert warm["cache"]["hits"] == cold["cache"]["misses"]
    # The summary line reports the hit count (the acceptance criterion).
    assert "0% " not in out_warm.split("result store:")[1][:40]
    assert "cache hits" in out_cold and "cache hits" in out_warm


def test_cli_refresh_recomputes_and_no_cache_conflicts(tmp_path, capsys):
    cache_dir = str(tmp_path / "store")
    args = ["--figure", "fig9", "--scale", "quick", "--cache-dir", cache_dir]
    assert main(args) == 0
    capsys.readouterr()
    assert main(args + ["--refresh"]) == 0
    out = capsys.readouterr().out
    assert "0/6 cache hits" in out  # refresh never loads
    with pytest.raises(SystemExit):
        main(args + ["--refresh", "--no-cache"])


def test_cli_no_cache_prints_no_summary(capsys):
    assert main(["--figure", "fig9", "--scale", "quick", "--no-cache"]) == 0
    assert "result store:" not in capsys.readouterr().out


def test_maintenance_cli(tmp_path, capsys):
    cache_dir = str(tmp_path / "store")
    assert main(["--figure", "fig9", "--scale", "quick", "--cache-dir", cache_dir]) == 0
    capsys.readouterr()

    assert results_main(["--dir", cache_dir, "ls"]) == 0
    out = capsys.readouterr().out
    assert "6 entries" in out and "_fig9_cell" in out

    assert results_main(["--dir", cache_dir, "stats"]) == 0
    out = capsys.readouterr().out
    assert "entries:  6" in out
    assert "repro.harness.scenarios:_fig9_cell" in out

    # Nothing is older than a day; everything is older than 0 seconds.
    assert results_main(["--dir", cache_dir, "gc", "--older-than", "1d"]) == 0
    assert "removed 0" in capsys.readouterr().out
    assert results_main(["--dir", cache_dir, "gc", "--older-than", "0"]) == 0
    assert "removed 6" in capsys.readouterr().out

    assert main(["--figure", "fig9", "--scale", "quick", "--cache-dir", cache_dir]) == 0
    capsys.readouterr()
    assert results_main(["--dir", cache_dir, "clear"]) == 0
    assert "removed 6" in capsys.readouterr().out
    assert ResultStore(cache_dir).entries() == []


def test_parse_age():
    assert parse_age("30s") == 30.0
    assert parse_age("45m") == 45 * 60.0
    assert parse_age("12h") == 12 * 3600.0
    assert parse_age("7d") == 7 * 86400.0
    assert parse_age("90") == 90.0
    with pytest.raises(Exception):
        parse_age("soon")
