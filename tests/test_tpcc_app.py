"""Tests for the TPC-C application across all five system wirings."""

import pytest
from random import Random

from repro.apps.tpcc import TpccConfig, TpccWorkload, build_tpcc
from repro.harness.runner import SYSTEMS, make_testbed
from repro.workloads import ClosedLoopClients


def build(system, n_servers=2, customers=6):
    testbed = make_testbed(system, n_servers, record_history=True)
    config = TpccConfig(districts=n_servers, customers_per_district=customers)
    deployment = build_tpcc(
        testbed.runtime,
        config,
        multi_ownership=(system == "aeon"),
        servers=testbed.servers,
        colocate=system in ("aeon", "aeon_so", "eventwave"),
    )
    return testbed, deployment


def drive(testbed, deployment, system, n_clients=12, duration=4000.0):
    workload = TpccWorkload(deployment, system)
    clients = ClosedLoopClients(
        testbed.runtime, workload.sample_op, n_clients=n_clients,
        think_ms=5.0, rng=testbed.rng, stop_at_ms=duration,
    )
    clients.start()
    testbed.sim.run(until=testbed.sim.now + duration + 30000)
    return clients


def test_config_validation():
    with pytest.raises(ValueError):
        TpccConfig(p_new_order=0.9).validate()
    with pytest.raises(ValueError):
        TpccConfig(districts=0).validate()
    TpccConfig().validate()


def test_loader_builds_partitioned_graph():
    testbed, deployment = build("aeon", n_servers=2, customers=4)
    runtime = testbed.runtime
    assert len(deployment.districts) == 2
    # One district per server; warehouse on the first.
    assert runtime.placement["warehouse"] == testbed.servers[0].name
    assert runtime.placement["district-0"] == testbed.servers[0].name
    assert runtime.placement["district-1"] == testbed.servers[1].name
    # Initial load: one order per customer.
    assert runtime.instance_of("customer-0-0").order_seq == 1


def test_multi_ownership_wiring_sets_district_dominator():
    testbed, deployment = build("aeon")
    runtime = testbed.runtime
    assert runtime.ownership.dominator("customer-0-0") == "district-0"
    assert runtime.ownership.dominator("district-0") == "district-0"
    assert runtime.ownership.dominator("warehouse") == "warehouse"


def test_single_ownership_wiring_keeps_customers_parallel():
    testbed, deployment = build("aeon_so")
    runtime = testbed.runtime
    assert runtime.ownership.dominator("customer-0-0") == "customer-0-0"


@pytest.mark.parametrize("system", SYSTEMS)
def test_tpcc_runs_on_every_system(system):
    testbed, deployment = build(system)
    clients = drive(testbed, deployment, system)
    assert not clients.errors, clients.errors[:2]
    assert testbed.runtime.events_inflight == 0
    assert testbed.runtime.events_completed > 50


@pytest.mark.parametrize("system", ["aeon", "aeon_so", "eventwave", "orleans"])
def test_tpcc_serializable_systems_preserve_ytd_invariant(system):
    testbed, deployment = build(system)
    drive(testbed, deployment, system)
    probe = deployment.consistency_probe()
    assert probe["warehouse_ytd"] == probe["district_ytd"] == probe["customer_ytd"]
    testbed.runtime.check_history()


def test_orleans_star_breaks_consistency_eventually():
    """The erroneous baseline loses the cross-context invariant."""
    testbed, deployment = build("orleans_star", n_servers=4, customers=8)
    drive(testbed, deployment, "orleans_star", n_clients=48, duration=6000.0)
    probe = deployment.consistency_probe()
    # Payments go through three independent grain turns: under enough
    # concurrency the in-flight differences are visible at any cut, and
    # the recorded history is generally not serializable.  (The totals
    # converge once quiescent, so compare the history instead.)
    assert testbed.runtime.events_completed > 200
    # History may or may not contain a cycle depending on interleaving;
    # what must NOT happen is a false alarm on the serializable systems
    # (covered by the test above).  Here we only require the run worked.
    assert testbed.runtime.events_inflight == 0


def test_new_order_creates_order_contexts():
    testbed, deployment = build("aeon")
    runtime = testbed.runtime
    client = runtime.register_client("c")
    customer = deployment.customers[0][0]
    district = deployment.districts[0]
    before = runtime.context_count()
    done = client.submit(
        customer.new_order([(1, 2), (2, 1)], deployment.warehouse, district)
    )
    testbed.sim.run(until=60000)
    assert done.value.error is None
    assert runtime.context_count() == before + 1
    # The new order is co-owned by customer and district (multi).
    new_cid = "order-0-0-2"
    assert runtime.ownership.parents(new_cid) == {"customer-0-0", "district-0"}


def test_new_order_dispatches_stock_deduction():
    testbed, deployment = build("aeon_so")
    runtime = testbed.runtime
    client = runtime.register_client("c")
    customer = deployment.customers[0][0]
    wh = runtime.instance_of(deployment.warehouse)
    stock_before = wh.stock[5]
    done = client.submit(
        customer.new_order([(5, 3)], deployment.warehouse, None)
    )
    testbed.sim.run(until=60000)
    assert done.value.error is None
    assert wh.stock[5] == stock_before - 3  # the sub-event ran after


def test_payment_chain_updates_all_three_tiers():
    testbed, deployment = build("aeon")
    runtime = testbed.runtime
    client = runtime.register_client("c")
    district = deployment.districts[0]
    customer = deployment.customers[0][0]
    done = client.submit(
        deployment.warehouse.payment(district, customer, 120)
    )
    testbed.sim.run(until=60000)
    assert done.value.error is None
    assert runtime.instance_of(deployment.warehouse).w_ytd == 120
    assert runtime.instance_of(district).d_ytd == 120
    customer_instance = runtime.instance_of(customer)
    assert customer_instance.ytd_payment == 120
    assert customer_instance.balance == -120
    assert len(customer_instance.history) == 1


def test_delivery_delivers_oldest_order():
    testbed, deployment = build("aeon")
    runtime = testbed.runtime
    client = runtime.register_client("c")
    district = deployment.districts[0]
    done = client.submit(district.deliver(3, True))
    testbed.sim.run(until=60000)
    assert done.value.error is None
    assert done.value.result == 10  # the preloaded order's total
    # Delivered order is marked.
    delivered = [
        o for o in runtime.instances.values()
        if type(o).__name__ == "Order" and o.delivered
    ]
    assert len(delivered) == 1


def test_order_status_readonly():
    testbed, deployment = build("aeon_so")
    client = testbed.runtime.register_client("c")
    customer = deployment.customers[0][0]
    done = client.submit(customer.order_status())
    testbed.sim.run(until=60000)
    event = done.value
    assert event.error is None
    assert event.result["o_id"] == 1
    assert event.writes == {}


def test_stock_level_counts_low_items():
    testbed, deployment = build("aeon_so")
    runtime = testbed.runtime
    client = runtime.register_client("c")
    district = deployment.districts[0]
    # Deplete item 0's stock below any threshold and note it.
    runtime.instance_of(deployment.warehouse).stock[0] = 1
    runtime.instance_of(district).recent_items.extend([0, 1])
    done = client.submit(deployment.warehouse.stock_level(district, 15))
    testbed.sim.run(until=60000)
    event = done.value
    assert event.error is None
    assert event.result == 1  # only item 0 is low


def test_workload_mix_matches_weights():
    testbed, deployment = build("aeon")
    workload = TpccWorkload(deployment, "aeon")
    rng = Random(5)
    counts = {}
    n = 4000
    for _ in range(n):
        _spec, tag = workload.sample_op(rng)
        counts[tag] = counts.get(tag, 0) + 1
    config = deployment.config
    assert counts["new_order"] / n == pytest.approx(config.p_new_order, abs=0.03)
    assert counts["payment"] / n == pytest.approx(config.p_payment, abs=0.03)
    for tag, weight in (
        ("order_status", config.p_order_status),
        ("delivery", config.p_delivery),
        ("stock_level", config.p_stock_level),
    ):
        assert counts[tag] / n == pytest.approx(weight, abs=0.02)


def test_dominator_stability_under_order_creation():
    """Creating orders mid-run never flips dominators (preloading)."""
    testbed, deployment = build("aeon")
    runtime = testbed.runtime
    dom_before = {
        cid: runtime.ownership.dominator(cid)
        for cid in ("customer-0-0", "customer-1-0", "district-0", "warehouse")
    }
    drive(testbed, deployment, "aeon", n_clients=8, duration=2000.0)
    for cid, dom in dom_before.items():
        assert runtime.ownership.dominator(cid) == dom
