"""Trace-checksum regression tests for kernel determinism.

The simulator's core property is that a fixed program plus fixed RNG
seeds produces an identical event trace.  These tests pin SHA-256
checksums of the (eid, tag, submitted, committed, reads, writes) trace
and the final metrics of a seeded game run (all three runtimes) and a
seeded TPC-C run, so that kernel fast paths (immediate queue, inline
signal completion, trampoline) can never silently reorder events: any
reordering changes a commit time or an observed version and breaks the
checksum.

The pinned values were generated with the original heap-only kernel;
the optimized kernel must reproduce them byte for byte.
"""

import hashlib

from repro.apps.tpcc import TpccConfig, TpccWorkload, build_tpcc
from repro.harness.runner import make_testbed, run_game
from repro.workloads.generators import ClosedLoopClients


def _trace_checksum(runtime, sim) -> str:
    """SHA-256 over the committed-event trace and the final metrics."""
    assert runtime.history is not None
    lines = [
        "|".join(
            (
                str(ev.eid),
                ev.tag,
                repr(ev.submitted_ms),
                repr(ev.committed_ms),
                repr(sorted(ev.reads.items())),
                repr(sorted(ev.writes.items())),
            )
        )
        for ev in runtime.history.events
    ]
    lines.append(
        "|".join(
            (
                repr(sim.now),
                str(runtime.events_completed),
                str(runtime.network.messages_sent),
                repr(runtime.latency.mean_latency()),
                repr(runtime.latency.percentile_latency(99.0)),
                str(runtime.throughput.count_between(0.0, sim.now + 1.0)),
            )
        )
    )
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def _game_checksum(system: str) -> str:
    _result, testbed, _app = run_game(
        system,
        n_servers=2,
        n_clients=16,
        duration_ms=400.0,
        warmup_ms=100.0,
        think_ms=2.0,
        seed=7,
        record_history=True,
    )
    return _trace_checksum(testbed.runtime, testbed.sim)


def _tpcc_checksum() -> str:
    testbed = make_testbed("aeon", 2, seed=3, record_history=True)
    config = TpccConfig(districts=2, customers_per_district=6)
    deployment = build_tpcc(
        testbed.runtime,
        config,
        multi_ownership=True,
        servers=testbed.servers,
        colocate=True,
    )
    workload = TpccWorkload(deployment, "aeon")
    clients = ClosedLoopClients(
        testbed.runtime,
        workload.sample_op,
        n_clients=8,
        think_ms=5.0,
        rng=testbed.rng,
        stop_at_ms=600.0,
    )
    clients.start()
    testbed.sim.run(until=3000.0)
    return _trace_checksum(testbed.runtime, testbed.sim)


# Pinned traces (generated with the pre-fast-path kernel; see module doc).
GAME_CHECKSUMS = {
    "aeon": "b977b0dec3acbf2c39bd36e51da7acbb7be7f929ae2a211092577716be5f0f53",
    "eventwave": "9cdd04a174306ebb921ffb0bfd25633af6c4b3427c53ac5173aaaccf841be001",
    "orleans": "7ece6f675be356ad3955c7eeb30ec009f5400152476d1c6e0f07c3546ee2984f",
}
TPCC_CHECKSUM = "6cb42bbf840a3d1892ae9fcfb72eea91a41d6944ac33e1cbe5399f15df057700"


def test_game_trace_matches_pinned_checksum():
    for system, expected in GAME_CHECKSUMS.items():
        assert _game_checksum(system) == expected, f"{system} trace diverged"


def test_game_trace_stable_across_runs():
    assert _game_checksum("aeon") == _game_checksum("aeon")


def test_tpcc_trace_matches_pinned_checksum():
    assert _tpcc_checksum() == TPCC_CHECKSUM


if __name__ == "__main__":  # pragma: no cover - checksum (re)generation aid
    for name in GAME_CHECKSUMS:
        print(f'    "{name}": "{_game_checksum(name)}",')
    print(f'TPCC_CHECKSUM = "{_tpcc_checksum()}"')
