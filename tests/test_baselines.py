"""Integration tests for the EventWave and Orleans runtime models."""

import pytest

from repro.baselines import (
    EventWaveRuntime,
    OrleansDeadlockError,
    OrleansRuntime,
    SingleOwnershipError,
)
from repro.core import AeonRuntime, ContextClass, Ref
from repro.core.errors import AeonError
from repro.core.events import AccessMode

from conftest import Cell, Testbed, Worker, build_group


# ----------------------------------------------------------------------
# EventWave: tree discipline
# ----------------------------------------------------------------------
def test_eventwave_executes_events(eventwave_bed):
    _group, workers, _ = build_group(eventwave_bed, shared_cells=0)
    event = eventwave_bed.run_event(workers[0].bump_all(3))
    assert event.error is None
    runtime = eventwave_bed.runtime
    for cell in runtime.instance_of(workers[0]).cells:
        assert runtime.instance_of(cell).value == 3


def test_eventwave_rejects_second_owner(eventwave_bed):
    runtime = eventwave_bed.runtime
    root = runtime.create_context(Worker, server=eventwave_bed.servers[0], name="r")
    other = runtime.create_context(
        Worker, owners=[root.__class__ and root], server=eventwave_bed.servers[0], name="o"
    )
    cell = runtime.create_context(Cell, owners=[root], server=eventwave_bed.servers[0])
    with pytest.raises(SingleOwnershipError):
        runtime.instance_of(other).cells.add(cell)


def test_eventwave_rejects_multi_owner_creation(eventwave_bed):
    runtime = eventwave_bed.runtime
    a = runtime.create_context(Worker, server=eventwave_bed.servers[0], name="a")
    b = runtime.create_context(Worker, server=eventwave_bed.servers[0], name="b")
    with pytest.raises(SingleOwnershipError):
        runtime.create_context(Cell, owners=[a, b], server=eventwave_bed.servers[0])


def test_eventwave_requires_single_root(eventwave_bed):
    runtime = eventwave_bed.runtime
    runtime.create_context(Worker, server=eventwave_bed.servers[0], name="root1")
    runtime.create_context(Worker, server=eventwave_bed.servers[0], name="root2")
    with pytest.raises(AeonError):
        runtime.root_context()


def test_eventwave_all_events_ordered_at_root(eventwave_bed):
    _group, workers, _ = build_group(eventwave_bed, shared_cells=0)
    events = [
        eventwave_bed.submit(workers[i % 2].bump_all()) for i in range(6)
    ]
    eventwave_bed.run()
    for done in events:
        assert done.value.dom == eventwave_bed.runtime.root_context()
    eventwave_bed.runtime.check_history()


def test_eventwave_root_sequencer_serializes_admission(eventwave_bed):
    """Throughput is bounded by the serial root cost (the paper's knee)."""
    _group, workers, _ = build_group(eventwave_bed, shared_cells=0)
    n = 40
    done = [eventwave_bed.submit(workers[i % 2].crunch(0.01)) for i in range(n)]
    eventwave_bed.run()
    assert all(d.triggered for d in done)
    root_cost_wall = eventwave_bed.runtime.costs.eventwave_root_cpu_ms / 2.6
    assert eventwave_bed.sim.now >= n * root_cost_wall


def test_eventwave_readonly_treated_exclusive(eventwave_bed):
    _group, workers, _ = build_group(eventwave_bed, shared_cells=0)
    event = eventwave_bed.run_event(workers[0].read_cells())
    assert event.mode is AccessMode.EX  # no read-only sharing in EventWave


def test_eventwave_async_degrades_to_sync(eventwave_bed):
    _group, workers, _ = build_group(eventwave_bed, shared_cells=0, private_cells=3)
    event = eventwave_bed.run_event(workers[0].bump_all_async(2))
    assert event.error is None
    runtime = eventwave_bed.runtime
    for cell in runtime.instance_of(workers[0]).cells:
        assert runtime.instance_of(cell).value == 2


def test_eventwave_halt_blocks_admission(eventwave_bed):
    _group, workers, _ = build_group(eventwave_bed, shared_cells=0)
    runtime = eventwave_bed.runtime
    runtime.halt()
    done = eventwave_bed.submit(workers[0].bump_all())
    eventwave_bed.sim.run(until=eventwave_bed.sim.now + 100)
    assert not done.triggered  # stalled during "migration"
    runtime.resume()
    eventwave_bed.run()
    assert done.triggered and done.value.error is None


def test_eventwave_strict_serializability_under_load(eventwave_bed):
    """Conflicts in a tree arise through ancestor-target events."""
    group, workers, _ = build_group(eventwave_bed, n_workers=2, shared_cells=0)
    done = [eventwave_bed.submit(w.bump_all()) for w in workers for _ in range(6)]
    done += [eventwave_bed.submit(group.fan_out()) for _ in range(4)]
    eventwave_bed.run()
    assert all(d.triggered and d.value.error is None for d in done)
    runtime = eventwave_bed.runtime
    cells = runtime.instance_of(workers[0]).cells.refs()
    assert runtime.instance_of(cells[0]).value == 10  # 6 direct + 4 fanned
    eventwave_bed.runtime.check_history()


# ----------------------------------------------------------------------
# Orleans: grains
# ----------------------------------------------------------------------
def test_orleans_executes_events(orleans_bed):
    _group, workers, _ = build_group(orleans_bed, shared_cells=0)
    event = orleans_bed.run_event(workers[0].bump_all(2))
    assert event.error is None


def test_orleans_no_readonly_sharing(orleans_bed):
    _group, workers, _ = build_group(orleans_bed, shared_cells=0)
    event = orleans_bed.run_event(workers[0].read_cells())
    assert event.mode is AccessMode.EX


def test_orleans_grain_serializes_requests(orleans_bed):
    """A single grain processes one request at a time (makespan check)."""
    runtime = orleans_bed.runtime
    worker = runtime.create_context(Worker, server=orleans_bed.servers[0], name="grain")
    done = [orleans_bed.submit(worker.crunch(20.0)) for _ in range(4)]
    orleans_bed.run()
    assert all(d.triggered for d in done)
    # 4 x 20 unit-ms x 1.4 overhead / 2.6 speed, strictly serial.
    assert orleans_bed.sim.now >= 4 * 20.0 * 1.4 / 2.6


def test_orleans_deadlock_on_call_cycle():
    bed = Testbed(OrleansRuntime, n_servers=1)

    class PingA(ContextClass):
        def __init__(self):
            self.other = None

        def ping(self):
            yield self.other.pong()

    class PingB(ContextClass):
        def __init__(self):
            self.other = None

        def pong(self):
            yield self.other.ping()

    runtime = bed.runtime
    a = runtime.create_context(PingA, server=bed.servers[0], name="pa")
    b = runtime.create_context(PingB, server=bed.servers[0], name="pb")
    runtime.instance_of(a).other = b
    runtime.instance_of(b).other = a
    event = bed.run_event(a.ping())
    assert isinstance(event.error, OrleansDeadlockError)


def test_orleans_self_call_deadlocks(orleans_bed):
    class Selfish(ContextClass):
        def __init__(self):
            pass

        def recurse(self):
            yield self.ref.recurse()

    runtime = orleans_bed.runtime
    selfish = runtime.create_context(Selfish, server=orleans_bed.servers[0], name="s")
    event = orleans_bed.run_event(selfish.recurse())
    assert isinstance(event.error, OrleansDeadlockError)


def test_orleans_no_cross_grain_atomicity(orleans_bed):
    """A nested call's lock is dropped on return: no two-phase locking.

    Two concurrent transfer-like requests interleave at the cells, which
    AEON's protocol would forbid.
    """
    runtime = orleans_bed.runtime

    class Transfer(ContextClass):
        def __init__(self):
            self.a = None
            self.b = None

        def move(self):
            yield self.a.add(-1)
            yield self.b.add(1)

    a = runtime.create_context(Cell, server=orleans_bed.servers[0], name="acct-a",
                               args=(10,))
    b = runtime.create_context(Cell, server=orleans_bed.servers[0], name="acct-b")
    t1 = runtime.create_context(Transfer, server=orleans_bed.servers[0], name="t1")
    t2 = runtime.create_context(Transfer, server=orleans_bed.servers[1], name="t2")
    for t in (t1, t2):
        runtime.instance_of(t).a = a
        runtime.instance_of(t).b = b
    done = [orleans_bed.submit(t1.move()), orleans_bed.submit(t2.move())]
    orleans_bed.run()
    assert all(d.triggered and d.value.error is None for d in done)
    # Effects applied (atomicity of the *sum* holds trivially here, the
    # point is that no deadlock and no global lock existed).
    assert runtime.instance_of(a).value == 8
    assert runtime.instance_of(b).value == 2


def test_orleans_hash_placement_spreads_grains():
    bed = Testbed(OrleansRuntime, n_servers=4)
    runtime = bed.runtime
    for i in range(16):
        runtime.create_context(Cell, name=f"spread-{i}")
    hosts = {runtime.placement[f"spread-{i}"] for i in range(16)}
    assert len(hosts) == 4  # round-robin hash over all servers


def test_orleans_cpu_overhead_applied(orleans_bed):
    assert orleans_bed.runtime.cpu_factor == orleans_bed.runtime.costs.orleans_overhead
    aeon = Testbed(AeonRuntime)
    assert aeon.runtime.cpu_factor == 1.0


def test_orleans_async_fanout_joined(orleans_bed):
    _group, workers, _ = build_group(orleans_bed, shared_cells=0, private_cells=3)
    event = orleans_bed.run_event(workers[0].bump_all_async(5))
    assert event.error is None
    runtime = orleans_bed.runtime
    for cell in runtime.instance_of(workers[0]).cells:
        assert runtime.instance_of(cell).value == 5


def test_orleans_allows_unowned_calls(orleans_bed):
    """Grains are unordered: calling a foreign grain is legal."""

    class Caller(ContextClass):
        def __init__(self):
            pass

        def poke(self, foreign):
            result = yield foreign.add(1)
            return result

    runtime = orleans_bed.runtime
    caller = runtime.create_context(Caller, server=orleans_bed.servers[0], name="c")
    foreign = runtime.create_context(Cell, server=orleans_bed.servers[1], name="f")
    event = orleans_bed.run_event(caller.poke(foreign))
    assert event.error is None
    assert event.result == 1
