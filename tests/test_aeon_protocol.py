"""Integration tests of the AEON execution protocol (Algorithm 2)."""

import pytest

from repro.core import AeonRuntime, CostModel
from repro.core.errors import (
    AeonError,
    OwnershipViolationError,
    ReadOnlyViolationError,
)
from repro.core.events import AccessMode

from conftest import Cell, Group, Testbed, Worker, build_group


# ----------------------------------------------------------------------
# Basic event execution
# ----------------------------------------------------------------------
def test_event_executes_and_returns_result(aeon_bed):
    _group, workers, _shared = build_group(aeon_bed)
    event = aeon_bed.run_event(workers[0].bump_all(2))
    assert event.error is None
    assert event.result == 1  # first step counter
    cells = aeon_bed.runtime.instance_of(workers[0]).cells.refs()
    values = [aeon_bed.runtime.instance_of(c).value for c in cells]
    assert all(v == 2 for v in values)


def test_event_latency_recorded(aeon_bed):
    _group, workers, _ = build_group(aeon_bed)
    aeon_bed.run_event(workers[0].bump_all())
    assert aeon_bed.runtime.latency.count() == 1
    assert aeon_bed.runtime.latency.mean_latency() > 0


def test_unknown_method_raises_at_submit(aeon_bed):
    _group, workers, _ = build_group(aeon_bed)
    with pytest.raises(AeonError):
        aeon_bed.submit(workers[0].call("no_such_method"))


def test_plain_method_call_supported(aeon_bed):
    """Non-generator methods execute directly."""
    runtime = aeon_bed.runtime
    cell = runtime.create_context(Cell, server=aeon_bed.servers[0], name="solo")
    event = aeon_bed.run_event(cell.add(5))
    assert event.result == 5
    assert runtime.instance_of(cell).value == 5


# ----------------------------------------------------------------------
# Dominator sequencing
# ----------------------------------------------------------------------
def test_dominator_is_group_for_sharing_workers(aeon_bed):
    group, workers, _shared = build_group(aeon_bed, shared_cells=1)
    event = aeon_bed.run_event(workers[0].bump_all())
    assert event.dom == group.cid


def test_dominator_is_self_without_sharing(aeon_bed):
    _group, workers, _ = build_group(aeon_bed, shared_cells=0)
    event = aeon_bed.run_event(workers[0].bump_all())
    assert event.dom == workers[0].cid


def test_conflicting_events_serialize_on_shared_cell(aeon_bed):
    _group, workers, shared = build_group(aeon_bed, n_workers=2, shared_cells=1)
    done = [aeon_bed.submit(w.bump_all()) for w in workers for _ in range(10)]
    aeon_bed.run()
    assert all(d.triggered and d.value.error is None for d in done)
    assert aeon_bed.runtime.instance_of(shared[0]).value == 20
    aeon_bed.runtime.check_history()


def test_non_conflicting_workers_overlap_in_time(aeon_bed):
    """Workers without shared cells execute concurrently."""
    _group, workers, _ = build_group(aeon_bed, n_workers=2, shared_cells=0)
    first = aeon_bed.submit(workers[0].crunch(50.0))
    second = aeon_bed.submit(workers[1].crunch(50.0))
    aeon_bed.run()
    e1, e2 = first.value, second.value
    # Each took ~19ms of wall (50 unit / 2.6); overlapping means both
    # finished well before the 2x serial bound.
    assert max(e1.committed_ms, e2.committed_ms) < 1.5 * 50 / 2.6 + 5


def test_same_dominator_events_do_not_overlap(aeon_bed):
    _group, workers, _ = build_group(aeon_bed, n_workers=2, shared_cells=1)
    first = aeon_bed.submit(workers[0].crunch(50.0))
    second = aeon_bed.submit(workers[1].crunch(50.0))
    aeon_bed.run()
    spans = sorted(
        (e.value.started_ms, e.value.committed_ms) for e in (first, second)
    )
    # Exclusive dominator: the second execution starts after the first
    # commits (modulo release-message latency).
    assert spans[1][0] >= spans[0][1] - 1.0


# ----------------------------------------------------------------------
# Read-only events
# ----------------------------------------------------------------------
def test_readonly_events_share_dominator(aeon_bed):
    group, workers, _ = build_group(aeon_bed, n_workers=2, shared_cells=1)
    first = aeon_bed.submit(workers[0].slow_scan(30.0))
    second = aeon_bed.submit(workers[1].slow_scan(30.0))
    aeon_bed.run()
    e1, e2 = first.value, second.value
    assert e1.mode is AccessMode.RO and e2.mode is AccessMode.RO
    # RO events overlap: the later start precedes the earlier commit.
    assert max(e1.started_ms, e2.started_ms) < min(e1.committed_ms, e2.committed_ms)


def test_readonly_event_cannot_mutate(aeon_bed):
    class BadReader(Worker):
        from repro.core.context import readonly as _ro

        @_ro
        def sneaky(self):
            for cell in self.cells:
                yield cell.add(1)  # add() is not readonly

    runtime = aeon_bed.runtime
    bad = runtime.create_context(BadReader, server=aeon_bed.servers[0], name="bad")
    cell = runtime.create_context(Cell, owners=[bad], server=aeon_bed.servers[0])
    runtime.instance_of(bad).cells.add(cell)
    event = aeon_bed.run_event(bad.sneaky())
    assert isinstance(event.error, ReadOnlyViolationError)
    assert runtime.instance_of(cell).value == 0


def test_reads_recorded_not_written(aeon_bed):
    _group, workers, _ = build_group(aeon_bed)
    event = aeon_bed.run_event(workers[0].read_cells())
    assert event.writes == {}
    assert workers[0].cid in event.reads


# ----------------------------------------------------------------------
# Ownership discipline
# ----------------------------------------------------------------------
def test_call_outside_ownership_rejected(aeon_bed):
    class Rogue(Worker):
        def poke_foreign(self, foreign_ref):
            yield foreign_ref.add(1)

    runtime = aeon_bed.runtime
    rogue = runtime.create_context(Rogue, server=aeon_bed.servers[0], name="rogue")
    foreign = runtime.create_context(Cell, server=aeon_bed.servers[0], name="foreign")
    event = aeon_bed.run_event(rogue.poke_foreign(foreign))
    assert isinstance(event.error, OwnershipViolationError)


def test_error_in_body_releases_locks(aeon_bed):
    class Exploder(Worker):
        def explode(self):
            yield self.cells.refs()[0].add(1)
            raise RuntimeError("kaboom")

    runtime = aeon_bed.runtime
    boom = runtime.create_context(Exploder, server=aeon_bed.servers[0], name="boom")
    cell = runtime.create_context(Cell, owners=[boom], server=aeon_bed.servers[0])
    runtime.instance_of(boom).cells.add(cell)
    event = aeon_bed.run_event(boom.explode())
    assert isinstance(event.error, RuntimeError)
    # Subsequent events proceed: no lock leaked.
    event2 = aeon_bed.run_event(cell.add(1))
    assert event2.error is None
    assert not runtime.lock_of(boom.cid).is_held()
    assert not runtime.lock_of(cell.cid).is_held()


def test_body_can_catch_nested_call_error(aeon_bed):
    class Catcher(Worker):
        def try_poke(self, foreign_ref):
            try:
                yield foreign_ref.add(1)
            except OwnershipViolationError:
                return "caught"
            return "not caught"

    runtime = aeon_bed.runtime
    catcher = runtime.create_context(Catcher, server=aeon_bed.servers[0], name="catcher")
    foreign = runtime.create_context(Cell, server=aeon_bed.servers[0], name="foreign2")
    event = aeon_bed.run_event(catcher.try_poke(foreign))
    assert event.error is None
    assert event.result == "caught"


# ----------------------------------------------------------------------
# Asynchronous calls and sub-events
# ----------------------------------------------------------------------
def test_async_calls_joined_before_completion(aeon_bed):
    _group, workers, _ = build_group(aeon_bed, n_workers=1, private_cells=3)
    event = aeon_bed.run_event(workers[0].bump_all_async(4))
    assert event.error is None
    runtime = aeon_bed.runtime
    for cell in runtime.instance_of(workers[0]).cells:
        assert runtime.instance_of(cell).value == 4


def test_group_fanout_async(aeon_bed):
    group, workers, shared = build_group(aeon_bed, n_workers=3, shared_cells=1)
    event = aeon_bed.run_event(group.fan_out(1))
    assert event.error is None
    assert aeon_bed.runtime.instance_of(shared[0]).value == 3
    aeon_bed.runtime.check_history()


def test_sub_event_runs_after_creator(aeon_bed):
    _group, workers, _ = build_group(aeon_bed, n_workers=2, shared_cells=0)
    spec = workers[0].chain(workers[1].bump_all())
    done = aeon_bed.submit(spec, tag="creator")
    aeon_bed.run()
    creator = done.value
    assert creator.error is None
    # The dispatched sub-event committed after the creator.
    runtime = aeon_bed.runtime
    assert runtime.instance_of(workers[1]).steps == 1
    sub_samples = [s for s in runtime.latency.samples if s.tag.endswith("sub")]
    assert len(sub_samples) == 1
    assert sub_samples[0].start_ms >= creator.committed_ms - 1e-9


# ----------------------------------------------------------------------
# Chain release (early release) vs strict hold
# ----------------------------------------------------------------------
def test_chain_release_allows_pipeline_overlap():
    strict = Testbed(AeonRuntime, costs=CostModel(early_release=False))
    chained = Testbed(AeonRuntime, costs=CostModel(early_release=True))
    results = {}
    for name, bed in (("strict", strict), ("chain", chained)):
        group, workers, _shared = build_group(bed, n_workers=2, shared_cells=1)
        done = [bed.submit(w.crunch(20.0)) for w in workers for _ in range(5)]
        bed.run()
        assert all(d.triggered for d in done)
        results[name] = bed.sim.now
        bed.runtime.check_history()
    # Identical work, same serialization points: chain release can only
    # finish earlier or at the same time.
    assert results["chain"] <= results["strict"] + 1e-6


def test_both_release_modes_strictly_serializable(aeon_bed):
    for early in (True, False):
        bed = Testbed(AeonRuntime, costs=CostModel(early_release=early))
        _group, workers, shared = build_group(bed, n_workers=3, shared_cells=2)
        done = [bed.submit(w.bump_all()) for w in workers for _ in range(8)]
        bed.run()
        assert all(d.triggered and d.value.error is None for d in done)
        assert bed.runtime.instance_of(shared[0]).value == 24
        bed.runtime.check_history()


# ----------------------------------------------------------------------
# Client location caching
# ----------------------------------------------------------------------
def test_client_cache_learns_location(aeon_bed):
    _group, workers, _ = build_group(aeon_bed)
    aeon_bed.run_event(workers[0].bump_all())
    cached = aeon_bed.client.locate(workers[0].cid)
    assert cached == aeon_bed.runtime.placement[workers[0].cid]


def test_stale_cache_pays_forward_hop(aeon_bed):
    _group, workers, _ = build_group(aeon_bed)
    runtime = aeon_bed.runtime
    aeon_bed.run_event(workers[0].bump_all())
    # Forge a stale cache entry pointing at the other server.
    actual = runtime.placement[workers[0].cid]
    other = next(s.name for s in aeon_bed.servers if s.name != actual)
    aeon_bed.client.learn(workers[0].cid, other)
    event = aeon_bed.run_event(workers[0].bump_all())
    assert event.error is None
    assert aeon_bed.client.locate(workers[0].cid) == actual


# ----------------------------------------------------------------------
# Stress: no deadlock, strict serializability under mixed load
# ----------------------------------------------------------------------
def test_mixed_load_stress_serializable(aeon_bed):
    """Race-free mixed load: sync sharing + async fan-out over disjoint
    children stays strictly serializable under chain release.

    Note the paper's §4 rule: asynchronous calls that update *common*
    children are a programming error (no semantics); the fan-out group
    here therefore has no shared cells (see
    test_racy_async_fanout_contract for the erroneous case).
    """
    group, workers, shared = build_group(
        aeon_bed, n_workers=4, shared_cells=2, private_cells=2
    )
    fan_group, _fan_workers, _ = build_group(
        aeon_bed, n_workers=3, shared_cells=0, private_cells=2
    )
    done = []
    for round_no in range(15):
        for i, worker in enumerate(workers):
            done.append(aeon_bed.submit(worker.bump_all()))
            if i % 2 == 0:
                done.append(aeon_bed.submit(worker.read_cells()))
        done.append(aeon_bed.submit(fan_group.fan_out()))
        done.append(aeon_bed.submit(group.nr_workers()))
    aeon_bed.run(horizon=300000)
    stuck = [d for d in done if not d.triggered]
    assert not stuck, f"{len(stuck)} events never completed"
    errors = [d.value.error for d in done if d.value.error]
    assert not errors, errors[:3]
    aeon_bed.runtime.check_history()
    assert aeon_bed.runtime.events_inflight == 0


def test_racy_async_fanout_contract():
    """§4: async calls updating common children are a programming error.

    Under strict hold-till-commit the runtime still serializes such
    programs; under chain release (the paper's pipelined performance
    mode) the race becomes observable — which is exactly the
    coarse-grained-interleaving semantics the paper assigns to it.
    """
    strict = Testbed(AeonRuntime, costs=CostModel(early_release=False))
    group, workers, shared = build_group(
        strict, n_workers=4, shared_cells=2, private_cells=1
    )
    done = []
    for _ in range(10):
        done.append(strict.submit(group.fan_out()))
        for worker in workers:
            done.append(strict.submit(worker.bump_all()))
    strict.run(horizon=300000)
    assert all(d.triggered and d.value.error is None for d in done)
    # Hold-till-commit keeps even the racy program strictly serializable.
    strict.runtime.check_history()
