"""Unit tests for Store, Resource and Notifier."""

import pytest

from repro.sim.kernel import SimulationError, Simulator
from repro.sim.queues import Notifier, Resource, Store


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------
def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")

    def body():
        value = yield store.get()
        return value

    assert sim.run_process(body()) == "x"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def producer():
        yield sim.timeout(5.0)
        store.put("late")

    def consumer():
        value = yield store.get()
        return value, sim.now

    sim.process(producer())
    assert sim.run_process(consumer()) == ("late", 5.0)


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    for item in (1, 2, 3):
        store.put(item)
    got = []

    def consumer():
        for _ in range(3):
            got.append((yield store.get()))

    sim.run_process(consumer())
    assert got == [1, 2, 3]


def test_store_getters_served_in_request_order():
    sim = Simulator()
    store = Store(sim)
    results = []

    def consumer(name):
        value = yield store.get()
        results.append((name, value))

    sim.process(consumer("first"))
    sim.process(consumer("second"))
    sim.schedule(1.0, store.put, "a")
    sim.schedule(2.0, store.put, "b")
    sim.run()
    assert results == [("first", "a"), ("second", "b")]


def test_store_len_and_waiting():
    sim = Simulator()
    store = Store(sim)
    assert len(store) == 0
    store.put(1)
    assert len(store) == 1
    sim.run()
    assert store.waiting_getters == 0


# ----------------------------------------------------------------------
# Resource
# ----------------------------------------------------------------------
def test_resource_capacity_enforced():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    active = []
    peak = []

    def worker(i):
        yield from res.use(10.0)
        peak.append(res.in_use)

    def tracker():
        yield sim.timeout(5.0)
        active.append(res.in_use)

    for i in range(5):
        sim.process(worker(i))
    sim.process(tracker())
    sim.run()
    assert active == [2]
    assert sim.now == 30.0  # 5 jobs x 10ms over 2 slots


def test_resource_fifo_admission():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(name):
        grant = res.request()
        yield grant
        order.append(name)
        yield sim.timeout(1.0)
        res.release(grant)

    for name in ("a", "b", "c"):
        sim.process(worker(name))
    sim.run()
    assert order == ["a", "b", "c"]


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_release_unacquired_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    grant = sim.signal("fake")
    with pytest.raises(SimulationError):
        res.release(grant)


def test_resource_busy_accounting():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def worker():
        yield from res.use(8.0)

    sim.run_process(worker())
    assert res.busy_core_ms() == pytest.approx(8.0)


def test_resource_queue_length():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def worker():
        yield from res.use(5.0)

    sim.process(worker())
    sim.process(worker())
    sim.run(until=1.0)
    assert res.queue_length == 1


# ----------------------------------------------------------------------
# Notifier
# ----------------------------------------------------------------------
def test_notifier_wakes_all_waiters():
    sim = Simulator()
    gate = Notifier(sim)
    woken = []

    def waiter(name):
        yield gate.wait()
        woken.append((name, sim.now))

    sim.process(waiter("a"))
    sim.process(waiter("b"))
    sim.schedule(3.0, gate.notify_all)
    sim.run()
    assert woken == [("a", 3.0), ("b", 3.0)]


def test_notifier_wait_for_predicate_already_true():
    sim = Simulator()
    gate = Notifier(sim)

    def body():
        yield gate.wait_for(lambda: True)
        return sim.now

    assert sim.run_process(body()) == 0.0


def test_notifier_wait_for_predicate_becomes_true():
    sim = Simulator()
    gate = Notifier(sim)
    state = {"ready": False}

    def flipper():
        yield sim.timeout(2.0)
        gate.notify_all()  # not ready yet
        yield sim.timeout(2.0)
        state["ready"] = True
        gate.notify_all()

    def body():
        yield gate.wait_for(lambda: state["ready"])
        return sim.now

    sim.process(flipper())
    assert sim.run_process(body()) == 4.0


def test_notifier_wait_for_prunes_waiter_on_external_completion():
    # A wait_for whose signal is completed out of band must not leave
    # its helper wait() signal in the notifier's waiter list forever.
    sim = Simulator()
    gate = Notifier(sim)
    done = gate.wait_for(lambda: False)
    sim.run()
    assert len(gate._waiters) == 1
    done.succeed(None)
    sim.run()
    assert gate._waiters == []


def test_notifier_notify_all_skips_already_triggered_waiters():
    sim = Simulator()
    gate = Notifier(sim)
    waiter = gate.wait()
    waiter.succeed("early")
    gate.notify_all()  # must not double-complete the waiter
    sim.run()
    assert waiter.value == "early"


def test_notifier_wait_for_repeated_cycles_do_not_accumulate_waiters():
    sim = Simulator()
    gate = Notifier(sim)
    state = {"ready": False}

    def driver():
        for _ in range(50):
            yield sim.timeout(1.0)
            gate.notify_all()  # predicate still false: re-registers once
        state["ready"] = True
        yield sim.timeout(1.0)
        gate.notify_all()

    def body():
        yield gate.wait_for(lambda: state["ready"])

    sim.process(driver())
    sim.run_process(body())
    assert gate._waiters == []
