"""Parallel experiment engine: ``--jobs N`` must be byte-identical to serial.

Figure data is assembled from :class:`~repro.harness.runner.Cell`
results in cell order, and each cell is a self-contained deterministic
simulation — so fanning cells out to worker processes must reproduce
the serial figure data *byte for byte*.  These tests JSON-serialize
both paths and compare the strings, per the determinism contract in
docs/ARCHITECTURE.md.
"""

import json

import pytest

from repro.harness.experiments import _jsonable, fig5a, fig6a, fig9, fig11
from repro.harness.runner import Cell, CellResult, execute_cell, resolve_jobs, run_cells


def _dump(data) -> str:
    return json.dumps(_jsonable(data), sort_keys=True)


# ----------------------------------------------------------------------
# Engine mechanics (cheap)
# ----------------------------------------------------------------------
def _cells(values):
    # Pool-crossing cells must use a dotted path importable in *any*
    # worker (fork or spawn) — a stdlib function qualifies, this test
    # module does not.
    return [Cell((x,), "json:dumps", {"obj": x}) for x in values]


def test_run_cells_preserves_cell_order():
    cells = _cells([7, 3, 5, 1])
    for jobs in (1, 3):
        results = run_cells(cells, jobs=jobs)
        assert [r.key for r in results] == [(7,), (3,), (5,), (1,)]
        assert [r.value for r in results] == ["7", "3", "5", "1"]


def _square_cell(x):  # in-process execute_cell only: no pool, any platform
    return x * x


def test_execute_cell_resolves_dotted_path():
    result = execute_cell(Cell(("k",), "test_parallel_runner:_square_cell", {"x": 6}))
    assert result == CellResult(("k",), 36)


def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(5) == 5
    assert resolve_jobs(0) >= 1  # cpu_count
    with pytest.raises(ValueError):
        resolve_jobs(-1)


def test_fig9_parallel_byte_identical():
    assert _dump(fig9(scale="quick", jobs=1)) == _dump(fig9(scale="quick", jobs=4))


# ----------------------------------------------------------------------
# Figure-level byte-identity (the acceptance gate; slower)
# ----------------------------------------------------------------------
def test_fig5a_quick_parallel_byte_identical():
    assert _dump(fig5a(scale="quick", jobs=1)) == _dump(fig5a(scale="quick", jobs=4))


def test_fig6a_quick_parallel_byte_identical():
    assert _dump(fig6a(scale="quick", jobs=1)) == _dump(fig6a(scale="quick", jobs=4))


def test_fig11_quick_parallel_byte_identical():
    assert _dump(fig11(scale="quick", jobs=1)) == _dump(fig11(scale="quick", jobs=4))
