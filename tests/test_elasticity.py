"""Tests for cloud storage, migration, policies, the eManager, snapshots."""

import pytest

from repro.core import AeonRuntime
from repro.core.errors import MigrationError
from repro.elasticity import (
    CloudStorage,
    EManager,
    MigrateAction,
    MigrationCoordinator,
    ResourceUtilizationPolicy,
    ScaleInAction,
    ScaleOutAction,
    ServerContentionPolicy,
    SLAPolicy,
    snapshot_context,
)
from repro.elasticity.policies import ClusterSnapshot, ServerReport
from repro.sim import M1_LARGE, M1_SMALL, Server, Simulator

from conftest import Cell, Testbed, Worker, build_group


def make_coordinator(bed):
    storage = CloudStorage(bed.sim)
    host = Server(bed.sim, "~emanager", M1_LARGE)
    bed.network.register(host.name, host.mailbox, M1_LARGE)
    return MigrationCoordinator(bed.runtime, storage, host), storage


# ----------------------------------------------------------------------
# CloudStorage
# ----------------------------------------------------------------------
def test_storage_write_read_roundtrip():
    sim = Simulator()
    storage = CloudStorage(sim)

    def body():
        yield storage.write("k", {"v": 1}, size_bytes=100)
        value = yield storage.read("k")
        return value

    assert sim.run_process(body()) == {"v": 1}
    assert storage.writes == 1 and storage.reads == 1


def test_storage_read_races_see_old_value():
    sim = Simulator()
    storage = CloudStorage(sim)
    storage.write("k", "new", size_bytes=10_000_000)  # slow write

    def reader():
        value = yield storage.read("k")
        return value

    assert sim.run_process(reader()) is None  # write not yet durable


def test_storage_delete_and_prefix_listing():
    sim = Simulator()
    storage = CloudStorage(sim)

    def body():
        yield storage.write("m/1", 1)
        yield storage.write("m/2", 2)
        yield storage.write("other", 3)
        yield storage.delete("m/1")

    sim.run_process(body())
    assert storage.keys_with_prefix("m/") == ["m/2"]


# ----------------------------------------------------------------------
# Migration protocol
# ----------------------------------------------------------------------
def test_migration_moves_context(aeon_bed):
    coordinator, storage = make_coordinator(aeon_bed)
    runtime = aeon_bed.runtime
    cell = runtime.create_context(Cell, server=aeon_bed.servers[0], name="mover")
    done = coordinator.migrate("mover", aeon_bed.servers[1])
    aeon_bed.run()
    assert done.triggered and done.ok
    assert runtime.placement["mover"] == aeon_bed.servers[1].name
    record = done.value
    assert record.step == "done"
    assert record.finished_ms is not None
    # WAL cleaned up after completion.
    assert storage.keys_with_prefix("migration/") == []


def test_migration_updates_durable_mapping(aeon_bed):
    coordinator, storage = make_coordinator(aeon_bed)
    runtime = aeon_bed.runtime
    runtime.create_context(Cell, server=aeon_bed.servers[0], name="m2")
    coordinator.migrate("m2", aeon_bed.servers[1])
    aeon_bed.run()
    assert storage.peek("mapping/m2") == aeon_bed.servers[1].name


def test_migration_rejects_bad_arguments(aeon_bed):
    coordinator, _ = make_coordinator(aeon_bed)
    runtime = aeon_bed.runtime
    runtime.create_context(Cell, server=aeon_bed.servers[0], name="fixed")
    with pytest.raises(MigrationError):
        coordinator.migrate("ghost", aeon_bed.servers[1])
    with pytest.raises(MigrationError):
        coordinator.migrate("fixed", aeon_bed.servers[0])  # already there


def test_migration_transfer_time_scales_with_size(aeon_bed):
    coordinator, _ = make_coordinator(aeon_bed)
    runtime = aeon_bed.runtime

    class BigCell(Cell):
        size_bytes = 10_000_000

    runtime.create_context(Cell, server=aeon_bed.servers[0], name="small-ctx")
    runtime.create_context(BigCell, server=aeon_bed.servers[0], name="big-ctx")
    small_done = coordinator.migrate("small-ctx", aeon_bed.servers[1])
    aeon_bed.run()
    big_done = coordinator.migrate("big-ctx", aeon_bed.servers[1])
    aeon_bed.run()
    assert small_done.ok and big_done.ok
    small_time = small_done.value.finished_ms - small_done.value.started_ms
    big_time = big_done.value.finished_ms - big_done.value.started_ms
    assert big_time > small_time + 50  # 10 MB over 0.7 Gbps >> 1 KB


def test_migration_preserves_consistency_under_load(aeon_bed):
    """Events keep completing correctly across a migration (§5.2)."""
    coordinator, _ = make_coordinator(aeon_bed)
    runtime = aeon_bed.runtime
    cell = runtime.create_context(Cell, server=aeon_bed.servers[0], name="hot")
    sim = aeon_bed.sim
    done = []

    def load():
        for _ in range(60):
            done.append(aeon_bed.submit(cell.add(1)))
            yield sim.timeout(0.5)

    migrated = {}

    def migrate():
        yield sim.timeout(10.0)
        handle = coordinator.migrate("hot", aeon_bed.servers[1])
        yield handle
        migrated["ok"] = handle.ok

    sim.process(load())
    sim.process(migrate())
    aeon_bed.run()
    assert migrated["ok"]
    assert all(d.triggered and d.value.error is None for d in done)
    assert runtime.instance_of(cell).value == 60
    runtime.check_history()


def test_migration_blocks_events_only_briefly(aeon_bed):
    """Events targeting the migrating context queue and then proceed."""
    coordinator, _ = make_coordinator(aeon_bed)
    runtime = aeon_bed.runtime
    cell = runtime.create_context(Cell, server=aeon_bed.servers[0], name="pausy")
    handle = coordinator.migrate("pausy", aeon_bed.servers[1])
    during = aeon_bed.submit(cell.add(1))
    aeon_bed.run()
    assert handle.ok and during.triggered
    assert during.value.error is None


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
def snap(reports, mean_latency=5.0, completed=100, contexts=None):
    return ClusterSnapshot(
        now_ms=0.0,
        servers=reports,
        mean_latency_ms=mean_latency,
        p99_latency_ms=mean_latency * 3,
        completed_in_window=completed,
        contexts_by_server=contexts or {},
    )


def test_resource_policy_moves_hot_to_cold():
    policy = ResourceUtilizationPolicy(lower=0.2, upper=0.8)
    snapshot = snap(
        [
            ServerReport("hot", 0.95, 4, True),
            ServerReport("cold", 0.05, 1, True),
        ],
        contexts={"hot": ["c1", "c2"], "cold": ["c9"]},
    )
    actions = policy.decide(snapshot)
    assert actions == [MigrateAction(cid="c1", dst_server="cold")]


def test_resource_policy_scales_out_when_no_cold():
    policy = ResourceUtilizationPolicy(lower=0.2, upper=0.8)
    snapshot = snap([ServerReport("hot", 0.95, 4, True)])
    actions = policy.decide(snapshot)
    assert actions == [ScaleOutAction(count=1)]


def test_resource_policy_validates_bounds():
    with pytest.raises(ValueError):
        ResourceUtilizationPolicy(lower=0.9, upper=0.5)


def test_contention_policy_caps_contexts():
    policy = ServerContentionPolicy(max_contexts_per_server=2)
    snapshot = snap(
        [
            ServerReport("full", 0.5, 5, True),
            ServerReport("empty", 0.1, 0, True),
        ],
        contexts={"full": ["a", "b", "c", "d", "e"], "empty": []},
    )
    actions = policy.decide(snapshot)
    assert actions == [MigrateAction(cid="a", dst_server="empty")]


def test_sla_policy_scales_out_on_violation():
    policy = SLAPolicy(sla_ms=10.0, scale_out_step=2)
    snapshot = snap(
        [ServerReport("s1", 0.9, 3, True)],
        mean_latency=25.0,
        contexts={"s1": ["a", "b", "c"]},
    )
    actions = policy.decide(snapshot)
    assert any(isinstance(a, ScaleOutAction) for a in actions)


def test_sla_policy_scales_in_when_idle():
    policy = SLAPolicy(sla_ms=10.0, min_servers=1)
    snapshot = snap(
        [ServerReport("s1", 0.1, 2, True), ServerReport("s2", 0.05, 0, True)],
        mean_latency=1.0,
        contexts={"s1": ["a", "b"], "s2": []},
    )
    actions = policy.decide(snapshot)
    assert actions == [ScaleInAction(server="s2")]


def test_sla_policy_respects_min_servers():
    policy = SLAPolicy(sla_ms=10.0, min_servers=1)
    snapshot = snap([ServerReport("only", 0.1, 1, True)], mean_latency=1.0,
                    contexts={"only": ["a"]})
    assert policy.decide(snapshot) == []


def test_policy_constraints_veto_migrations():
    policy = ResourceUtilizationPolicy(
        lower=0.2, upper=0.8, constraints=[lambda m: m.cid != "pinned"]
    )
    snapshot = snap(
        [
            ServerReport("hot", 0.95, 2, True),
            ServerReport("cold", 0.05, 0, True),
        ],
        contexts={"hot": ["pinned"], "cold": []},
    )
    assert policy.decide(snapshot) == []


def test_policy_max_servers_caps_scale_out():
    policy = ResourceUtilizationPolicy(lower=0.2, upper=0.8, max_servers=1)
    snapshot = snap([ServerReport("hot", 0.99, 3, True)])
    assert policy.decide(snapshot) == []


# ----------------------------------------------------------------------
# EManager end to end
# ----------------------------------------------------------------------
def test_emanager_scales_out_under_load():
    bed = Testbed(AeonRuntime, n_servers=1)
    bed.cluster.boot_delay_ms = 300.0  # quick boots for the test
    runtime = bed.runtime
    storage = CloudStorage(bed.sim)
    policy = SLAPolicy(sla_ms=3.0, scale_out_step=1, max_servers=4)
    manager = EManager(runtime, storage, policy, M1_SMALL,
                       report_interval_ms=200.0)
    workers = [
        runtime.create_context(Worker, server=bed.servers[0], name=f"load-{i}")
        for i in range(6)
    ]
    manager.start()
    done = []

    def load():
        for i in range(2000):
            # ~8 unit-ms per event at 0.8 ms spacing overloads the single
            # m3.large (2 cores x 2.6 speed ~ 650 events/s capacity).
            done.append(bed.submit(workers[i % len(workers)].crunch(8.0)))
            yield bed.sim.timeout(0.8)

    bed.sim.process(load())
    bed.sim.run(until=4000)
    manager.stop()
    bed.sim.run(until=12000)
    assert len(runtime.cluster.alive_servers()) > 1
    assert manager.migrations_started >= 1
    finished = [d for d in done if d.triggered]
    assert len(finished) == len(done)
    assert all(d.value.error is None for d in finished)


def test_emanager_records_server_series():
    bed = Testbed(AeonRuntime, n_servers=2)
    storage = CloudStorage(bed.sim)
    manager = EManager(bed.runtime, storage, SLAPolicy(sla_ms=10.0), M1_SMALL,
                       report_interval_ms=100.0)
    manager.start()
    bed.sim.run(until=1000)
    manager.stop()
    assert len(manager.server_count_series.points) >= 5
    assert manager.server_count_series.points[0][1] == 2


def test_emanager_crash_recovery_finishes_migration(aeon_bed):
    """§5.3: a recovering eManager completes WAL'd migrations."""
    runtime = aeon_bed.runtime
    storage = CloudStorage(aeon_bed.sim)
    manager = EManager(runtime, storage, SLAPolicy(sla_ms=10.0), M1_LARGE)
    runtime.create_context(Cell, server=aeon_bed.servers[0], name="wal-ctx")
    # Start a migration, crash the manager mid-flight (before transfer).
    handle = manager.coordinator.migrate("wal-ctx", aeon_bed.servers[1])
    aeon_bed.sim.run(until=aeon_bed.sim.now + 13.5)  # past step I, pre-move
    manager.crash()
    assert manager.crashed
    in_flight_keys = storage.keys_with_prefix("migration/")
    if not handle.triggered:
        assert in_flight_keys  # WAL present for the successor
        successor = manager.recover()
        aeon_bed.run()
        assert runtime.placement["wal-ctx"] == aeon_bed.servers[1].name
    else:  # pragma: no cover - timing margin
        assert runtime.placement["wal-ctx"] == aeon_bed.servers[1].name


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
def test_snapshot_captures_subtree(aeon_bed):
    group, workers, shared = build_group(aeon_bed, n_workers=2, shared_cells=1)
    storage = CloudStorage(aeon_bed.sim)
    for w in workers:
        aeon_bed.run_event(w.bump_all(3))
    done = snapshot_context(aeon_bed.runtime, storage, group)
    aeon_bed.run()
    assert done.ok
    bundle = storage.peek(done.value)
    assert shared[0].cid in bundle
    assert bundle[shared[0].cid]["value"] == 6
    assert workers[0].cid in bundle


def test_snapshot_is_consistent_under_concurrent_writes(aeon_bed):
    """The snapshot reflects a single point in the serial order."""
    group, workers, shared = build_group(aeon_bed, n_workers=2, shared_cells=1,
                                         private_cells=0)
    runtime = aeon_bed.runtime
    storage = CloudStorage(aeon_bed.sim)
    for _ in range(5):
        aeon_bed.submit(workers[0].bump_all())
        aeon_bed.submit(workers[1].bump_all())
    snap_done = snapshot_context(runtime, storage, group)
    for _ in range(5):
        aeon_bed.submit(workers[0].bump_all())
    aeon_bed.run()
    assert snap_done.ok
    bundle = storage.peek(snap_done.value)
    value = bundle[shared[0].cid]["value"]
    # Workers bump the shared cell once each: value is the number of
    # events serialized before the snapshot; it must be a whole count
    # between 0 and 15 and the cell's final value must be 15.
    assert 0 <= value <= 15
    assert runtime.instance_of(shared[0]).value == 15


def test_snapshot_skips_none_state(aeon_bed):
    class Shy(Cell):
        def state_snapshot(self):
            return None

    runtime = aeon_bed.runtime
    parent = runtime.create_context(Worker, server=aeon_bed.servers[0], name="par")
    shy = runtime.create_context(Shy, owners=[parent], server=aeon_bed.servers[0],
                                 name="shy")
    runtime.instance_of(parent).cells.add(shy)
    storage = CloudStorage(aeon_bed.sim)
    done = snapshot_context(runtime, storage, parent)
    aeon_bed.run()
    bundle = storage.peek(done.value)
    assert "shy" not in bundle
    assert "par" in bundle
