"""The filesystem work queue: spool protocol, leases, stragglers, workers.

Three layers (docs/ARCHITECTURE.md § Executors):

* protocol units — ``os.rename`` claims are exactly-once, heartbeats and
  failure markers round-trip;
* coordinator policy, driven in-process with hand-played worker moves —
  a stale heartbeat expires the lease and re-queues the claimed cell, a
  cell running past the p90 deadline is speculatively re-published, the
  first result wins;
* real worker subprocesses — two workers drain real figure sweeps to
  byte-identical golden data, and a SIGKILLed worker's leased cell is
  re-dispatched so the run still completes.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.exec import CellFailedError, QueueExecutor
from repro.exec import queue as q
from repro.exec.base import Cell
from repro.exec.worker import run_worker
from repro.harness.experiments import _jsonable
from repro.harness.runner import run_cells
from repro.harness.scenarios import assemble_scenario, expand, prepare_scenario
from repro.results.store import ResultStore, cell_key

_HERE = Path(__file__).parent
GOLDEN = json.loads(
    (_HERE / "data" / "figures_quick_seed0.json").read_text()
)["experiments"]


def _dump(data) -> str:
    return json.dumps(_jsonable(data), sort_keys=True)


def _cell(x):
    return Cell((x,), "exec_cells:echo", {"x": x})


def _spawn_worker(queue_dir, name, poll="0.05"):
    """A real worker subprocess, able to import repro and exec_cells."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p
        for p in (str(_HERE.parent / "src"), str(_HERE), env.get("PYTHONPATH"))
        if p
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.exec.worker",
            "--queue-dir", str(queue_dir), "--id", name,
            "--poll-interval", poll,
        ],
        env=env,
    )


# ----------------------------------------------------------------------
# Spool protocol units
# ----------------------------------------------------------------------
def test_claim_is_exactly_once_and_requeueable(tmp_path):
    cell = _cell(1)
    key = cell_key(cell)
    q.publish(tmp_path, cell, key)
    first = q.claim(tmp_path, "w1")
    assert q.claim(tmp_path, "w2") is None  # w1's rename won the only task
    active_path, task = first
    assert task == q.Task(key, 0, cell)
    assert active_path.name == f"{key}.000.w1.task"
    # lease expiry returns it to the queue; the next claimant wins it
    assert q.requeue(tmp_path, active_path)
    assert q.claim(tmp_path, "w2")[1].key == key
    assert not q.requeue(tmp_path, active_path)  # already re-claimed


def test_heartbeat_and_failure_marker_roundtrip(tmp_path):
    q.ensure_layout(tmp_path)
    q.write_heartbeat(tmp_path, "w1", current="abc", seq=7)
    beat = q.read_heartbeat(tmp_path, "w1")
    assert beat["current"] == "abc"
    assert beat["seq"] == 7
    assert beat["pid"] == os.getpid()
    assert q.read_heartbeat(tmp_path, "ghost") is None
    q.write_failure(tmp_path, "k" * 64, 1, "w1", RuntimeError("boom"), "tb-text")
    failure = q.read_failure(tmp_path, "k" * 64)
    assert failure["error"] == "RuntimeError: boom"
    assert failure["traceback"] == "tb-text"
    assert failure["worker"] == "w1"


def test_worker_id_is_filesystem_safe():
    assert q.worker_id("node/1:two") == "node_1_two"
    assert q.worker_id()  # host-pid default is non-empty


# ----------------------------------------------------------------------
# Coordinator policy (hand-played workers)
# ----------------------------------------------------------------------
def test_stale_lease_is_reclaimed_and_rerun(tmp_path):
    ex = QueueExecutor(
        queue_dir=tmp_path, lease_timeout_s=0.3, poll_interval_s=0.02
    )
    try:
        handle = ex.submit(_cell(5))
        # A doomed worker claims the cell, heartbeats once, then "dies"
        # (stops renewing) — its heartbeat goes stale.
        active, task = q.claim(tmp_path, "doomed")
        q.write_heartbeat(tmp_path, "doomed", current=task.key, seq=0)
        deadline = time.monotonic() + 10
        while ex.reclaims == 0 and time.monotonic() < deadline:
            ex._service()
            time.sleep(0.02)
        assert ex.reclaims == 1
        # the reclaimed attempt is claimable again; a live worker runs it
        active2, task2 = q.claim(tmp_path, "live")
        assert task2.key == task.key
        ex.bus.put(task2.cell, 5, wall_ms=1.0)
        active2.unlink()
        assert handle.result().value == 5
        assert ex.stats()["reclaims"] == 1
        assert "lease_reclaimed" in [e["event"] for e in ex.bus.events()]
    finally:
        ex.shutdown()


def test_straggler_speculation_first_result_wins(tmp_path):
    ex = QueueExecutor(
        queue_dir=tmp_path, poll_interval_s=0.02, lease_timeout_s=60.0,
        straggler_factor=1.5, straggler_min_s=0.2, straggler_min_samples=2,
        max_attempts=3,
    )
    try:
        handles = [ex.submit(_cell(x)) for x in (1, 2, 99)]
        slow_key = cell_key(_cell(99))
        # a worker drains the two fast cells promptly (claims come back
        # in content-hash order, so fish the slow one out by kwargs)...
        held = None
        for _ in range(3):
            active, task = q.claim(tmp_path, "w1")
            q.write_heartbeat(tmp_path, "w1", current=task.key)
            if task.cell.kwargs["x"] == 99:
                held = (active, task)
                continue
            ex.bus.put(task.cell, task.cell.kwargs["x"], wall_ms=1.0)
            active.unlink()
        # ...then sits on the slow cell far past the p90 deadline, alive
        # (fresh heartbeats) but slow — a lease reclaim would be wrong.
        active, task = held
        assert task.key == slow_key
        deadline = time.monotonic() + 10
        while ex.speculations == 0 and time.monotonic() < deadline:
            q.write_heartbeat(tmp_path, "w1", current=task.key)
            ex._service()
            time.sleep(0.02)
        assert ex.speculations == 1
        assert ex.reclaims == 0
        spec_active, spec_task = q.claim(tmp_path, "w2")
        assert spec_task.key == slow_key
        assert spec_task.attempt == 1
        # the speculative attempt lands first and wins
        ex.bus.put(spec_task.cell, 99, wall_ms=1.0)
        spec_active.unlink()
        assert [h.result().value for h in handles] == [1, 2, 99]
        assert any(
            e["event"] == "speculative_dispatch" for e in ex.bus.events()
        )
    finally:
        ex.shutdown()


def test_worker_skips_already_computed_cell(tmp_path):
    # The cell body raises if executed: the pre-existing bus entry must
    # short-circuit the duplicate attempt (first-result-wins), so a
    # clean exit with no failure marker proves it never ran.
    cell = Cell(("x",), "exec_cells:explode", {})
    key = cell_key(cell)
    bus = ResultStore(tmp_path / "store")
    bus.put(cell, "winner", wall_ms=1.0)
    q.publish(tmp_path, cell, key)
    q.write_config(tmp_path, bus.root)
    assert run_worker(tmp_path, worker="w1", poll_interval_s=0.01,
                      max_idle_s=0.1) == 0
    assert q.read_failure(tmp_path, key) is None
    assert bus.fetch(key) == "winner"


def test_cell_failure_reaches_coordinator_with_traceback(tmp_path):
    ex = QueueExecutor(queue_dir=tmp_path, poll_interval_s=0.02)
    try:
        handle = ex.submit(
            Cell(("x",), "exec_cells:explode", {"message": "kaboom"})
        )
        assert run_worker(tmp_path, worker="w1", poll_interval_s=0.01,
                          max_idle_s=0.2) == 0
        with pytest.raises(CellFailedError, match="kaboom"):
            handle.result()
    finally:
        ex.shutdown()


def test_coordinator_resumes_from_bus_without_dispatch(tmp_path):
    cell = _cell(3)
    bus = ResultStore(tmp_path / "store")
    bus.put(cell, 3, wall_ms=1.0)
    ex = QueueExecutor(queue_dir=tmp_path, store=bus)
    try:
        handle = ex.submit(cell)
        assert handle.done()
        assert handle.result().value == 3
        assert not list((tmp_path / "queue").glob("*.task"))
    finally:
        ex.shutdown()


# ----------------------------------------------------------------------
# Real worker subprocesses
# ----------------------------------------------------------------------
def test_killed_workers_cell_is_redispatched(tmp_path):
    marker = tmp_path / "unblock"
    cell = Cell(
        ("x",), "exec_cells:sleepy",
        {"x": 7, "sleep_s": 120.0, "marker": str(marker)},
    )
    ex = QueueExecutor(
        queue_dir=tmp_path, lease_timeout_s=1.0, poll_interval_s=0.05
    )
    victim = rescuer = None
    try:
        handle = ex.submit(cell)
        victim = _spawn_worker(tmp_path, "victim")
        deadline = time.monotonic() + 60
        while not list((tmp_path / "active").glob("*.victim.task")):
            assert time.monotonic() < deadline, "victim never claimed"
            time.sleep(0.05)
        victim.send_signal(signal.SIGKILL)  # mid-cell, claim + heartbeat orphaned
        victim.wait(timeout=10)
        marker.touch()  # the re-dispatched attempt runs instantly
        rescuer = _spawn_worker(tmp_path, "rescuer")
        assert handle.result().value == 7
        assert ex.stats()["reclaims"] >= 1
    finally:
        ex.shutdown()
        for proc in (victim, rescuer):
            if proc is not None and proc.poll() is None:
                proc.kill()
            if proc is not None:
                proc.wait(timeout=10)


def _queue_figure_data(name, tmp_path):
    spec = prepare_scenario(name, scale="quick", seed=0)
    cells = expand(spec)
    ex = QueueExecutor(queue_dir=tmp_path, poll_interval_s=0.05)
    workers = [_spawn_worker(tmp_path, f"w{i}") for i in (1, 2)]
    try:
        results = run_cells(cells, executor=ex)
        stats = ex.stats()
    finally:
        ex.shutdown()
        for proc in workers:
            proc.wait(timeout=10)
    assert stats["completed"] == len({cell_key(c) for c in cells})
    assert stats["workers"] >= 2
    return assemble_scenario(spec, cells, results)


def test_fig5a_two_queue_workers_byte_identical_to_golden(tmp_path):
    data = _queue_figure_data("fig5a", tmp_path)
    assert _dump(data) == json.dumps(GOLDEN["fig5a"], sort_keys=True)


def test_fig11_two_queue_workers_byte_identical_to_golden(tmp_path):
    data = _queue_figure_data("fig11", tmp_path)
    assert _dump(data) == json.dumps(GOLDEN["fig11"], sort_keys=True)
