"""Unit tests for the network transport and cluster model."""

import pytest

from repro.sim.cluster import (
    Cluster,
    INSTANCE_TYPES,
    M1_LARGE,
    M1_MEDIUM,
    M1_SMALL,
    M3_LARGE,
    Server,
)
from repro.sim.kernel import Simulator
from repro.sim.network import LatencyModel, Network


# ----------------------------------------------------------------------
# Network
# ----------------------------------------------------------------------
def test_send_delivers_after_latency():
    sim = Simulator()
    net = Network(sim, latency=LatencyModel(lan_ms=0.5))
    box = net.register("dst")
    net.register("src")
    net.send("src", "dst", {"k": 1}, size_bytes=0)
    sim.run()
    assert len(box) == 1
    message = box.items[0]
    assert message.payload == {"k": 1}
    assert sim.now == pytest.approx(0.5)


def test_same_host_latency_is_cheap():
    model = LatencyModel(lan_ms=0.25, same_host_ms=0.01)
    assert model.latency_ms("a", "a") == 0.01
    assert model.latency_ms("a", "b") == 0.25


def test_send_to_unknown_endpoint_raises():
    sim = Simulator()
    net = Network(sim)
    net.register("src")
    with pytest.raises(KeyError):
        net.send("src", "ghost", "payload")


def test_register_duplicate_rejected():
    sim = Simulator()
    net = Network(sim)
    net.register("a")
    with pytest.raises(ValueError):
        net.register("a")


def test_fifo_per_pair():
    sim = Simulator()
    net = Network(sim)
    box = net.register("dst")
    net.register("src")
    # A big message then a small one: the small one must not overtake.
    net.send("src", "dst", "big", size_bytes=10_000_000)
    net.send("src", "dst", "small", size_bytes=1)
    sim.run()
    assert [m.payload for m in box.items] == ["big", "small"]


def test_bandwidth_serializes_on_sender_egress():
    sim = Simulator()
    net = Network(sim, default_gbps=0.001)  # deliberately tiny pipe
    net.register("dst")
    net.register("src")
    one_mb = 1_000_000
    done1 = net.delay_signal("src", "dst", size_bytes=one_mb)
    done2 = net.delay_signal("src", "dst", size_bytes=one_mb)
    sim.run()
    # 1 MB at 0.001 Gbps = 8000 ms each; second waits for the first.
    assert done1.triggered and done2.triggered
    assert sim.now == pytest.approx(2 * 8000.0, rel=0.01)


def test_delay_signal_counts_traffic():
    sim = Simulator()
    net = Network(sim)
    net.register("a")
    net.register("b")
    net.delay_signal("a", "b", size_bytes=100)
    assert net.messages_sent == 1
    assert net.bytes_sent == 100


def test_unregister_drops_in_flight_silently():
    sim = Simulator()
    net = Network(sim)
    net.register("dst")
    net.register("src")
    net.send("src", "dst", "hello")
    net.unregister("dst")
    sim.run()  # no exception: the message is dropped
    assert not net.is_registered("dst")


# ----------------------------------------------------------------------
# Instance types and servers
# ----------------------------------------------------------------------
def test_instance_catalogue():
    assert set(INSTANCE_TYPES) == {"m1.small", "m1.medium", "m1.large", "m3.large"}
    assert M1_SMALL.cores == 1
    assert M1_LARGE.cores == 2
    assert M3_LARGE.speed > M1_SMALL.speed


def test_cpu_scaling_by_speed():
    assert M1_SMALL.cpu_ms(10.0) == pytest.approx(10.0)
    assert M1_MEDIUM.cpu_ms(10.0) == pytest.approx(5.0)


def test_server_execute_occupies_scaled_time():
    sim = Simulator()
    server = Server(sim, "s", M1_MEDIUM)

    def body():
        yield from server.execute(10.0)

    sim.run_process(body())
    assert sim.now == pytest.approx(5.0)


def test_server_cores_parallelism():
    sim = Simulator()
    server = Server(sim, "s", M1_LARGE)  # 2 cores, speed 2

    def body():
        yield from server.execute(10.0)

    for _ in range(4):
        sim.process(body())
    sim.run()
    # 4 jobs x 5ms wall each over 2 cores = 10ms.
    assert sim.now == pytest.approx(10.0)


def test_server_utilization_window():
    sim = Simulator()
    server = Server(sim, "s", M1_SMALL)

    def body():
        yield from server.execute(5.0)

    sim.process(body())
    sim.run(until=10.0)
    util = server.utilization_window()
    assert util == pytest.approx(0.5)
    # A second call over an idle window reports ~0.
    sim.run(until=20.0)
    assert server.utilization_window() == pytest.approx(0.0)


# ----------------------------------------------------------------------
# Cluster provisioning
# ----------------------------------------------------------------------
def test_add_server_unique_names():
    sim = Simulator()
    cluster = Cluster(sim)
    cluster.add_server(M1_SMALL, "x")
    with pytest.raises(ValueError):
        cluster.add_server(M1_SMALL, "x")


def test_provision_boot_delay():
    sim = Simulator()
    cluster = Cluster(sim, boot_delay_ms=100.0)
    handle = cluster.provision(M1_SMALL)
    assert not handle.server.alive
    sim.run()
    assert handle.server.alive
    assert handle.ready.triggered
    assert sim.now == pytest.approx(100.0)


def test_alive_servers_excludes_booting():
    sim = Simulator()
    cluster = Cluster(sim, boot_delay_ms=50.0)
    cluster.add_server(M1_SMALL, "up")
    cluster.provision(M1_SMALL)
    assert set(cluster.alive_servers()) == {"up"}
    sim.run()
    assert len(cluster.alive_servers()) == 2


def test_decommission_removes_server():
    sim = Simulator()
    cluster = Cluster(sim)
    cluster.add_server(M1_SMALL, "gone")
    cluster.decommission("gone")
    assert "gone" not in cluster.servers
    assert len(cluster) == 0


# ----------------------------------------------------------------------
# Edge cases: zero-byte payloads, self-send, FIFO under fault filters
# ----------------------------------------------------------------------
def test_zero_byte_payload_pays_propagation_only():
    sim = Simulator()
    net = Network(sim, latency=LatencyModel(lan_ms=0.4, same_host_ms=0.02))
    net.register("a")
    net.register("b")
    assert net.delay_ms("a", "b", size_bytes=0) == pytest.approx(0.4)
    assert net.bytes_sent == 0 and net.messages_sent == 1


def test_self_send_uses_same_host_latency():
    sim = Simulator()
    net = Network(sim, latency=LatencyModel(lan_ms=0.4, same_host_ms=0.02))
    box = net.register("a")
    assert net.delay_ms("a", "a", size_bytes=0) == pytest.approx(0.02)
    net.send("a", "a", "loop", size_bytes=0)
    sim.run()
    assert [m.payload for m in box.items] == ["loop"]
    assert sim.now == pytest.approx(0.02)


def test_fifo_preserved_when_delay_filter_heals_mid_stream():
    """A latency spike must not let later messages overtake earlier ones."""
    from repro.faults import NetworkFaults
    from repro.faults.schedule import LinkFault

    sim = Simulator()
    net = Network(sim, latency=LatencyModel(lan_ms=0.25))
    box = net.register("dst")
    net.register("src")
    state = NetworkFaults()
    net.fault = state
    state.add_link_fault(1, LinkFault(0.0, 1e9, "src", "dst", extra_latency_ms=50.0))
    net.send("src", "dst", "slow", size_bytes=0)  # would arrive at ~50.25
    state.remove_link_fault(1)  # spike ends immediately
    net.send("src", "dst", "fast", size_bytes=0)  # raw delivery ~0.25, clamped
    sim.run()
    assert [m.payload for m in box.items] == ["slow", "fast"]
    assert [m.sent_at_ms for m in box.items] == [0.0, 0.0]


def test_fifo_preserved_across_dropped_messages():
    """A drop consumes the ghost's slot: survivors never arrive earlier."""
    from repro.faults import NetworkFaults
    from repro.faults.schedule import LinkFault

    sim = Simulator()
    net = Network(sim, latency=LatencyModel(lan_ms=0.25))
    box = net.register("dst")
    net.register("src")
    state = NetworkFaults()
    net.fault = state
    state.add_link_fault(
        1, LinkFault(0.0, 1e9, "src", "dst", extra_latency_ms=10.0, drop_rate=0.0)
    )
    net.send("src", "dst", "first", size_bytes=0)  # delivered at ~10.25

    class DropAll:  # drops every message it is asked about
        def message_penalty_ms(self, src, dst):
            return None

    net.fault = DropAll()
    net.send("src", "dst", "ghost", size_bytes=0)
    net.fault = None
    net.send("src", "dst", "third", size_bytes=0)  # clamped behind the ghost
    sim.run()
    assert [m.payload for m in box.items] == ["first", "third"]
    assert net.messages_dropped == 1
    # The third message was clamped to the ghost's (spiked) slot, not 0.25.
    assert sim.now == pytest.approx(10.25)


def test_delay_ms_fifo_shared_with_send_under_filter():
    from repro.faults import NetworkFaults
    from repro.faults.schedule import LinkFault

    sim = Simulator()
    net = Network(sim, latency=LatencyModel(lan_ms=0.25))
    net.register("dst")
    net.register("src")
    state = NetworkFaults()
    net.fault = state
    state.add_link_fault(1, LinkFault(0.0, 1e9, "src", "dst", extra_latency_ms=5.0))
    first = net.delay_ms("src", "dst", size_bytes=0)
    state.remove_link_fault(1)
    second = net.delay_ms("src", "dst", size_bytes=0)
    assert first == pytest.approx(5.25)
    assert second == pytest.approx(5.25)  # clamped: FIFO per pair


def test_crash_and_restart_server_helpers():
    sim = Simulator()
    cluster = Cluster(sim)
    cluster.add_server(M1_SMALL, "x")
    sim.run(until=12.0)
    server = cluster.crash_server("x")
    assert not server.alive and server.crashed
    assert server.crashed_at_ms == pytest.approx(12.0)
    assert cluster.alive_servers() == {}
    cluster.restart_server("x")
    assert server.alive and not server.crashed and server.crashed_at_ms is None
    assert set(cluster.alive_servers()) == {"x"}
