"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.kernel import AllOf, AnyOf, Signal, SimulationError, Simulator, Timeout


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_schedule_runs_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, lambda: seen.append(("b", sim.now)))
    sim.schedule(1.0, lambda: seen.append(("a", sim.now)))
    sim.run()
    assert seen == [("a", 1.0), ("b", 5.0)]


def test_equal_times_run_in_scheduling_order():
    sim = Simulator()
    seen = []
    for tag in "abc":
        sim.schedule(1.0, seen.append, tag)
    sim.run()
    assert seen == ["a", "b", "c"]


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_run_until_stops_clock():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    final = sim.run(until=4.0)
    assert final == 4.0
    assert sim.pending_events == 1


def test_run_until_past_all_events_advances_clock():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    assert sim.run(until=100.0) == 100.0


def test_signal_succeeds_once():
    sim = Simulator()
    signal = sim.signal("s")
    signal.succeed(42)
    with pytest.raises(SimulationError):
        signal.succeed(43)


def test_signal_callback_after_completion_still_fires():
    sim = Simulator()
    signal = sim.signal("s")
    signal.succeed(7)
    seen = []
    signal.add_callback(lambda s: seen.append(s.value))
    sim.run()
    assert seen == [7]


def test_signal_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.signal("s").fail("not an exception")


def test_timeout_fires_at_deadline():
    sim = Simulator()
    t = sim.timeout(3.5, value="done")
    sim.run()
    assert t.triggered and t.value == "done"
    assert sim.now == 3.5


def test_timeout_negative_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Timeout(sim, -0.1)


def test_process_returns_value():
    sim = Simulator()

    def body():
        yield sim.timeout(1.0)
        return "result"

    assert sim.run_process(body()) == "result"


def test_process_waits_on_signals_in_sequence():
    sim = Simulator()
    trace = []

    def body():
        trace.append(sim.now)
        yield sim.timeout(2.0)
        trace.append(sim.now)
        yield sim.timeout(3.0)
        trace.append(sim.now)

    sim.run_process(body())
    assert trace == [0.0, 2.0, 5.0]


def test_process_receives_signal_value():
    sim = Simulator()
    signal = sim.signal("v")
    sim.schedule(4.0, signal.succeed, "payload")

    def body():
        got = yield signal
        return got

    assert sim.run_process(body()) == "payload"


def test_process_exception_propagates_to_waiters():
    sim = Simulator()

    def failing():
        yield sim.timeout(1.0)
        raise RuntimeError("boom")

    def waiter():
        try:
            yield sim.process(failing())
        except RuntimeError as exc:
            return str(exc)
        return "no error"

    assert sim.run_process(waiter()) == "boom"


def test_process_failed_signal_raises_at_yield():
    sim = Simulator()
    signal = sim.signal("f")
    sim.schedule(1.0, signal.fail, ValueError("bad"))

    def body():
        with pytest.raises(ValueError):
            yield signal
        return "handled"

    assert sim.run_process(body()) == "handled"


def test_process_yield_none_is_cooperative_hop():
    sim = Simulator()
    order = []

    def first():
        order.append("first-a")
        yield None
        order.append("first-b")

    def second():
        order.append("second")
        return
        yield  # pragma: no cover - makes it a generator

    sim.process(first())
    sim.process(second())
    sim.run()
    assert order == ["first-a", "second", "first-b"]


def test_process_yielding_garbage_fails():
    sim = Simulator()

    def body():
        yield 42

    proc = sim.process(body())
    sim.run()
    assert proc.exc is not None
    assert isinstance(proc.exc, SimulationError)


def test_all_of_collects_values_in_order():
    sim = Simulator()
    a = sim.timeout(3.0, "a")
    b = sim.timeout(1.0, "b")

    def body():
        values = yield AllOf(sim, [a, b])
        return values

    assert sim.run_process(body()) == ["a", "b"]
    assert sim.now == 3.0


def test_all_of_empty_completes_immediately():
    sim = Simulator()
    done = AllOf(sim, [])
    assert done.triggered and done.value == []


def test_all_of_fails_after_all_children_complete():
    sim = Simulator()
    good = sim.timeout(5.0, "ok")
    bad = sim.signal("bad")
    sim.schedule(1.0, bad.fail, RuntimeError("child failed"))
    combined = AllOf(sim, [good, bad])
    sim.run()
    assert combined.triggered
    assert isinstance(combined.exc, RuntimeError)
    assert sim.now == 5.0  # waited for the slow child too


def test_any_of_first_wins():
    sim = Simulator()
    slow = sim.timeout(10.0, "slow")
    fast = sim.timeout(2.0, "fast")

    def body():
        index, value = yield AnyOf(sim, [slow, fast])
        return index, value

    assert sim.run_process(body()) == (1, "fast")


def test_any_of_requires_children():
    sim = Simulator()
    with pytest.raises(ValueError):
        AnyOf(sim, [])


def test_max_steps_guard():
    sim = Simulator()

    def forever():
        while True:
            yield sim.timeout(1.0)

    sim.process(forever())
    with pytest.raises(SimulationError):
        sim.run(max_steps=50)


def test_run_process_unfinished_raises():
    sim = Simulator()
    never = sim.signal("never")

    def body():
        yield never

    with pytest.raises(SimulationError):
        sim.run_process(body())


def test_determinism_same_seeded_program_identical_trace():
    def build():
        sim = Simulator()
        trace = []

        def worker(name, delay):
            for _ in range(3):
                yield sim.timeout(delay)
                trace.append((name, sim.now))

        sim.process(worker("x", 1.5))
        sim.process(worker("y", 2.0))
        sim.run()
        return trace

    assert build() == build()
