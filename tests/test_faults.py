"""Tests for repro.faults: schedules, injection, detection, recovery."""

import pytest

from repro.core import AeonRuntime, is_retryable
from repro.elasticity import CloudStorage, EManager
from repro.elasticity.snapshot import fuzzy_snapshot
from repro.faults import (
    FailureDetector,
    FaultInjector,
    FaultSchedule,
    LinkFault,
    NetworkPartition,
    ServerCrash,
    random_churn,
)
from repro.sim import DeliveryError, M3_LARGE, RngRegistry, Simulator
from repro.sim.cluster import Cluster
from repro.sim.network import Network
from repro.workloads import ClosedLoopClients

from conftest import Cell, Testbed, Worker


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
def test_schedule_validation_rejects_nonsense():
    with pytest.raises(ValueError):
        FaultSchedule([ServerCrash(-1.0, "s")]).validate()
    with pytest.raises(ValueError):
        FaultSchedule([ServerCrash(1.0, "s", restart_after_ms=0.0)]).validate()
    with pytest.raises(ValueError):
        FaultSchedule(
            [NetworkPartition(1.0, 10.0, ("a",), ("a", "b"))]
        ).validate()
    with pytest.raises(ValueError):
        FaultSchedule([LinkFault(1.0, 10.0, "a", "b", drop_rate=1.5)]).validate()
    FaultSchedule(
        [ServerCrash(0.0, "s", restart_after_ms=5.0), LinkFault(1.0, 2.0, "a", "b")]
    ).validate()


def test_schedule_ordered_is_stable_by_time():
    schedule = FaultSchedule(
        [ServerCrash(50.0, "b"), ServerCrash(10.0, "a"), ServerCrash(50.0, "c")]
    )
    assert [f.server for f in schedule.ordered()] == ["a", "b", "c"]
    assert not schedule.empty and len(schedule) == 3


def test_random_churn_is_deterministic_and_bounded():
    servers = ["s1", "s2", "s3"]
    one = random_churn(servers, 60_000.0, RngRegistry(42),
                       mean_time_between_crashes_ms=8_000.0)
    two = random_churn(servers, 60_000.0, RngRegistry(42),
                       mean_time_between_crashes_ms=8_000.0)
    other = random_churn(servers, 60_000.0, RngRegistry(43),
                         mean_time_between_crashes_ms=8_000.0)
    assert one.faults == two.faults
    assert one.faults != other.faults
    assert len(one) > 0
    one.validate()
    for fault in one:
        assert 0.0 <= fault.at_ms < 60_000.0
        assert fault.server in servers
    # Crashes never overlap: each restarts before the next crash.
    times = [(f.at_ms, f.at_ms + f.restart_after_ms) for f in one.ordered()]
    for (_a0, a1), (b0, _b1) in zip(times, times[1:]):
        assert b0 >= a1


def test_churn_draws_do_not_touch_other_streams():
    rng = RngRegistry(7)
    before = rng.stream("client-0").random()
    rng2 = RngRegistry(7)
    random_churn(["s1"], 30_000.0, rng2)
    assert rng2.stream("client-0").random() == before


# ----------------------------------------------------------------------
# Injection mechanics
# ----------------------------------------------------------------------
def _fabric(n=3):
    sim = Simulator()
    cluster = Cluster(sim)
    network = Network(sim)
    servers = [cluster.add_server(M3_LARGE) for _ in range(n)]
    for server in servers:
        network.register(server.name, server.mailbox, server.itype)
    return sim, cluster, network, servers


def test_empty_schedule_installs_nothing():
    sim, cluster, network, _servers = _fabric()
    injector = FaultInjector(sim, network, cluster, FaultSchedule())
    injector.start()
    sim.run()
    assert network.fault is None
    assert injector.log == []


def test_crash_detaches_and_restart_reattaches():
    sim, cluster, network, servers = _fabric()
    victim = servers[1]
    schedule = FaultSchedule([ServerCrash(10.0, victim.name, restart_after_ms=20.0)])
    injector = FaultInjector(sim, network, cluster, schedule)
    injector.start()
    sim.run(until=15.0)
    assert not victim.alive and victim.crashed
    assert victim.crashed_at_ms == pytest.approx(10.0)
    assert victim.crash_count == 1
    # Messages to the crashed server are transmitted and lost.
    sent_before = network.messages_dropped
    network.send(servers[0].name, victim.name, "lost?")
    with pytest.raises(DeliveryError):
        network.delay_ms(servers[0].name, victim.name)
    sim.run(until=29.0)
    assert len(victim.mailbox) == 0
    assert network.messages_dropped > sent_before
    sim.run(until=40.0)
    assert victim.alive and not victim.crashed
    network.send(servers[0].name, victim.name, "hello again")
    sim.run(until=50.0)
    assert [m.payload for m in victim.mailbox.items] == ["hello again"]
    assert [text for _t, text in injector.log] == [
        f"server {victim.name} crashed",
        f"server {victim.name} restarted",
    ]


def test_partition_blocks_hops_and_drops_messages_then_heals():
    sim, cluster, network, servers = _fabric(3)
    a, b, c = (s.name for s in servers)
    schedule = FaultSchedule([NetworkPartition(5.0, 20.0, (a,), (b,))])
    FaultInjector(sim, network, cluster, schedule).start()
    sim.run(until=10.0)
    with pytest.raises(DeliveryError):
        network.delay_ms(a, b)
    with pytest.raises(DeliveryError):
        network.delay_ms(b, a)
    # Unpartitioned pairs are untouched.
    assert network.delay_ms(a, c) > 0.0
    network.send(a, b, "dropped")
    sim.run(until=24.0)
    assert len(network.mailbox(b)) == 0
    sim.run(until=30.0)  # healed at t=25
    assert network.delay_ms(a, b) > 0.0


def test_link_fault_adds_latency_and_drops_deterministically():
    sim, cluster, network, servers = _fabric(2)
    a, b = servers[0].name, servers[1].name
    schedule = FaultSchedule(
        [LinkFault(0.0, 100.0, a, b, extra_latency_ms=7.0, drop_rate=1.0)]
    )
    FaultInjector(sim, network, cluster, schedule, rng=RngRegistry(0)).start()
    sim.run(until=1.0)
    base = 0.25  # default LAN latency, zero transmit for size 0
    assert network.delay_ms(a, b, size_bytes=0) == pytest.approx(base + 7.0)
    assert network.delay_ms(b, a, size_bytes=0) == pytest.approx(base + 7.0)
    dropped_before = network.messages_dropped
    network.send(a, b, "gone", size_bytes=0)  # drop_rate=1.0
    assert network.messages_dropped == dropped_before + 1
    sim.run(until=150.0)  # healed
    assert network.delay_ms(a, b, size_bytes=0) == pytest.approx(base)


# ----------------------------------------------------------------------
# Failure detection
# ----------------------------------------------------------------------
def test_detector_declares_crash_within_lease_and_sees_restart():
    sim, cluster, network, servers = _fabric(3)
    victim = servers[1]
    detector = FailureDetector(
        sim, network, cluster,
        heartbeat_interval_ms=50.0, lease_ms=160.0, check_interval_ms=25.0,
    )
    failures, recoveries = [], []
    detector.on_failure(failures.append)
    detector.on_recovery(recoveries.append)
    detector.start()
    schedule = FaultSchedule([ServerCrash(300.0, victim.name, restart_after_ms=400.0)])
    FaultInjector(sim, network, cluster, schedule).start()
    sim.run(until=250.0)
    assert detector.heartbeats_received > 0 and not detector.suspected
    sim.run(until=650.0)
    # Declared once, then possibly re-declared while still silent — but
    # only ever for the victim, and only one Detection is recorded.
    assert failures and set(failures) == {victim.name}
    assert detector.is_suspected(victim.name)
    [detection] = detector.detections
    assert detection.crashed_at_ms == pytest.approx(300.0)
    # Declared within lease + check granularity + heartbeat jitter.
    assert 0.0 < detection.latency_ms <= 160.0 + 50.0 + 25.0 + 1.0
    sim.run(until=800.0)  # restart at 700 -> heartbeats resume
    assert recoveries == [victim.name]
    assert not detector.is_suspected(victim.name)
    detector.stop()


def test_detector_partition_is_a_false_positive_guarded_by_recovery():
    bed = Testbed(AeonRuntime, n_servers=2, record_history=False)
    storage = CloudStorage(bed.sim)
    manager = EManager(bed.runtime, storage, None, M3_LARGE)
    detector = FailureDetector(
        bed.sim, bed.network, bed.cluster,
        heartbeat_interval_ms=50.0, lease_ms=160.0, check_interval_ms=25.0,
    )
    manager.enable_fault_tolerance(detector, checkpoint_interval_ms=0.0)
    detector.start()
    runtime = bed.runtime
    runtime.create_context(Cell, server=bed.servers[0], name="steady")
    # Cut the detector (only) off from server 0 for a while.
    schedule = FaultSchedule(
        [NetworkPartition(100.0, 500.0, (detector.name,), (bed.servers[0].name,))]
    )
    FaultInjector(bed.sim, bed.network, bed.cluster, schedule).start()
    bed.sim.run(until=1200.0)
    assert detector.detections  # declared dead...
    # ...but nothing was lost — and one partition is ONE false alarm,
    # however many times the silent suspect was re-declared meanwhile.
    assert manager.false_detections == 1
    assert runtime.placement["steady"] == bed.servers[0].name
    detector.stop()
    manager.stop()


# ----------------------------------------------------------------------
# Crash recovery end to end (the §5.3 acceptance scenario)
# ----------------------------------------------------------------------
def _recovery_bed():
    bed = Testbed(AeonRuntime, n_servers=3, record_history=False)
    storage = CloudStorage(bed.sim)
    manager = EManager(bed.runtime, storage, None, M3_LARGE)
    detector = FailureDetector(
        bed.sim, bed.network, bed.cluster,
        heartbeat_interval_ms=50.0, lease_ms=160.0, check_interval_ms=25.0,
    )
    return bed, storage, manager, detector


def test_crash_recovery_resumes_from_last_checkpoint():
    bed, storage, manager, detector = _recovery_bed()
    runtime, sim = bed.runtime, bed.sim
    victim = bed.servers[1]
    cell = runtime.create_context(Cell, server=victim, name="hot")
    manager.enable_fault_tolerance(detector, checkpoint_interval_ms=100.0,
                                   roots=["hot"])
    detector.start()
    schedule = FaultSchedule(
        [ServerCrash(150.0, victim.name, restart_after_ms=500.0)]
    )
    FaultInjector(sim, bed.network, bed.cluster, schedule).start()

    # Five increments committed before the t=100 checkpoint...
    done = [bed.submit(cell.add(1)) for _ in range(5)]
    sim.run(until=120.0)
    assert all(d.value.error is None for d in done)
    assert storage.peek("checkpoint/hot")["hot"]["value"] == 5
    # ...three more after it (these will be lost with the server).
    done = [bed.submit(cell.add(1)) for _ in range(3)]
    sim.run(until=149.0)
    assert runtime.instance_of("hot").value == 8

    # An event submitted during the outage fails with a retryable error.
    sim.run(until=200.0)
    lost = bed.submit(cell.add(1))
    sim.run(until=230.0)
    assert lost.triggered and lost.value.error is not None
    assert is_retryable(lost.value.error)
    assert runtime.events_failed >= 1

    # Detection + recovery: the context resumes from its last checkpoint
    # on a surviving server.
    sim.run(until=480.0)
    assert detector.detections and detector.detections[0].server == victim.name
    assert manager.contexts_recovered == 1
    assert runtime.placement["hot"] != victim.name
    assert runtime.instance_of("hot").value == 5  # rolled back
    assert victim.context_count == 0
    assert manager.recovery_log and manager.recovery_log[0]["restored"] == 1
    # The restore went through the coordinator's WAL'd restore path.
    assert any(r.kind == "restore" and r.step == "done"
               for r in manager.coordinator.records)
    assert storage.keys_with_prefix("migration/") == []  # WAL cleaned

    # New events execute against the restored context.
    after = bed.submit(cell.add(2))
    sim.run(until=700.0)
    assert after.value.error is None
    assert runtime.instance_of("hot").value == 7
    detector.stop()
    manager.stop()


def test_clients_retry_retryable_failures_and_recover():
    bed, storage, manager, detector = _recovery_bed()
    runtime, sim = bed.runtime, bed.sim
    victim = bed.servers[1]
    cell = runtime.create_context(Cell, server=victim, name="busy")
    manager.enable_fault_tolerance(detector, checkpoint_interval_ms=100.0,
                                   roots=["busy"])
    detector.start()
    schedule = FaultSchedule([ServerCrash(200.0, victim.name)])
    FaultInjector(sim, bed.network, bed.cluster, schedule).start()
    clients = ClosedLoopClients(
        runtime,
        lambda rng: (cell.add(1), "add"),
        n_clients=4,
        think_ms=10.0,
        rng=RngRegistry(3),
        stop_at_ms=1500.0,
        max_retries=3,
        retry_backoff_ms=30.0,
    )
    clients.start()
    sim.run(until=2500.0)
    detector.stop()
    manager.stop()
    assert clients.errors and clients.retries > 0
    assert all(is_retryable(error) for error in clients.errors)
    # After recovery the retried stream kept committing.
    assert runtime.placement["busy"] != victim.name
    post_outage = runtime.latency.latencies_between(800.0, 1500.0)
    assert post_outage  # goodput resumed


def test_fuzzy_snapshot_checkpoints_without_locks():
    bed = Testbed(AeonRuntime, n_servers=2, record_history=False)
    runtime, sim = bed.runtime, bed.sim
    storage = CloudStorage(sim)
    cell = runtime.create_context(Cell, server=bed.servers[0], name="plain")
    runtime.instance_of("plain").value = 9
    done = fuzzy_snapshot(runtime, storage, "plain", key="checkpoint/plain")
    sim.run(until=50.0)
    assert done.triggered and done.ok
    assert storage.peek("checkpoint/plain")["plain"]["value"] == 9


def test_fault_run_is_deterministic():
    def run_once():
        bed, storage, manager, detector = _recovery_bed()
        runtime, sim = bed.runtime, bed.sim
        victim = bed.servers[1]
        cell = runtime.create_context(Cell, server=victim, name="det")
        manager.enable_fault_tolerance(detector, checkpoint_interval_ms=100.0,
                                       roots=["det"])
        detector.start()
        schedule = FaultSchedule(
            [ServerCrash(180.0, victim.name, restart_after_ms=300.0)]
        )
        FaultInjector(sim, bed.network, bed.cluster, schedule,
                      rng=RngRegistry(5)).start()
        clients = ClosedLoopClients(
            runtime, lambda rng: (cell.add(1), "add"), n_clients=3,
            think_ms=7.0, rng=RngRegistry(5), stop_at_ms=900.0, max_retries=2,
        )
        clients.start()
        sim.run(until=1500.0)
        detector.stop()
        manager.stop()
        return (
            runtime.events_completed,
            runtime.events_failed,
            clients.retries,
            runtime.network.messages_dropped,
            tuple(runtime.latency.latencies()),
            tuple(detector.detections),
        )

    assert run_once() == run_once()


# ----------------------------------------------------------------------
# Hardening regressions
# ----------------------------------------------------------------------
def test_lossy_schedule_without_rng_is_rejected():
    sim, cluster, network, servers = _fabric(2)
    schedule = FaultSchedule(
        [LinkFault(0.0, 10.0, servers[0].name, servers[1].name, drop_rate=0.5)]
    )
    injector = FaultInjector(sim, network, cluster, schedule)  # no rng
    with pytest.raises(ValueError, match="RngRegistry"):
        injector.start()
    # With a registry the same schedule is fine.
    FaultInjector(sim, network, cluster, schedule, rng=RngRegistry(0)).start()


def test_detector_tracks_cluster_membership():
    sim, cluster, network, servers = _fabric(2)
    detector = FailureDetector(
        sim, network, cluster,
        heartbeat_interval_ms=50.0, lease_ms=160.0, check_interval_ms=25.0,
    )
    detector.start()
    sim.run(until=100.0)
    # A server provisioned after start() (boot takes boot_delay_ms) is
    # watched once booted — and only then.
    handle = cluster.provision(M3_LARGE)
    network.register(handle.server.name, handle.server.mailbox, M3_LARGE)
    sim.run(until=cluster.boot_delay_ms + 400.0)
    assert handle.server.name in detector._watched
    assert not detector.is_suspected(handle.server.name)
    # Crashing the late arrival IS detected.
    cluster.crash_server(handle.server.name)
    network.detach(handle.server.name)
    sim.run(until=sim.now + 400.0)
    assert any(d.server == handle.server.name for d in detector.detections)
    # Decommissioning a server is forgotten, not declared dead.
    victim = servers[1].name
    cluster.decommission(victim)
    network.unregister(victim)
    sim.run(until=sim.now + 400.0)
    assert victim not in detector._watched
    assert not any(d.server == victim for d in detector.detections)
    detector.stop()


def test_recovery_survives_restore_refusal(monkeypatch):
    from repro.core.errors import MigrationError

    bed, storage, manager, detector = _recovery_bed()
    runtime, sim = bed.runtime, bed.sim
    victim = bed.servers[1]
    runtime.create_context(Cell, server=victim, name="doomed")
    manager.enable_fault_tolerance(detector, checkpoint_interval_ms=100.0,
                                   roots=["doomed"])
    detector.start()
    schedule = FaultSchedule([ServerCrash(150.0, victim.name)])
    FaultInjector(sim, bed.network, bed.cluster, schedule).start()

    def refuse(cid, dst, state=None):
        raise MigrationError("target refused mid-recovery")

    monkeypatch.setattr(manager.coordinator, "restore", refuse)
    sim.run(until=800.0)
    detector.stop()
    manager.stop()
    # The recovery process survived the synchronous refusal and logged.
    assert manager.recovery_log
    assert manager.recovery_log[0]["restored"] == 0


def test_checkpoints_do_not_alias_live_mutable_state():
    """A bundle must freeze dict/list fields, not share them with the
    live instance — and a restore must not hand the bundle's objects
    back out either (the same checkpoint may restore twice)."""
    from repro.core import ContextClass

    class Table(ContextClass):
        def __init__(self):
            self.rows = {"a": 1}

        def put(self, key, value):
            self.rows[key] = value  # in-place mutation

    bed, storage, manager, detector = _recovery_bed()
    runtime, sim = bed.runtime, bed.sim
    victim = bed.servers[1]
    table = runtime.create_context(Table, server=victim, name="table")
    manager.enable_fault_tolerance(detector, checkpoint_interval_ms=100.0,
                                   roots=["table"])
    detector.start()
    FaultInjector(
        sim, bed.network, bed.cluster,
        FaultSchedule([ServerCrash(150.0, victim.name)]),
    ).start()
    done = bed.submit(table.put("a", 2))
    sim.run(until=120.0)  # committed, then checkpointed at t=100
    assert done.value.error is None
    # Mutate in place after the checkpoint: the bundle must not follow.
    done = bed.submit(table.put("a", 99))
    sim.run(until=149.0)
    assert storage.peek("checkpoint/table")["table"]["rows"] == {"a": 2}
    # Crash + recovery: rolled back to the checkpointed dict.
    sim.run(until=800.0)
    instance = runtime.instance_of("table")
    assert instance.rows == {"a": 2}
    detector.stop()
    manager.stop()

    # Direct aliasing checks on the primitives: neither capture nor
    # restore may share mutables between bundle and live instance.
    bundle = storage.peek("checkpoint/table")["table"]
    instance.rows["poison"] = True
    assert "poison" not in bundle["rows"]  # capture copied
    instance.state_restore(bundle)
    assert instance.rows == {"a": 2}
    instance.rows["b"] = 7
    assert bundle["rows"] == {"a": 2}  # restore copied too


def test_crash_while_suspected_is_redeclared_and_recovered():
    """A partition false-positive that turns into a real crash must still
    drive recovery: the detector re-declares a suspect that stays silent."""
    bed, storage, manager, detector = _recovery_bed()
    runtime, sim = bed.runtime, bed.sim
    victim = bed.servers[1]
    runtime.create_context(Cell, server=victim, name="twice")
    manager.enable_fault_tolerance(detector, checkpoint_interval_ms=100.0,
                                   roots=["twice"])
    detector.start()
    schedule = FaultSchedule([
        # Cut the detector off from the victim (victim stays healthy)...
        NetworkPartition(100.0, 2500.0, (detector.name,), (victim.name,)),
        # ...then the victim truly crashes while already suspected.
        ServerCrash(600.0, victim.name),
    ])
    FaultInjector(sim, bed.network, bed.cluster, schedule).start()
    sim.run(until=2500.0)
    detector.stop()
    manager.stop()
    assert manager.false_detections >= 1  # the partition-era declaration
    assert detector.redeclarations >= 1
    assert manager.contexts_recovered == 1  # the re-declaration drove it
    assert runtime.placement["twice"] != victim.name


def test_checkpoint_skips_subtrees_with_members_on_dead_servers():
    """A subtree spread over servers keeps its previous checkpoint when
    any member's host is down — ghost memory must not be captured."""
    bed, storage, manager, detector = _recovery_bed()
    runtime, sim = bed.runtime, bed.sim
    worker = runtime.create_context(Worker, server=bed.servers[0], name="w")
    cell = runtime.create_context(Cell, owners=[worker], server=bed.servers[1],
                                  name="c")
    runtime.instance_of("w").cells.add(cell)
    manager.enable_fault_tolerance(detector, checkpoint_interval_ms=100.0,
                                   roots=["w"])
    detector.start()
    FaultInjector(
        sim, bed.network, bed.cluster,
        FaultSchedule([ServerCrash(150.0, bed.servers[1].name)]),
    ).start()
    done = bed.submit(worker.bump_all(1))
    sim.run(until=120.0)  # committed (value 1), checkpointed at t=100
    assert done.value.error is None
    assert storage.peek("checkpoint/w")["c"]["value"] == 1
    done = bed.submit(worker.bump_all(1))
    sim.run(until=149.0)  # value 2, in memory only
    assert runtime.instance_of("c").value == 2
    # Cell's host dies at 150; ticks at 200/300 must NOT refresh the
    # bundle from the dead server's memory (root's host is still alive).
    sim.run(until=310.0)
    assert storage.peek("checkpoint/w")["c"]["value"] == 1
    # Recovery then restores the checkpointed value.
    sim.run(until=900.0)
    assert runtime.instance_of("c").value == 1
    detector.stop()
    manager.stop()


def test_detector_stop_start_cycle_is_clean():
    """Restarting a stopped detector must respawn heartbeat senders and
    must not mass-declare the (healthy) fleet from stale leases."""
    sim, cluster, network, servers = _fabric(3)
    detector = FailureDetector(
        sim, network, cluster,
        heartbeat_interval_ms=50.0, lease_ms=160.0, check_interval_ms=25.0,
    )
    failures = []
    detector.on_failure(failures.append)
    detector.start()
    sim.run(until=300.0)
    detector.stop()
    sim.run(until=1200.0)  # long silence while stopped: leases go stale
    detector.start()
    sim.run(until=1800.0)
    # No spurious declarations: leases restarted with the detector.
    assert failures == []
    assert not detector.suspected
    received_before = detector.heartbeats_received
    sim.run(until=2100.0)
    assert detector.heartbeats_received > received_before  # senders live
    # A real crash after the restart is still detected exactly once.
    cluster.crash_server(servers[1].name)
    network.detach(servers[1].name)
    sim.run(until=2600.0)
    assert servers[1].name in set(failures)
    assert len(detector.detections) == 1
    detector.stop()
