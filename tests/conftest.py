"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.baselines import EventWaveRuntime, OrleansRuntime
from repro.results import MODE_ENV


@pytest.fixture(autouse=True)
def _no_ambient_result_store(monkeypatch):
    """Keep tests hermetic: no test reads or writes a developer's
    ``.repro_results/`` store unless it opts in with an explicit
    ``cache_dir`` (an explicit dir overrides this env default)."""
    monkeypatch.setenv(MODE_ENV, "off")
from repro.core import AeonRuntime, ContextClass, Ref, RefSet, readonly
from repro.core.events import async_, compute, dispatch
from repro.sim import Cluster, M3_LARGE, Network, Simulator


class Testbed:
    """A tiny deployment helper for protocol-level tests."""

    __test__ = False  # not a test class despite the name

    def __init__(self, runtime_cls=AeonRuntime, n_servers=2, record_history=True,
                 costs=None):
        self.sim = Simulator()
        self.cluster = Cluster(self.sim)
        self.network = Network(self.sim)
        self.servers = [self.cluster.add_server(M3_LARGE) for _ in range(n_servers)]
        kwargs = {"record_history": record_history}
        if costs is not None:
            kwargs["costs"] = costs
        self.runtime = runtime_cls(self.sim, self.network, self.cluster, **kwargs)
        self.client = self.runtime.register_client("test-client")

    def submit(self, spec, tag=""):
        return self.client.submit(spec, tag=tag)

    def run(self, horizon=60000.0):
        """Run the simulation ``horizon`` ms past the current time."""
        self.sim.run(until=self.sim.now + horizon)

    def run_event(self, spec, tag="", horizon=60000.0):
        """Submit one event, run to completion, return the Event."""
        done = self.submit(spec, tag=tag)
        self.sim.run(until=self.sim.now + horizon)
        assert done.triggered, "event did not complete (possible deadlock)"
        return done.value


# ----------------------------------------------------------------------
# A small reusable app: counters with private and shared children
# ----------------------------------------------------------------------
class Cell(ContextClass):
    """A counter leaf."""

    def __init__(self, value=0):
        self.value = value

    def add(self, delta):
        self.value += delta
        return self.value

    @readonly
    def peek(self):
        return self.value


class Worker(ContextClass):
    """Owns cells; exercises sync, async, compute and dispatch."""

    cells = RefSet(Cell)

    def __init__(self):
        self.steps = 0

    def bump_all(self, delta=1):
        self.steps += 1
        for cell in self.cells:
            yield cell.add(delta)
        return self.steps

    def bump_all_async(self, delta=1):
        self.steps += 1
        for cell in self.cells:
            yield async_(cell.add(delta))

    def chain(self, other_spec):
        self.steps += 1
        yield dispatch(other_spec)

    def crunch(self, work_ms):
        yield compute(work_ms)
        return self.steps

    @readonly
    def read_cells(self):
        total = 0
        for cell in self.cells:
            total += yield cell.peek()
        return total

    @readonly
    def slow_scan(self, work_ms=20.0):
        yield compute(work_ms)
        total = 0
        for cell in self.cells:
            total += yield cell.peek()
        return total


class Group(ContextClass):
    """Owns workers and (possibly shared) cells."""

    workers = RefSet(Worker)
    cells = RefSet(Cell)

    def __init__(self):
        pass

    @readonly
    def nr_workers(self):
        return len(self.workers)

    def fan_out(self, delta=1):
        for worker in self.workers:
            yield async_(worker.bump_all(delta))


_BUILD_COUNTER = [0]


def build_group(testbed, n_workers=2, shared_cells=1, private_cells=1,
                spread=True):
    """Build Group -> Workers -> Cells with optional sharing.

    Returns (group_ref, [worker_refs], [shared_cell_refs]).
    """
    runtime = testbed.runtime
    servers = testbed.servers
    _BUILD_COUNTER[0] += 1
    prefix = f"g{_BUILD_COUNTER[0]}"

    def host(i):
        return servers[i % len(servers)] if spread else servers[0]

    group = runtime.create_context(Group, server=host(0), name=f"{prefix}-group")
    shared = []
    for s in range(shared_cells):
        cell = runtime.create_context(
            Cell, owners=[group], server=host(0), name=f"{prefix}-shared-{s}"
        )
        runtime.instance_of(group).cells.add(cell)
        shared.append(cell)
    workers = []
    for w in range(n_workers):
        worker = runtime.create_context(
            Worker, owners=[group], server=host(w), name=f"{prefix}-worker-{w}"
        )
        runtime.instance_of(group).workers.add(worker)
        for cell in shared:
            runtime.instance_of(worker).cells.add(cell)
        for p in range(private_cells):
            private = runtime.create_context(
                Cell, owners=[worker], server=host(w), name=f"{prefix}-w{w}-cell-{p}"
            )
            runtime.instance_of(worker).cells.add(private)
        workers.append(worker)
    return group, workers, shared


@pytest.fixture
def aeon_bed():
    return Testbed(AeonRuntime)


@pytest.fixture
def eventwave_bed():
    return Testbed(EventWaveRuntime)


@pytest.fixture
def orleans_bed():
    return Testbed(OrleansRuntime)
