"""Recovery-path hardening: drain robustness, WAL id seeding, draining
target exclusion, incremental (delta) checkpoints, and detector-driven
client location-cache invalidation."""

import pytest

from repro.core import AeonRuntime
from repro.core.errors import MigrationError, is_retryable
from repro.elasticity import (
    CloudStorage,
    DeltaCheckpointer,
    EManager,
    ScaleInAction,
    read_checkpoint,
)
from repro.faults import FailureDetector, FaultInjector, FaultSchedule, ServerCrash
from repro.sim import M3_LARGE, RngRegistry

from conftest import Cell, Testbed, Worker


class ScriptedPolicy:
    """Replays a fixed action list on every decide() call."""

    def __init__(self, actions):
        self.actions = actions

    def decide(self, snapshot):
        return list(self.actions)


class FakeDetector:
    """Minimal duck-typed detector for wiring tests."""

    def __init__(self):
        self.failure_callbacks = []

    def on_failure(self, callback):
        self.failure_callbacks.append(callback)

    def declare(self, name):
        for callback in self.failure_callbacks:
            callback(name)


def _bed_with_manager(n_servers=3, policy=None, report_interval_ms=100.0):
    bed = Testbed(AeonRuntime, n_servers=n_servers, record_history=False)
    storage = CloudStorage(bed.sim)
    manager = EManager(
        bed.runtime, storage, policy, M3_LARGE,
        report_interval_ms=report_interval_ms,
    )
    return bed, storage, manager


# ----------------------------------------------------------------------
# Bugfix 1: a failed drain migration must not kill the control loop
# ----------------------------------------------------------------------
def test_drain_survives_failed_migration_and_retries(monkeypatch):
    victim_name = None
    bed, storage, manager = _bed_with_manager(
        policy=None, report_interval_ms=100.0
    )
    runtime = bed.runtime
    victim = bed.servers[1]
    victim_name = victim.name
    for name in ("a", "b"):
        runtime.create_context(Cell, server=victim, name=name)
    manager.policy = ScriptedPolicy([ScaleInAction(server=victim_name)])

    original = manager.coordinator.migrate
    fails = {"a": 1}

    def flaky(cid, dst):
        if fails.get(cid):
            fails[cid] -= 1
            raise MigrationError("victim concurrently moved")
        return original(cid, dst)

    monkeypatch.setattr(manager.coordinator, "migrate", flaky)
    manager.start()
    bed.sim.run(until=150.0)
    # Round 1 drained "b" but skipped the failing "a": the loop is still
    # alive, the flag is clear, and the server was NOT decommissioned.
    assert runtime.placement["b"] != victim_name
    assert runtime.placement["a"] == victim_name
    assert victim_name in runtime.cluster.servers
    assert manager._draining == {}
    # Round 2 (the script re-issues ScaleIn) finishes the job.
    bed.sim.run(until=1000.0)
    manager.stop()
    assert runtime.placement["a"] != victim_name
    assert victim_name not in runtime.cluster.servers
    assert manager._draining == {}


def test_drain_survives_mid_flight_failure_and_loop_stays_alive():
    bed, storage, manager = _bed_with_manager(report_interval_ms=100.0)
    runtime = bed.runtime
    victim = bed.servers[1]
    runtime.create_context(Cell, server=victim, name="stuck")
    manager.policy = ScriptedPolicy([ScaleInAction(server=victim.name)])

    def doomed(cid, dst):
        signal = bed.sim.signal(name="doomed-migration")
        bed.sim.schedule(
            1.0, signal.fail, MigrationError("target died mid-drain")
        )
        return signal

    manager.coordinator.migrate = doomed
    manager.start()
    bed.sim.run(until=550.0)
    ticks_so_far = len(manager.server_count_series.points)
    bed.sim.run(until=1050.0)
    manager.stop()
    # The loop kept ticking after every drain round failed mid-flight...
    assert len(manager.server_count_series.points) > ticks_so_far >= 4
    # ...the victim still hosts its context and was not decommissioned.
    assert runtime.placement["stuck"] == victim.name
    assert victim.name in runtime.cluster.servers
    assert manager._draining == {}


# ----------------------------------------------------------------------
# Bugfix 2: eManager recovery must seed the migration-id counter
# ----------------------------------------------------------------------
def test_recovered_manager_does_not_reuse_live_migration_ids():
    bed, storage, manager = _bed_with_manager()
    runtime = bed.runtime
    runtime.create_context(Cell, server=bed.servers[0], name="walled")
    runtime.create_context(Cell, server=bed.servers[0], name="fresh")
    handle = manager.coordinator.migrate("walled", bed.servers[1])
    resumed_id = manager.coordinator.records[0].migration_id
    bed.sim.run(until=13.5)  # past step I, before the move
    manager.crash()
    assert not handle.triggered
    assert storage.keys_with_prefix("migration/")  # WAL present

    successor = manager.recover()
    # The successor's counter starts past every id the WAL has seen, so
    # a fresh migration cannot collide with the resumed one.
    assert successor.coordinator._counter >= resumed_id
    fresh = successor.coordinator.migrate("fresh", bed.servers[1])
    fresh_record = successor.coordinator.records[-1]
    assert fresh_record.migration_id > resumed_id
    bed.run()
    assert handle.triggered or True  # old handle belongs to the corpse
    assert fresh.triggered and fresh.ok
    assert runtime.placement["walled"] == bed.servers[1].name
    assert runtime.placement["fresh"] == bed.servers[1].name
    # Both WAL records were cleaned up under their distinct keys.
    assert storage.keys_with_prefix("migration/") == []


# ----------------------------------------------------------------------
# Bugfix 3: draining servers are not drain/recovery targets
# ----------------------------------------------------------------------
def test_drain_excludes_draining_targets():
    bed, storage, manager = _bed_with_manager(n_servers=3)
    runtime = bed.runtime
    src, other = bed.servers[1], bed.servers[2]
    for i in range(3):
        runtime.create_context(Cell, server=src, name=f"mv-{i}")
    # A concurrent ScaleIn is already draining the other server.
    manager._draining[other.name] = True
    bed.sim.process(manager._drain_and_remove(src.name))
    bed.run()
    manager._draining.pop(other.name, None)
    for i in range(3):
        assert runtime.placement[f"mv-{i}"] == bed.servers[0].name
    assert src.name not in runtime.cluster.servers


def test_recovery_excludes_draining_targets():
    bed, storage, manager = _bed_with_manager(n_servers=3)
    runtime = bed.runtime
    victim, draining = bed.servers[1], bed.servers[2]
    for i in range(4):
        runtime.create_context(Cell, server=victim, name=f"lost-{i}")
    detector = FakeDetector()
    manager.enable_fault_tolerance(detector, checkpoint_interval_ms=0.0)
    manager._draining[draining.name] = True
    bed.cluster.crash_server(victim.name)
    bed.network.detach(victim.name)
    detector.declare(victim.name)
    bed.run()
    assert manager.contexts_recovered == 4
    for i in range(4):
        # Everything re-placed on the one server that is neither dead
        # nor being drained.
        assert runtime.placement[f"lost-{i}"] == bed.servers[0].name


# ----------------------------------------------------------------------
# Delta checkpoints: chain mechanics and recovery equivalence
# ----------------------------------------------------------------------
def _churny_crash_run(checkpoint_mode):
    """One crash/recovery run with skewed writes; returns the outcome."""
    bed = Testbed(AeonRuntime, n_servers=3, record_history=False)
    runtime, sim = bed.runtime, bed.sim
    storage = CloudStorage(sim)
    manager = EManager(runtime, storage, None, M3_LARGE)
    detector = FailureDetector(
        bed.sim, bed.network, bed.cluster,
        heartbeat_interval_ms=50.0, lease_ms=160.0, check_interval_ms=25.0,
    )
    victim = bed.servers[1]
    worker = runtime.create_context(Worker, server=victim, name="w")
    cells = []
    for i in range(4):
        cell = runtime.create_context(
            Cell, owners=[worker], server=victim, name=f"c{i}"
        )
        runtime.instance_of("w").cells.add(cell)
        cells.append(cell)
    manager.enable_fault_tolerance(
        detector, checkpoint_interval_ms=100.0, roots=["w"],
        checkpoint_mode=checkpoint_mode, max_delta_chain=3,
    )
    detector.start()
    FaultInjector(
        sim, bed.network, bed.cluster,
        FaultSchedule([ServerCrash(1000.0, victim.name)]),
    ).start()
    # Skewed write traffic: only c0 is ever touched.
    for tick in range(9):
        done = bed.submit(cells[0].add(1))
        sim.run(until=(tick + 1) * 100.0 - 50.0)
        assert done.value.error is None
    sim.run(until=2500.0)
    detector.stop()
    manager.stop()
    return {
        "states": {f"c{i}": runtime.instance_of(f"c{i}").value for i in range(4)},
        "placement": runtime.placement["c0"],
        "bytes": manager.checkpoint_bytes_written,
        "taken": manager.checkpoints_taken,
        "skipped": manager.checkpoints_skipped,
        "recovered": manager.contexts_recovered,
        "checkpoint_keys": storage.keys_with_prefix("checkpoint/"),
    }


def test_delta_chain_recovery_matches_full_bundle_recovery():
    full = _churny_crash_run("full")
    delta = _churny_crash_run("delta")
    # Recovery from a base + delta chain restores state identical to
    # recovery from a rolling full bundle.
    assert delta["states"] == full["states"]
    assert delta["placement"] == full["placement"]
    assert delta["recovered"] == full["recovered"] == 5
    # The skewed run cut checkpoint bytes by far more than half...
    assert delta["bytes"] <= 0.5 * full["bytes"]
    # ...because unchanged members were skipped and whole intervals with
    # no version movement wrote nothing at all.
    assert delta["skipped"] > 0 and full["skipped"] == 0
    # The chain is bounded: base + at most max_delta_chain delta keys.
    assert full["checkpoint_keys"] == ["checkpoint/w"]
    deltas = [k for k in delta["checkpoint_keys"] if "/delta/" in k]
    assert 1 <= len(deltas) <= 3


def test_delta_checkpointer_rebases_and_reassembles():
    bed = Testbed(AeonRuntime, n_servers=2, record_history=False)
    runtime, sim = bed.runtime, bed.sim
    storage = CloudStorage(sim)
    worker = runtime.create_context(Worker, server=bed.servers[0], name="root")
    cells = []
    for i in range(3):
        cell = runtime.create_context(
            Cell, owners=[worker], server=bed.servers[0], name=f"leaf{i}"
        )
        runtime.instance_of("root").cells.add(cell)
        cells.append(cell)
    checkpointer = DeltaCheckpointer(
        runtime, storage, "root", key="checkpoint/root", max_chain=2
    )

    def tick(expected_kind):
        done = checkpointer.checkpoint()
        sim.run(until=sim.now + 50.0)
        assert done.triggered and done.value == expected_kind

    tick("base")  # first bundle is always a base
    tick("skip")  # nothing moved: nothing written
    bed.run_event(cells[0].add(1))
    tick("delta")  # only leaf0 shipped
    bed.run_event(cells[1].add(5))
    tick("delta")  # chain now at max_chain
    bed.run_event(cells[2].add(7))
    tick("base")  # bounded chain: periodic re-base
    assert checkpointer.bases_written == 2
    assert checkpointer.deltas_written == 2
    assert checkpointer.skipped == 1

    def assemble():
        states = yield from read_checkpoint(storage, "checkpoint/root")
        return states

    states = sim.run_process(assemble())
    assert states["leaf0"]["value"] == 1
    assert states["leaf1"]["value"] == 5
    assert states["leaf2"]["value"] == 7
    # Stale delta keys from before the re-base survive in storage but
    # are ignored by reassembly (their seq predates the new base).
    assert storage.keys_with_prefix("checkpoint/root/delta/") != []

    bed.run_event(cells[0].add(10))
    tick("delta")  # a fresh chain on top of the new base
    states = sim.run_process(assemble())
    assert states["leaf0"]["value"] == 11


def test_successor_checkpointer_seeds_seq_past_stale_bundles():
    bed = Testbed(AeonRuntime, n_servers=2, record_history=False)
    runtime, sim = bed.runtime, bed.sim
    storage = CloudStorage(sim)
    worker = runtime.create_context(Worker, server=bed.servers[0], name="r")
    cell = runtime.create_context(
        Cell, owners=[worker], server=bed.servers[0], name="c"
    )
    runtime.instance_of("r").cells.add(cell)
    first = DeltaCheckpointer(runtime, storage, "r", key="checkpoint/r")
    first.checkpoint()
    sim.run(until=sim.now + 50.0)
    bed.run_event(cell.add(3))
    first.checkpoint()
    sim.run(until=sim.now + 50.0)
    stale_delta_seq = storage.peek("checkpoint/r/delta/1")["seq"]

    # A successor (fresh manager after recover()) starts a new chain: its
    # first base must outrank the surviving stale delta, or reassembly
    # would wrongly overlay it.
    bed.run_event(cell.add(4))  # value now 7
    successor = DeltaCheckpointer(runtime, storage, "r", key="checkpoint/r")
    done = successor.checkpoint()
    sim.run(until=sim.now + 50.0)
    assert done.value == "base"
    assert storage.peek("checkpoint/r")["seq"] > stale_delta_seq

    def assemble():
        states = yield from read_checkpoint(storage, "checkpoint/r")
        return states

    assert sim.run_process(assemble())["c"]["value"] == 7


# ----------------------------------------------------------------------
# Detector-driven client location-cache invalidation
# ----------------------------------------------------------------------
def test_invalidate_cached_locations_drops_matching_entries_only():
    bed = Testbed(AeonRuntime, n_servers=2, record_history=False)
    runtime = bed.runtime
    runtime.create_context(Cell, server=bed.servers[0], name="on-0")
    runtime.create_context(Cell, server=bed.servers[1], name="on-1")
    client = bed.client
    assert client.locate("on-0") == bed.servers[0].name
    assert client.locate("on-1") == bed.servers[1].name
    dropped = runtime.invalidate_cached_locations(bed.servers[0].name)
    assert dropped == 1 and client.invalidated == 1
    assert "on-0" not in client._cache
    assert client._cache["on-1"] == bed.servers[1].name


def test_detector_declaration_push_invalidates_client_caches():
    bed = Testbed(AeonRuntime, n_servers=3, record_history=False)
    runtime, sim = bed.runtime, bed.sim
    storage = CloudStorage(sim)
    manager = EManager(runtime, storage, None, M3_LARGE)
    detector = FailureDetector(
        bed.sim, bed.network, bed.cluster,
        heartbeat_interval_ms=50.0, lease_ms=160.0, check_interval_ms=25.0,
    )
    victim = bed.servers[1]
    cell = runtime.create_context(Cell, server=victim, name="watched")
    manager.enable_fault_tolerance(detector, checkpoint_interval_ms=100.0,
                                   roots=["watched"])
    detector.start()
    done = bed.submit(cell.add(1))
    sim.run(until=100.0)
    assert done.value.error is None
    assert bed.client._cache["watched"] == victim.name
    FaultInjector(
        sim, bed.network, bed.cluster,
        FaultSchedule([ServerCrash(150.0, victim.name)]),
    ).start()
    sim.run(until=1000.0)
    detector.stop()
    manager.stop()
    # The declaration push-invalidated the stale entry (and recovery
    # re-placed the context), so the next submit resolves fresh and
    # succeeds without a detour through the corpse.
    assert manager.cache_invalidations >= 1
    cached = bed.client._cache.get("watched")
    assert cached != victim.name
    after = bed.submit(cell.add(2))
    sim.run(until=1500.0)
    assert after.value.error is None
    assert bed.client._cache["watched"] == runtime.placement["watched"]


def test_client_forgets_cached_location_on_delivery_failure():
    bed = Testbed(AeonRuntime, n_servers=2, record_history=False)
    runtime, sim = bed.runtime, bed.sim
    victim = bed.servers[1]
    cell = runtime.create_context(Cell, server=victim, name="gone")
    done = bed.submit(cell.add(1))
    sim.run(until=50.0)
    assert done.value.error is None
    assert bed.client._cache["gone"] == victim.name
    # No detector anywhere: the client is on its own.
    FaultInjector(
        sim, bed.network, bed.cluster,
        FaultSchedule([ServerCrash(60.0, victim.name)]),
    ).start()
    sim.run(until=100.0)
    failed = bed.submit(cell.add(1))
    sim.run(until=200.0)
    assert failed.value.error is not None and is_retryable(failed.value.error)
    # The failed hop dropped the entry: the retry will re-resolve
    # instead of re-failing on the same cached corpse.
    assert "gone" not in bed.client._cache
