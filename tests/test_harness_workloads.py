"""Tests for the workload generators, harness runner and report module."""

import pytest

from repro.core import AeonRuntime, ContextClass, Ref
from repro.harness.report import format_series, format_table
from repro.harness.runner import SYSTEMS, make_testbed, run_game, runtime_class_for
from repro.workloads import ClosedLoopClients, RampProfile, SlaReport, sla_report
from repro.workloads.generators import DynamicClients
from repro.sim.metrics import LatencyRecorder

from conftest import Cell, Testbed


# ----------------------------------------------------------------------
# Report rendering
# ----------------------------------------------------------------------
def test_format_table_alignment():
    text = format_table("T", ["a", "bb"], [[1, 2.5], ["xyz", 4]])
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[2] and "bb" in lines[2]
    assert "2.50" in text and "xyz" in text


def test_format_table_empty_rows():
    text = format_table("Empty", ["col"], [])
    assert "col" in text


def test_format_series():
    text = format_series("S", {"x": [(1.0, 2.0)]})
    assert "[x]" in text and "2.00" in text


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
def test_runtime_class_for_known_systems():
    for system in SYSTEMS:
        assert runtime_class_for(system) is not None
    with pytest.raises(ValueError):
        runtime_class_for("nope")


def test_make_testbed_builds_cluster():
    testbed = make_testbed("aeon", 3)
    assert len(testbed.servers) == 3
    assert isinstance(testbed.runtime, AeonRuntime)


def test_run_game_produces_metrics():
    result, testbed, app = run_game(
        "aeon", 2, n_clients=8, duration_ms=400.0, warmup_ms=100.0
    )
    assert result.throughput_per_s > 0
    assert result.mean_latency_ms > 0
    assert result.p99_latency_ms >= result.p50_latency_ms
    assert result.errors == 0


# ----------------------------------------------------------------------
# Closed-loop clients
# ----------------------------------------------------------------------
def test_closed_loop_clients_submit_until_stop():
    bed = Testbed(AeonRuntime)
    cell = bed.runtime.create_context(Cell, server=bed.servers[0], name="cc")

    def sampler(rng):
        return cell.add(1), "op"

    clients = ClosedLoopClients(bed.runtime, sampler, n_clients=3,
                                think_ms=1.0, stop_at_ms=50.0)
    clients.start()
    bed.sim.run(until=200.0)
    assert clients.submitted > 10
    assert bed.runtime.instance_of(cell).value == clients.submitted
    assert not clients.errors


def test_closed_loop_requires_clients():
    bed = Testbed(AeonRuntime)
    with pytest.raises(ValueError):
        ClosedLoopClients(bed.runtime, lambda r: None, n_clients=0)


# ----------------------------------------------------------------------
# Ramp profile and dynamic clients
# ----------------------------------------------------------------------
def test_ramp_profile_normal_peak_shape():
    profile = RampProfile.normal_peak(1000.0, machines=4, min_per_machine=1,
                                      max_per_machine=10)
    start = profile.target_at(0.0)
    mid = profile.target_at(500.0)
    end = profile.target_at(1000.0)
    assert mid > start and mid > end
    assert profile.peak() == mid
    assert start >= 4  # min 1 per machine x 4 machines


def test_ramp_profile_step_hold():
    profile = RampProfile([(0.0, 2), (100.0, 5)])
    assert profile.target_at(50.0) == 2
    assert profile.target_at(100.0) == 5
    assert profile.target_at(999.0) == 5


def test_dynamic_clients_track_profile():
    bed = Testbed(AeonRuntime)
    cell = bed.runtime.create_context(Cell, server=bed.servers[0], name="dc")

    def sampler(rng):
        return cell.add(1), "op"

    profile = RampProfile([(0.0, 2), (100.0, 6), (300.0, 1)])
    clients = DynamicClients(bed.runtime, sampler, profile, think_ms=2.0,
                             tick_ms=20.0, stop_at_ms=500.0)
    clients.start()
    bed.sim.run(until=800.0)
    counts = dict(clients.active_series)
    assert max(v for v in counts.values()) == 6
    at_end = [v for t, v in clients.active_series if t >= 320.0]
    assert at_end and at_end[-1] == 1


# ----------------------------------------------------------------------
# SLA accounting
# ----------------------------------------------------------------------
def test_sla_report_counts_violations():
    recorder = LatencyRecorder()
    for latency in (1.0, 5.0, 15.0, 25.0):
        recorder.record(0.0, latency)
    report = sla_report("test", recorder, sla_ms=10.0, avg_servers=3.5)
    assert report.total_requests == 4
    assert report.violations == 2
    assert report.violation_pct == pytest.approx(50.0)
    assert report.avg_servers == 3.5


def test_sla_report_empty():
    report = sla_report("empty", LatencyRecorder(), 10.0, 1.0)
    assert report.violation_pct == 0.0


# ----------------------------------------------------------------------
# Inductive contextclasses (reflexive constraints, §3)
# ----------------------------------------------------------------------
class ListNode(ContextClass):
    """The paper's inductive-structure case: a linked list of contexts."""

    next_node = Ref("ListNode")

    def __init__(self, value):
        self.value = value

    def sum_from_here(self):
        total = self.value
        if self.next_node is not None:
            total += yield self.next_node.sum_from_here()
        return total


def test_recursive_contextclass_accepted_and_runs():
    bed = Testbed(AeonRuntime)
    runtime = bed.runtime
    nodes = [
        runtime.create_context(ListNode, server=bed.servers[0],
                               name=f"node-{i}", args=(i,))
        for i in range(4)
    ]
    for i in range(3):
        runtime.instance_of(nodes[i]).next_node = nodes[i + 1]
    event = bed.run_event(nodes[0].sum_from_here())
    assert event.error is None
    assert event.result == 0 + 1 + 2 + 3
    assert "ListNode" in runtime.analysis.recursive_types()


def test_recursive_contextclass_cycle_rejected_at_runtime():
    """The reflexive allowance costs a runtime DAG check (§3)."""
    from repro.core.errors import OwnershipCycleError

    bed = Testbed(AeonRuntime)
    runtime = bed.runtime
    a = runtime.create_context(ListNode, server=bed.servers[0], name="la", args=(1,))
    b = runtime.create_context(ListNode, server=bed.servers[0], name="lb", args=(2,))
    runtime.instance_of(a).next_node = b
    with pytest.raises(OwnershipCycleError):
        runtime.instance_of(b).next_node = a
