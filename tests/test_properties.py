"""Property-based tests (hypothesis) for core data structures.

Oracles: networkx for graph-theoretic properties of the ownership
network, brute-force recomputation for the incremental caches, and the
locking/history invariants under arbitrary schedules.
"""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import OwnershipCycleError
from repro.core.events import AccessMode, CallSpec, Event
from repro.core.history import HistoryRecorder
from repro.core.locking import ContextLock
from repro.core.ownership import OwnershipNetwork
from repro.sim.kernel import Simulator
from repro.sim.metrics import percentile


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def ownership_dags(draw):
    """A random DAG built the way runtimes build them: children later.

    Returns (network, node_names).  Nodes pick 0-3 parents among earlier
    nodes, so the graph is acyclic by construction.
    """
    n = draw(st.integers(min_value=1, max_value=14))
    network = OwnershipNetwork()
    names = [f"n{i}" for i in range(n)]
    for i, name in enumerate(names):
        k = draw(st.integers(min_value=0, max_value=min(3, i)))
        parents = draw(
            st.lists(
                st.sampled_from(names[:i]) if i else st.nothing(),
                min_size=k,
                max_size=k,
                unique=True,
            )
        ) if i else []
        network.add_context(name, parents=parents)
    return network, names


def as_networkx(network: OwnershipNetwork) -> nx.DiGraph:
    graph = nx.DiGraph()
    graph.add_nodes_from(network.contexts())
    graph.add_edges_from(network.edges())
    return graph


# ----------------------------------------------------------------------
# Ownership network vs networkx oracle
# ----------------------------------------------------------------------
@given(ownership_dags())
@settings(max_examples=60, deadline=None)
def test_descendants_match_networkx(data):
    network, names = data
    oracle = as_networkx(network)
    for name in names:
        expected = set(nx.descendants(oracle, name)) | {name}
        assert set(network.descendants(name)) == expected


@given(ownership_dags())
@settings(max_examples=60, deadline=None)
def test_ancestors_match_networkx(data):
    network, names = data
    oracle = as_networkx(network)
    for name in names:
        expected = set(nx.ancestors(oracle, name)) | {name}
        assert set(network.ancestors(name)) == expected


@given(ownership_dags())
@settings(max_examples=60, deadline=None)
def test_network_always_acyclic(data):
    network, _names = data
    assert network.is_acyclic()
    assert nx.is_directed_acyclic_graph(as_networkx(network))


@given(ownership_dags())
@settings(max_examples=40, deadline=None)
def test_dominator_dominates_share_group(data):
    """dom(C) is an ancestor-or-self of C and of every sharer of C."""
    network, names = data
    for name in names:
        share = network.share(name)
        dom = network.dominator(name)
        group = share | {name}
        for member in group:
            assert dom in network.ancestors(member), (
                f"dominator {dom} of {name} does not dominate {member}"
            )


@given(ownership_dags())
@settings(max_examples=40, deadline=None)
def test_share_is_symmetric_for_incomparable_pairs(data):
    """Clause 2 symmetry: incomparable sharers list each other."""
    network, names = data
    for a in names:
        for b in network.share(a):
            a_desc = network.descendants(a)
            b_desc = network.descendants(b)
            if a not in b_desc and b not in a_desc:
                assert a in network.share(b) or b in network.ancestors(a)


@given(ownership_dags())
@settings(max_examples=40, deadline=None)
def test_conflicting_targets_share_a_dominator_chain(data):
    """If two contexts' descendant sets intersect, one dominator
    dominates both targets — the protocol's deadlock-freedom premise."""
    network, names = data
    for a in names:
        for b in names:
            if a >= b:
                continue
            if network.descendants(a).isdisjoint(network.descendants(b)):
                continue
            dom_a = network.dominator(a)
            dom_b = network.dominator(b)
            anc_a = network.ancestors(a)
            anc_b = network.ancestors(b)
            assert (
                dom_a in anc_b
                or dom_b in anc_a
                or dom_a == dom_b
                or dom_a in network.ancestors(dom_b)
                or dom_b in network.ancestors(dom_a)
            ), f"{a}/{b}: dominators {dom_a}/{dom_b} unrelated"


@given(ownership_dags())
@settings(max_examples=40, deadline=None)
def test_find_path_is_a_real_path(data):
    network, names = data
    for src in names:
        for dst in network.descendants(src):
            path = network.find_path(src, dst)
            assert path[0] == src and path[-1] == dst
            for parent, child in zip(path, path[1:]):
                assert child in network.children(parent)


@given(ownership_dags(), st.data())
@settings(max_examples=40, deadline=None)
def test_incremental_caches_match_full_recompute(data, extra):
    """share/dominator caches patched by leaf adds equal a full recompute."""
    network, names = data
    # Warm every cache.
    for name in names:
        network.dominator(name)
    n_adds = extra.draw(st.integers(min_value=1, max_value=5))
    for i in range(n_adds):
        k = extra.draw(st.integers(min_value=0, max_value=min(3, len(names))))
        parents = extra.draw(
            st.lists(st.sampled_from(names), min_size=k, max_size=k, unique=True)
        ) if names else []
        leaf = f"leaf{i}"
        network.add_context(leaf, parents=parents)
        names.append(leaf)
    # Cached (incrementally patched) vs full-scan recomputation.
    # Dominators first: computing them may create virtual joins (a graph
    # mutation), and share sets must be captured on the final graph.
    cached_dom = {name: network.dominator(name) for name in names}
    cached_share = {name: set(network.share(name)) for name in names}
    network._invalidate()
    for name in names:
        fresh_share = set(network.share(name))
        assert cached_share[name] == fresh_share, name
        fresh_dom = network.dominator(name)
        if network.is_virtual(fresh_dom) and network.is_virtual(cached_dom[name]):
            continue  # virtual joins may differ in identity, not role
        assert cached_dom[name] == fresh_dom, name


@given(ownership_dags())
@settings(max_examples=30, deadline=None)
def test_cycle_rejection_property(data):
    """Adding any ancestor as a child of its descendant is rejected."""
    network, names = data
    for name in names:
        ancestors = network.ancestors(name) - {name}
        for ancestor in list(ancestors)[:3]:
            with pytest.raises(OwnershipCycleError):
                network.add_edge(name, ancestor)


# ----------------------------------------------------------------------
# Lock admission invariants under arbitrary schedules
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.sampled_from(["req_ro", "req_ex", "rel"]),
                  st.integers(min_value=0, max_value=7)),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=100, deadline=None)
def test_lock_safety_invariants(script):
    """Never RO+EX or EX+EX concurrently; FIFO admission; no lost grants."""
    sim = Simulator()
    lock = ContextLock(sim, "c")
    events = {}
    granted = set()

    def get_event(eid, mode):
        if eid not in events:
            events[eid] = Event(eid, CallSpec("c", "m"), mode, "cl", 0.0)
        return events[eid]

    for op, eid in script:
        if op == "rel":
            if eid in events:
                lock.release(events[eid])
        else:
            mode = AccessMode.RO if op == "req_ro" else AccessMode.EX
            if eid in events:
                continue  # one request per event in this model
            grant, _owned = lock.request(get_event(eid, mode))
            grant.add_callback(lambda _s, e=eid: granted.add(e))
        sim.run()
        holders = lock.activated
        ex_holders = [e for e, m in holders.items() if m is AccessMode.EX]
        assert len(ex_holders) <= 1
        if ex_holders:
            assert len(holders) == 1
    # Drain: after releasing everything (twice, covering reservations
    # that got granted by the first pass), nothing is held or queued.
    for event in events.values():
        lock.release(event)
        sim.run()
    for event in events.values():
        lock.release(event)
        sim.run()
    assert lock.queue_length == 0
    assert not lock.is_held()
    # Every grant that fired belongs to a known event.
    assert granted <= set(events)


# ----------------------------------------------------------------------
# History checker properties
# ----------------------------------------------------------------------
@given(
    st.lists(st.tuples(st.integers(0, 3), st.booleans()), min_size=1, max_size=30)
)
@settings(max_examples=80, deadline=None)
def test_serial_histories_always_pass(script):
    """Any genuinely serial execution passes the checker."""
    recorder = HistoryRecorder()
    versions = {}
    now = 0.0
    for eid, (ctx_index, is_read) in enumerate(script):
        cid = f"ctx{ctx_index}"
        start = now
        now += 1.0
        if is_read:
            recorder.commit(eid, "", start, now,
                            reads={cid: versions.get(cid, 0)}, writes={})
        else:
            versions[cid] = versions.get(cid, 0) + 1
            recorder.commit(eid, "", start, now,
                            reads={}, writes={cid: versions[cid]})
    recorder.check()
    order = recorder.serial_order()
    assert order is not None


@given(st.lists(st.floats(min_value=0, max_value=1000), min_size=1, max_size=200),
       st.floats(min_value=0, max_value=100))
@settings(max_examples=100, deadline=None)
def test_percentile_bounds(values, pct):
    result = percentile(values, pct)
    assert min(values) <= result <= max(values)
