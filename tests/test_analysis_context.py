"""Unit tests for the static analysis and contextclass machinery."""

import pytest

from repro.core.analysis import StaticAnalysis
from repro.core.context import (
    ContextClass,
    ContextRef,
    Ref,
    RefSet,
    cost,
    is_readonly,
    method_cost,
    readonly,
)
from repro.core.errors import AeonError, StaticAnalysisError
from repro.core.events import CallSpec


# ----------------------------------------------------------------------
# StaticAnalysis
# ----------------------------------------------------------------------
def test_acyclic_constraints_pass():
    analysis = StaticAnalysis()
    analysis.register("Building", {"Room"})
    analysis.register("Room", {"Player", "Item"})
    analysis.register("Player", {"Item"})
    analysis.register("Item", set())
    analysis.check()  # no exception


def test_cyclic_constraints_rejected():
    analysis = StaticAnalysis()
    analysis.register("A", {"B"})
    analysis.register("B", {"A"})
    with pytest.raises(StaticAnalysisError):
        analysis.check()


def test_reflexive_constraint_allowed():
    analysis = StaticAnalysis()
    analysis.register("ListNode", {"ListNode"})
    analysis.check()
    assert analysis.recursive_types() == {"ListNode"}


def test_longer_cycle_detected():
    analysis = StaticAnalysis()
    analysis.register("A", {"B"})
    analysis.register("B", {"C"})
    analysis.register("C", {"A"})
    with pytest.raises(StaticAnalysisError) as excinfo:
        analysis.check()
    message = str(excinfo.value)
    assert "A" in message and "B" in message and "C" in message


def test_check_memoized_until_new_registration():
    analysis = StaticAnalysis()
    analysis.register("A", {"B"})
    analysis.check()
    analysis.check()  # cached
    analysis.register("B", {"A"})
    with pytest.raises(StaticAnalysisError):
        analysis.check()


def test_registered_types_listing():
    analysis = StaticAnalysis()
    analysis.register("X", set())
    assert analysis.registered_types() == ["X"]


# ----------------------------------------------------------------------
# Decorators
# ----------------------------------------------------------------------
def test_readonly_marker():
    @readonly
    def probe(self):
        return 1

    assert is_readonly(probe)
    assert not is_readonly(lambda: None)


def test_cost_marker_and_default():
    @cost(2.5)
    def heavy(self):
        pass

    def plain(self):
        pass

    assert method_cost(heavy, 0.1) == 2.5
    assert method_cost(plain, 0.1) == 0.1


# ----------------------------------------------------------------------
# ContextRef
# ----------------------------------------------------------------------
def test_ref_builds_callspecs():
    ref = ContextRef("player-1", "Player")
    spec = ref.get_gold(50, fast=True)
    assert isinstance(spec, CallSpec)
    assert spec.target == "player-1"
    assert spec.method == "get_gold"
    assert spec.args == (50,)
    assert spec.kwargs == {"fast": True}


def test_ref_explicit_call():
    ref = ContextRef("x", "T")
    spec = ref.call("dynamic_method", 1)
    assert spec.method == "dynamic_method"


def test_ref_equality_and_hash():
    a = ContextRef("same", "T")
    b = ContextRef("same", "U")
    assert a == b
    assert hash(a) == hash(b)
    assert a != ContextRef("other", "T")


def test_ref_private_attribute_raises():
    ref = ContextRef("x", "T")
    with pytest.raises(AttributeError):
        _ = ref._secret


# ----------------------------------------------------------------------
# Contextclass declarations (detached instances)
# ----------------------------------------------------------------------
class Leaf(ContextClass):
    def __init__(self):
        pass


class Holder(ContextClass):
    single = Ref(Leaf)
    many = RefSet("Leaf")

    def __init__(self):
        pass


def test_declared_ref_types_collected():
    assert Holder.declared_ref_types() == {"Leaf"}
    assert Leaf.declared_ref_types() == set()


def test_declared_ref_types_inherited():
    class Sub(Holder):
        extra = Ref("Other")

    assert Sub.declared_ref_types() == {"Leaf", "Other"}


def test_ref_type_validation():
    with pytest.raises(TypeError):
        Ref(42)


def test_detached_instance_ref_assignment():
    holder = Holder()
    assert holder.single is None
    holder.single = ContextRef("leaf-1", "Leaf")
    assert holder.single.cid == "leaf-1"
    holder.single = None
    assert holder.single is None


def test_detached_ref_requires_contextref():
    holder = Holder()
    with pytest.raises(TypeError):
        holder.single = "not a ref"


def test_refset_view_add_discard_iter():
    holder = Holder()
    a = ContextRef("leaf-a", "Leaf")
    b = ContextRef("leaf-b", "Leaf")
    holder.many.add(a)
    holder.many.add(b)
    holder.many.add(a)  # idempotent
    assert len(holder.many) == 2
    assert list(holder.many) == [a, b]  # sorted by cid
    assert a in holder.many
    holder.many.discard(a)
    assert a not in holder.many
    holder.many.discard(a)  # idempotent


def test_refset_cannot_be_assigned():
    holder = Holder()
    with pytest.raises(AeonError):
        holder.many = set()


def test_refset_add_requires_ref():
    holder = Holder()
    with pytest.raises(TypeError):
        holder.many.add("nope")


def test_state_snapshot_contains_fields_and_refs():
    holder = Holder()
    holder.single = ContextRef("leaf-9", "Leaf")
    holder.many.add(ContextRef("leaf-7", "Leaf"))
    holder.plain_value = 42
    snap = holder.state_snapshot()
    assert snap["plain_value"] == 42
    assert snap["__refs__"] == {"single": "leaf-9"}
    assert snap["__refsets__"] == {"many": ["leaf-7"]}
