"""Client/workload generators driving the applications.

Two client styles cover every experiment:

* :class:`ClosedLoopClients` — N clients that submit, wait for the
  reply, think, repeat (the paper's throughput/latency sweeps);
* :class:`RampProfile` + :class:`DynamicClients` — a population of
  clients that follows a target-count profile over time (the §6.2
  elasticity experiment's normally distributed 1→16 clients per client
  machine).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from random import Random
from typing import Callable, Generator, List, Optional, Tuple

from ..core.errors import is_retryable
from ..core.events import CallSpec
from ..core.runtime import RuntimeBase
from ..sim.rng import RngRegistry

__all__ = ["OpSampler", "ClosedLoopClients", "RampProfile", "DynamicClients"]

#: A function drawing one client operation: ``rng -> (spec, tag)``.
OpSampler = Callable[[Random], Tuple[CallSpec, str]]


class ClosedLoopClients:
    """A fixed population of think-time closed-loop clients."""

    def __init__(
        self,
        runtime: RuntimeBase,
        sampler: OpSampler,
        n_clients: int,
        think_ms: float = 2.0,
        rng: Optional[RngRegistry] = None,
        stop_at_ms: Optional[float] = None,
        name_prefix: str = "client",
        max_retries: int = 0,
        retry_backoff_ms: float = 4.0,
    ) -> None:
        if n_clients < 1:
            raise ValueError("need at least one client")
        self.runtime = runtime
        self.sampler = sampler
        self.n_clients = n_clients
        self.think_ms = think_ms
        self.rng = rng or RngRegistry(0)
        self.stop_at_ms = stop_at_ms
        self.name_prefix = name_prefix
        #: Resubmissions allowed per operation when it fails with a
        #: *retryable* error (delivery failures during a crash or
        #: partition).  0 (the default) keeps the fault-free behaviour —
        #: and the fault-free RNG streams — exactly as before.
        self.max_retries = max_retries
        self.retry_backoff_ms = retry_backoff_ms
        self.submitted = 0
        self.retries = 0
        self.errors: List[BaseException] = []

    def start(self) -> None:
        """Spawn all client loops."""
        for index in range(self.n_clients):
            self.runtime.sim.process(
                self._loop(index), name=f"{self.name_prefix}-{index}"
            )

    def _loop(self, index: int) -> Generator:
        runtime = self.runtime
        sim = runtime.sim
        handle = runtime.register_client(f"{self.name_prefix}-{index}")
        stream = self.rng.stream(f"{self.name_prefix}-{index}")
        sampler = self.sampler
        submit = runtime.submit
        stop_at = self.stop_at_ms
        think_rate = 1.0 / self.think_ms if self.think_ms > 0 else None
        expovariate = stream.expovariate
        max_retries = self.max_retries
        backoff_rate = 1.0 / self.retry_backoff_ms if self.retry_backoff_ms > 0 else None
        while stop_at is None or sim.now < stop_at:
            spec, tag = sampler(stream)
            self.submitted += 1
            event = yield submit(handle, spec, tag=tag)
            if event is not None and event.error is not None:
                self.errors.append(event.error)
                # Retryable failures (the target's server crashed or was
                # partitioned away mid-event) are resubmitted after a
                # short backoff, up to the per-op budget.
                attempts = 0
                while (
                    attempts < max_retries
                    and event is not None
                    and event.error is not None
                    and is_retryable(event.error)
                    and (stop_at is None or sim.now < stop_at)
                ):
                    attempts += 1
                    self.retries += 1
                    if backoff_rate is not None:
                        yield stream.expovariate(backoff_rate)
                    event = yield submit(handle, spec, tag=tag)
                    if event is not None and event.error is not None:
                        self.errors.append(event.error)
            if think_rate is not None:
                yield expovariate(think_rate)
            # The think pause put the event's scheduled lock releases in
            # the past, so its record can usually be pooled for reuse
            # (recycle_event re-checks and no-ops when it cannot).
            runtime.recycle_event(event)


@dataclass
class RampProfile:
    """A time-varying target client count.

    The §6.2 experiment varies clients per machine 1→16 following a
    normal-shaped curve peaking mid-experiment; :meth:`normal_peak`
    builds exactly that shape.
    """

    points: List[Tuple[float, int]]

    @classmethod
    def normal_peak(
        cls,
        duration_ms: float,
        machines: int = 8,
        min_per_machine: int = 1,
        max_per_machine: int = 16,
        steps: int = 48,
    ) -> "RampProfile":
        """Clients per machine follow a Gaussian bump over the run."""
        points: List[Tuple[float, int]] = []
        mid = duration_ms / 2.0
        sigma = duration_ms / 6.0
        for step in range(steps + 1):
            t = duration_ms * step / steps
            bump = math.exp(-((t - mid) ** 2) / (2 * sigma**2))
            per_machine = min_per_machine + (max_per_machine - min_per_machine) * bump
            points.append((t, int(round(per_machine * machines))))
        return cls(points)

    @classmethod
    def diurnal(
        cls,
        duration_ms: float,
        machines: int = 8,
        min_per_machine: int = 1,
        max_per_machine: int = 16,
        cycles: int = 2,
        steps: int = 48,
    ) -> "RampProfile":
        """Clients follow a day/night wave: ``cycles`` raised-cosine peaks.

        Each cycle starts and ends at the night floor
        (``min_per_machine``) and peaks mid-cycle at ``max_per_machine``
        — the classic diurnal traffic shape elastic fleets are sized
        against.  Drives the ``diurnal`` scenario (docs/SCENARIOS.md).
        """
        if cycles < 1:
            raise ValueError(f"need at least one diurnal cycle, got {cycles}")
        points: List[Tuple[float, int]] = []
        for step in range(steps + 1):
            t = duration_ms * step / steps
            phase = (t / duration_ms) * cycles * 2.0 * math.pi
            bump = 0.5 * (1.0 - math.cos(phase))
            per_machine = min_per_machine + (max_per_machine - min_per_machine) * bump
            points.append((t, int(round(per_machine * machines))))
        return cls(points)

    def target_at(self, now_ms: float) -> int:
        """Target total client count at ``now_ms`` (step-hold)."""
        current = self.points[0][1] if self.points else 0
        for t, n in self.points:
            if t <= now_ms:
                current = n
            else:
                break
        return current

    def peak(self) -> int:
        """Maximum target over the profile."""
        return max(n for _t, n in self.points) if self.points else 0


class DynamicClients:
    """A client population tracking a :class:`RampProfile`.

    A controller process re-evaluates the target every ``tick_ms`` and
    starts/retires client loops to match; each client is a closed loop
    identical to :class:`ClosedLoopClients`.
    """

    def __init__(
        self,
        runtime: RuntimeBase,
        sampler: OpSampler,
        profile: RampProfile,
        think_ms: float = 50.0,
        tick_ms: float = 500.0,
        rng: Optional[RngRegistry] = None,
        stop_at_ms: Optional[float] = None,
    ) -> None:
        self.runtime = runtime
        self.sampler = sampler
        self.profile = profile
        self.think_ms = think_ms
        self.tick_ms = tick_ms
        self.rng = rng or RngRegistry(0)
        self.stop_at_ms = stop_at_ms
        self.active = 0
        self._spawned = 0
        self._retired: List[int] = []
        self.active_series: List[Tuple[float, int]] = []

    def start(self) -> None:
        """Launch the controller process."""
        self.runtime.sim.process(self._controller(), name="client-controller")

    def _controller(self) -> Generator:
        sim = self.runtime.sim
        while self.stop_at_ms is None or sim.now < self.stop_at_ms:
            target = self.profile.target_at(sim.now)
            while self.active < target:
                self._spawned += 1
                self.active += 1
                sim.process(
                    self._client_loop(self._spawned), name=f"dyn-client-{self._spawned}"
                )
            while self.active > target and self._spawned not in self._retired:
                # Retire the most recent client: its loop checks the
                # retirement list at each iteration boundary.
                self._retired.append(self._spawned)
                self._spawned -= 1
                self.active -= 1
            self.active_series.append((sim.now, self.active))
            yield float(self.tick_ms)

    def _client_loop(self, client_id: int) -> Generator:
        sim = self.runtime.sim
        handle = self.runtime.register_client(f"dyn-client-{client_id}")
        stream = self.rng.stream(f"dyn-client-{client_id}")
        while self.stop_at_ms is None or sim.now < self.stop_at_ms:
            if client_id in self._retired:
                self._retired.remove(client_id)
                return
            spec, tag = self.sampler(stream)
            done = handle.submit(spec, tag=tag)
            event = yield done
            if self.think_ms > 0:
                yield stream.expovariate(1.0 / self.think_ms)
            self.runtime.recycle_event(event)
