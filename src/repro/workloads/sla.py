"""SLA accounting (§6.2 / Table 1) and availability SLOs (fig11).

:func:`sla_report` is the paper's Table 1 row (per-request latency
violations).  :func:`availability_slo` is the churn experiment's
window-level view: a run is sliced into fixed windows, each window
*meets* the SLO when its goodput stays above a fraction of the
fault-free baseline **and** its p99 stays below a multiple of the
baseline p99 — availability is the fraction of windows that meet both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..sim.metrics import LatencyRecorder, mean

__all__ = ["SlaReport", "sla_report", "AvailabilityReport", "availability_slo"]


@dataclass(frozen=True)
class SlaReport:
    """Table 1's row: violation percentage and resource usage."""

    setup: str
    sla_ms: float
    total_requests: int
    violations: int
    avg_servers: float

    @property
    def violation_pct(self) -> float:
        """Percentage of requests exceeding the SLA."""
        if self.total_requests == 0:
            return 0.0
        return 100.0 * self.violations / self.total_requests


def sla_report(
    setup: str,
    recorder: LatencyRecorder,
    sla_ms: float,
    avg_servers: float,
    since_ms: float = 0.0,
) -> SlaReport:
    """Build one Table 1 row from a latency recorder."""
    latencies = recorder.latencies(since_ms=since_ms)
    violations = sum(1 for value in latencies if value > sla_ms)
    return SlaReport(
        setup=setup,
        sla_ms=sla_ms,
        total_requests=len(latencies),
        violations=violations,
        avg_servers=avg_servers,
    )


@dataclass(frozen=True)
class AvailabilityReport:
    """Window-level availability under faults (one fig11 table row)."""

    windows: int
    windows_meeting: int
    goodput_target_per_s: float
    p99_target_ms: float
    baseline_goodput_per_s: float
    baseline_p99_ms: float
    #: Acked writes rolled back by crash/recovery (honest failure runs
    #: only; ``None`` keeps legacy figure payloads byte-identical).
    lost_work: Optional[int] = None

    @property
    def availability_pct(self) -> float:
        """Percentage of windows meeting both goodput and p99 targets."""
        if self.windows == 0:
            return 0.0
        return 100.0 * self.windows_meeting / self.windows

    def as_dict(self) -> dict:
        """Plain-dict form for figure-data JSON."""
        payload = {
            "windows": self.windows,
            "windows_meeting": self.windows_meeting,
            "availability_pct": self.availability_pct,
            "goodput_target_per_s": self.goodput_target_per_s,
            "p99_target_ms": self.p99_target_ms,
            "baseline_goodput_per_s": self.baseline_goodput_per_s,
            "baseline_p99_ms": self.baseline_p99_ms,
        }
        if self.lost_work is not None:
            payload["lost_work"] = self.lost_work
        return payload


def availability_slo(
    goodput_points: List[Tuple[float, float]],
    p99_points: List[Tuple[float, float]],
    baseline_from_ms: float,
    baseline_to_ms: float,
    eval_from_ms: float,
    eval_to_ms: float,
    goodput_fraction: float = 0.5,
    p99_multiplier: float = 5.0,
    p99_floor_ms: float = 25.0,
    lost_work: Optional[int] = None,
) -> AvailabilityReport:
    """Score windowed goodput/p99 series against an availability SLO.

    ``goodput_points``/``p99_points`` are aligned ``(window_mid_ms,
    value)`` series (one point per window, e.g. from
    ``LatencyRecorder.windowed_count``/``windowed_percentile`` with
    failures excluded).  The fault-free **baseline** is measured over
    ``[baseline_from_ms, baseline_to_ms)``; windows inside
    ``[eval_from_ms, eval_to_ms)`` then meet the SLO when

    * goodput ≥ ``goodput_fraction`` × baseline mean goodput, and
    * p99 ≤ max(``p99_multiplier`` × baseline p99, ``p99_floor_ms``)
      (the floor keeps a near-zero baseline p99 from making the target
      unmeetably strict).

    ``lost_work`` — acked writes rolled back at crash/recovery time
    (``runtime.writes_rolled_back`` under honest failure semantics) —
    rides along in the report when provided: availability alone hides
    durability loss, since a run that drops updates can still meet
    every latency window.
    """
    base_goodput = mean(
        [v for t, v in goodput_points if baseline_from_ms <= t < baseline_to_ms]
    )
    base_p99 = mean(
        [v for t, v in p99_points if baseline_from_ms <= t < baseline_to_ms]
    )
    goodput_target = goodput_fraction * base_goodput
    p99_target = max(p99_multiplier * base_p99, p99_floor_ms)
    p99_by_time = dict(p99_points)
    windows = 0
    meeting = 0
    for t, goodput in goodput_points:
        if not eval_from_ms <= t < eval_to_ms:
            continue
        windows += 1
        if goodput >= goodput_target and p99_by_time.get(t, 0.0) <= p99_target:
            meeting += 1
    return AvailabilityReport(
        windows=windows,
        windows_meeting=meeting,
        goodput_target_per_s=goodput_target,
        p99_target_ms=p99_target,
        baseline_goodput_per_s=base_goodput,
        baseline_p99_ms=base_p99,
        lost_work=lost_work,
    )
