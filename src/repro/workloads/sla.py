"""SLA accounting (§6.2 and Table 1)."""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.metrics import LatencyRecorder

__all__ = ["SlaReport", "sla_report"]


@dataclass(frozen=True)
class SlaReport:
    """Table 1's row: violation percentage and resource usage."""

    setup: str
    sla_ms: float
    total_requests: int
    violations: int
    avg_servers: float

    @property
    def violation_pct(self) -> float:
        """Percentage of requests exceeding the SLA."""
        if self.total_requests == 0:
            return 0.0
        return 100.0 * self.violations / self.total_requests


def sla_report(
    setup: str,
    recorder: LatencyRecorder,
    sla_ms: float,
    avg_servers: float,
    since_ms: float = 0.0,
) -> SlaReport:
    """Build one Table 1 row from a latency recorder."""
    latencies = recorder.latencies(since_ms=since_ms)
    violations = sum(1 for value in latencies if value > sla_ms)
    return SlaReport(
        setup=setup,
        sla_ms=sla_ms,
        total_requests=len(latencies),
        violations=violations,
        avg_servers=avg_servers,
    )
