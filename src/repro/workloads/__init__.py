"""Workload generators and SLA accounting."""

from .generators import ClosedLoopClients, DynamicClients, OpSampler, RampProfile
from .sla import AvailabilityReport, SlaReport, availability_slo, sla_report

__all__ = [
    "AvailabilityReport",
    "ClosedLoopClients",
    "DynamicClients",
    "OpSampler",
    "RampProfile",
    "SlaReport",
    "availability_slo",
    "sla_report",
]
