"""Workload generators and SLA accounting."""

from .generators import ClosedLoopClients, DynamicClients, OpSampler, RampProfile
from .sla import SlaReport, sla_report

__all__ = [
    "ClosedLoopClients",
    "DynamicClients",
    "OpSampler",
    "RampProfile",
    "SlaReport",
    "sla_report",
]
