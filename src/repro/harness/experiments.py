"""Drivers regenerating every table and figure of the paper's §6.

Each ``figNx``/``tableN`` function enumerates its experiment grid as
independent :class:`~repro.harness.runner.Cell`\\ s, executes them via
:func:`~repro.harness.runner.run_cells` (serially, or across worker
processes with ``jobs > 1`` — figure data is byte-identical either
way), and assembles plain data (dicts/lists) that
:func:`render` turns into a text table.  ``scale`` selects sizing:

* ``"quick"`` — benchmark-friendly (seconds per system);
* ``"full"``  — the docs/EXPERIMENTS.md numbers (minutes per figure).

Run everything from the command line::

    python -m repro.harness.experiments --figure fig5a --scale quick
    python -m repro.harness.experiments --all --scale quick --jobs 4
    python -m repro.harness.experiments --all --scale full

Per-figure reference (knobs, expected wall-clock, how to read each
table): docs/EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..apps.game import GameConfig, Room, build_game
from ..apps.tpcc import TpccConfig, TpccWorkload, build_tpcc
from ..core.costs import CostModel, DEFAULT_COSTS
from ..core.runtime import FAILED_TAG
from ..elasticity import CloudStorage, EManager, MigrationCoordinator, SLAPolicy
from ..faults import (
    FailureDetector,
    FaultInjector,
    FaultSchedule,
    ServerCrash,
    random_churn,
)
from ..sim.cluster import INSTANCE_TYPES, M1_SMALL, M3_LARGE, Server
from ..sim.metrics import mean
from ..workloads.generators import ClosedLoopClients, DynamicClients, RampProfile
from ..workloads.sla import availability_slo, sla_report
from .report import format_series, format_table
from .runner import Cell, SYSTEMS, make_testbed, measure, run_cells, run_game

#: Dotted-path prefix for this module's cell bodies (see Cell.fn).
_EXP = "repro.harness.experiments"

__all__ = [
    "fig5a",
    "fig5b",
    "fig6a",
    "fig6b",
    "fig7",
    "table1",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "ablation_chain_release",
    "ALL_EXPERIMENTS",
    "main",
]


@dataclass
class Scale:
    """Experiment sizing knobs."""

    game_duration_ms: float
    game_warmup_ms: float
    game_clients_per_server: int
    tpcc_duration_ms: float
    tpcc_warmup_ms: float
    tpcc_clients_per_server: int
    server_counts: Tuple[int, ...]
    client_sweep: Tuple[int, ...]
    elastic_duration_ms: float
    migration_duration_ms: float
    emanager_batch: int
    fault_duration_ms: float = 16000.0
    fault_clients: int = 48
    fault_checkpoint_ms: float = 1500.0
    # fig11 (long-horizon churn availability) sizing.
    churn_duration_ms: float = 30000.0
    churn_clients: int = 40
    churn_mtbf_ms: float = 3000.0
    churn_start_ms: float = 5000.0
    churn_checkpoint_ms: float = 1500.0
    churn_restart_ms: Tuple[float, float] = (1500.0, 4000.0)


SCALES: Dict[str, Scale] = {
    "quick": Scale(
        game_duration_ms=1200.0,
        game_warmup_ms=400.0,
        game_clients_per_server=60,
        tpcc_duration_ms=8000.0,
        tpcc_warmup_ms=2500.0,
        tpcc_clients_per_server=12,
        server_counts=(2, 4, 8),
        client_sweep=(8, 32, 96, 192),
        elastic_duration_ms=40000.0,
        migration_duration_ms=12000.0,
        emanager_batch=40,
        fault_duration_ms=16000.0,
        fault_clients=48,
        fault_checkpoint_ms=1500.0,
        churn_duration_ms=30000.0,
        churn_clients=40,
        churn_mtbf_ms=3000.0,
        churn_start_ms=5000.0,
        churn_checkpoint_ms=1500.0,
        churn_restart_ms=(1500.0, 4000.0),
    ),
    "full": Scale(
        game_duration_ms=2500.0,
        game_warmup_ms=700.0,
        game_clients_per_server=110,
        tpcc_duration_ms=15000.0,
        tpcc_warmup_ms=4000.0,
        tpcc_clients_per_server=16,
        server_counts=(2, 4, 8, 12, 16),
        client_sweep=(8, 24, 64, 128, 256, 512),
        elastic_duration_ms=60000.0,
        migration_duration_ms=20000.0,
        emanager_batch=120,
        fault_duration_ms=40000.0,
        fault_clients=120,
        fault_checkpoint_ms=2000.0,
        churn_duration_ms=120000.0,
        churn_clients=96,
        churn_mtbf_ms=12000.0,
        churn_start_ms=10000.0,
        churn_checkpoint_ms=2000.0,
        churn_restart_ms=(2000.0, 8000.0),
    ),
}


def _tpcc_run(
    system: str,
    n_servers: int,
    n_clients: int,
    duration_ms: float,
    warmup_ms: float,
    seed: int = 0,
    think_ms: float = 5.0,
):
    testbed = make_testbed(system, n_servers, seed=seed)
    config = TpccConfig(districts=n_servers, customers_per_district=10)
    deployment = build_tpcc(
        testbed.runtime,
        config,
        multi_ownership=(system == "aeon"),
        servers=testbed.servers,
        colocate=system in ("aeon", "aeon_so", "eventwave"),
    )
    workload = TpccWorkload(deployment, system)
    clients = ClosedLoopClients(
        testbed.runtime,
        workload.sample_op,
        n_clients=n_clients,
        think_ms=think_ms,
        rng=testbed.rng,
        stop_at_ms=duration_ms,
    )
    clients.start()
    testbed.sim.run(until=duration_ms + 15000.0)
    result = measure(system, testbed, n_clients, warmup_ms, duration_ms)
    result.errors = len(clients.errors)
    return result, testbed, deployment


# ----------------------------------------------------------------------
# Fig. 5a — game scale-out
# ----------------------------------------------------------------------
def _fig5a_cell(system: str, n_servers: int, scale: str, seed: int) -> float:
    """One fig5a grid point: game throughput at ``n_servers``."""
    sizing = SCALES[scale]
    result, _tb, _app = run_game(
        system,
        n_servers,
        n_clients=sizing.game_clients_per_server * n_servers,
        duration_ms=sizing.game_duration_ms,
        warmup_ms=sizing.game_warmup_ms,
        think_ms=2.0,
        seed=seed,
    )
    return result.throughput_per_s


def fig5a(
    scale: str = "quick", seed: int = 0, jobs: int = 1
) -> Dict[str, List[Tuple[int, float]]]:
    """Game throughput vs number of servers, all five systems.

    Args: ``scale`` sizing preset, ``seed`` RNG seed, ``jobs`` worker
    processes (1 = serial, 0 = one per core).  Returns
    ``{system: [(n_servers, events_per_s), ...]}``.  Reference:
    docs/EXPERIMENTS.md § fig5a.
    """
    sizing = SCALES[scale]
    cells = [
        Cell(
            (system, n_servers),
            f"{_EXP}:_fig5a_cell",
            dict(system=system, n_servers=n_servers, scale=scale, seed=seed),
        )
        for system in SYSTEMS
        for n_servers in sizing.server_counts
    ]
    curves: Dict[str, List[Tuple[int, float]]] = {system: [] for system in SYSTEMS}
    for cell, result in zip(cells, run_cells(cells, jobs)):
        curves[cell.key[0]].append((cell.key[1], result.value))
    return curves


# ----------------------------------------------------------------------
# Fig. 5b — game latency vs throughput at 8 servers
# ----------------------------------------------------------------------
def _fig5b_cell(
    system: str, n_clients: int, scale: str, seed: int
) -> Tuple[float, float]:
    """One fig5b sweep point: (throughput, mean latency) at ``n_clients``."""
    sizing = SCALES[scale]
    result, _tb, _app = run_game(
        system,
        8,
        n_clients=n_clients,
        duration_ms=sizing.game_duration_ms,
        warmup_ms=sizing.game_warmup_ms,
        think_ms=2.0,
        seed=seed,
    )
    return (result.throughput_per_s, result.mean_latency_ms)


def fig5b(
    scale: str = "quick", seed: int = 0, jobs: int = 1
) -> Dict[str, List[Tuple[float, float]]]:
    """Game (throughput, mean latency) pairs over a client sweep.

    Args/parallelism as :func:`fig5a`.  Returns ``{system:
    [(events_per_s, mean_latency_ms), ...]}`` in sweep order.
    Reference: docs/EXPERIMENTS.md § fig5b.
    """
    sizing = SCALES[scale]
    cells = [
        Cell(
            (system, n_clients),
            f"{_EXP}:_fig5b_cell",
            dict(system=system, n_clients=n_clients, scale=scale, seed=seed),
        )
        for system in SYSTEMS
        for n_clients in sizing.client_sweep
    ]
    curves: Dict[str, List[Tuple[float, float]]] = {system: [] for system in SYSTEMS}
    for cell, result in zip(cells, run_cells(cells, jobs)):
        curves[cell.key[0]].append(result.value)
    return curves


# ----------------------------------------------------------------------
# Fig. 6a — TPC-C scale-out
# ----------------------------------------------------------------------
def _fig6a_cell(system: str, n_servers: int, scale: str, seed: int) -> float:
    """One fig6a grid point: TPC-C throughput at ``n_servers``."""
    sizing = SCALES[scale]
    result, _tb, _dep = _tpcc_run(
        system,
        n_servers,
        n_clients=sizing.tpcc_clients_per_server * n_servers,
        duration_ms=sizing.tpcc_duration_ms,
        warmup_ms=sizing.tpcc_warmup_ms,
        seed=seed,
    )
    return result.throughput_per_s


def fig6a(
    scale: str = "quick", seed: int = 0, jobs: int = 1
) -> Dict[str, List[Tuple[int, float]]]:
    """TPC-C throughput vs number of servers (one district each).

    Args/parallelism as :func:`fig5a`.  Returns ``{system:
    [(n_servers, txns_per_s), ...]}``.  Reference: docs/EXPERIMENTS.md
    § fig6a.
    """
    sizing = SCALES[scale]
    cells = [
        Cell(
            (system, n_servers),
            f"{_EXP}:_fig6a_cell",
            dict(system=system, n_servers=n_servers, scale=scale, seed=seed),
        )
        for system in SYSTEMS
        for n_servers in sizing.server_counts
    ]
    curves: Dict[str, List[Tuple[int, float]]] = {system: [] for system in SYSTEMS}
    for cell, result in zip(cells, run_cells(cells, jobs)):
        curves[cell.key[0]].append((cell.key[1], result.value))
    return curves


# ----------------------------------------------------------------------
# Fig. 6b — TPC-C latency vs throughput at 8 servers
# ----------------------------------------------------------------------
def _fig6b_cell(
    system: str, n_clients: int, scale: str, seed: int
) -> Tuple[float, float]:
    """One fig6b sweep point: (throughput, mean latency) at ``n_clients``."""
    sizing = SCALES[scale]
    result, _tb, _dep = _tpcc_run(
        system,
        8,
        n_clients=n_clients,
        duration_ms=sizing.tpcc_duration_ms,
        warmup_ms=sizing.tpcc_warmup_ms,
        seed=seed,
    )
    return (result.throughput_per_s, result.mean_latency_ms)


def fig6b(
    scale: str = "quick", seed: int = 0, jobs: int = 1
) -> Dict[str, List[Tuple[float, float]]]:
    """TPC-C (throughput, mean latency) pairs over a client sweep.

    Args/parallelism as :func:`fig5a`.  Returns ``{system:
    [(txns_per_s, mean_latency_ms), ...]}`` in sweep order.  Reference:
    docs/EXPERIMENTS.md § fig6b.
    """
    sizing = SCALES[scale]
    cells = [
        Cell(
            (system, n_clients),
            f"{_EXP}:_fig6b_cell",
            dict(system=system, n_clients=n_clients, scale=scale, seed=seed),
        )
        for system in SYSTEMS
        for n_clients in sizing.client_sweep
    ]
    curves: Dict[str, List[Tuple[float, float]]] = {system: [] for system in SYSTEMS}
    for cell, result in zip(cells, run_cells(cells, jobs)):
        curves[cell.key[0]].append(result.value)
    return curves


# ----------------------------------------------------------------------
# Fig. 7 + Table 1 — elasticity under an SLA
# ----------------------------------------------------------------------
def _elastic_game_run(
    setup: str,
    scale: str,
    seed: int = 0,
    sla_ms: float = 10.0,
) -> Dict[str, object]:
    """One §6.2 run: ``setup`` is 'elastic' or a fixed server count."""
    sizing = SCALES[scale]
    duration = sizing.elastic_duration_ms
    elastic = setup == "elastic"
    start_servers = 8 if elastic else int(setup)
    testbed = make_testbed("aeon", start_servers, instance_type=M1_SMALL, seed=seed)
    testbed.cluster.boot_delay_ms = 1500.0
    # 32 rooms so the fleet can usefully grow beyond 16 servers.
    config = GameConfig(rooms=32, players_per_room=4, shared_items_per_room=2)
    app = build_game(testbed.runtime, config, "aeon", servers=testbed.servers)
    manager = None
    if elastic:
        storage = CloudStorage(testbed.sim)
        policy = SLAPolicy(sla_ms=sla_ms, scale_out_step=4, min_servers=4,
                           max_servers=40, scale_in_fraction=0.25,
                           headroom=0.45)
        manager = EManager(
            testbed.runtime, storage, policy, M1_SMALL,
            report_interval_ms=1000.0, max_concurrent_migrations=8,
        )
        manager.start()
    profile = RampProfile.normal_peak(
        duration, machines=8, min_per_machine=1, max_per_machine=16
    )
    clients = DynamicClients(
        testbed.runtime,
        app.sample_op,
        profile,
        think_ms=12.0,
        rng=testbed.rng,
        stop_at_ms=duration,
    )
    clients.start()
    testbed.sim.run(until=duration + 5000.0)
    if manager is not None:
        manager.stop()
    # Latency time series (1 s buckets) and server-count series.
    latency_series = testbed.runtime.latency.windowed_mean(1000.0, duration)
    if manager is not None:
        server_series = manager.server_count_series
        avg_servers = server_series.mean_value()
    else:
        count = len(testbed.cluster.alive_servers())
        server_series = None
        avg_servers = float(count)
    report = sla_report(
        setup, testbed.runtime.latency, sla_ms, avg_servers, since_ms=0.0
    )
    return {
        "setup": setup,
        "latency_series": latency_series.points,
        "server_series": server_series.points if server_series else None,
        "client_series": clients.active_series,
        "sla": report,
    }


def _elastic_cells(setups: Tuple[str, ...], scale: str, seed: int) -> List[Cell]:
    """One :func:`_elastic_game_run` cell per setup."""
    return [
        Cell(
            (setup,),
            f"{_EXP}:_elastic_game_run",
            dict(setup=setup, scale=scale, seed=seed),
        )
        for setup in setups
    ]


def fig7(
    scale: str = "quick", seed: int = 0, jobs: int = 1
) -> Dict[str, Dict[str, object]]:
    """Latency and server-count time series: elastic vs static setups.

    Args/parallelism as :func:`fig5a` (one cell per setup).  Returns
    ``{setup: run}`` with latency/server/client series and the SLA
    report.  Reference: docs/EXPERIMENTS.md § fig7.
    """
    cells = _elastic_cells(("elastic", "8", "16", "32"), scale, seed)
    return {
        cell.key[0]: result.value
        for cell, result in zip(cells, run_cells(cells, jobs))
    }


def table1(
    scale: str = "quick", seed: int = 0, jobs: int = 1
) -> List[Dict[str, object]]:
    """SLA violation percentage and average servers per setup.

    Args/parallelism as :func:`fig5a` (one cell per setup).  Returns a
    row dict per setup.  Reference: docs/EXPERIMENTS.md § table1.
    """
    cells = _elastic_cells(("8", "16", "22", "32", "elastic"), scale, seed)
    rows = []
    for cell, result in zip(cells, run_cells(cells, jobs)):
        setup = cell.key[0]
        report = result.value["sla"]
        rows.append(
            {
                "setup": f"{setup}-server" if setup != "elastic" else "Elastic",
                "violation_pct": report.violation_pct,
                "avg_servers": report.avg_servers,
                "requests": report.total_requests,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Fig. 8 — migration impact on throughput
# ----------------------------------------------------------------------
def _fig8_cell(
    n_migrations: int, scale: str, seed: int
) -> List[Tuple[float, float]]:
    """One fig8 run: throughput series while migrating ``n_migrations`` Rooms."""
    sizing = SCALES[scale]
    duration = sizing.migration_duration_ms
    testbed = make_testbed("aeon", 20, instance_type=M1_SMALL, seed=seed)
    config = GameConfig(rooms=20, players_per_room=4, shared_items_per_room=2)
    app = build_game(testbed.runtime, config, "aeon", servers=testbed.servers)
    storage = CloudStorage(testbed.sim)
    host = Server(testbed.sim, "~emanager", M3_LARGE)
    testbed.network.register(host.name, host.mailbox, M3_LARGE)
    coordinator = MigrationCoordinator(testbed.runtime, storage, host)
    clients = ClosedLoopClients(
        testbed.runtime,
        app.sample_op,
        n_clients=120,
        think_ms=10.0,
        rng=testbed.rng,
        stop_at_ms=duration,
    )
    clients.start()

    def migrate_rooms(n=n_migrations, tb=testbed, coord=coordinator):
        yield tb.sim.timeout(duration * 0.4)
        handles = []
        for i in range(n):
            src_room = f"room-{i}"
            dst = tb.servers[(i + 1) % len(tb.servers)]
            if tb.runtime.placement[src_room] == dst.name:
                dst = tb.servers[(i + 2) % len(tb.servers)]
            handles.append(coord.migrate(src_room, dst))
        for handle in handles:
            yield handle

    testbed.sim.process(migrate_rooms())
    testbed.sim.run(until=duration + 5000.0)
    window = testbed.runtime.throughput.windowed_rate(250.0, duration)
    return window.points


def fig8(
    scale: str = "quick", seed: int = 0, jobs: int = 1
) -> Dict[str, List[Tuple[float, float]]]:
    """Throughput time series while migrating 1/8/12 of 20 Rooms.

    Args/parallelism as :func:`fig5a` (one cell per migration count).
    Returns ``{"N contexts": [(t_ms, events_per_s), ...]}``.
    Reference: docs/EXPERIMENTS.md § fig8.
    """
    cells = [
        Cell(
            (n_migrations,),
            f"{_EXP}:_fig8_cell",
            dict(n_migrations=n_migrations, scale=scale, seed=seed),
        )
        for n_migrations in (1, 8, 12)
    ]
    return {
        f"{cell.key[0]} contexts": result.value
        for cell, result in zip(cells, run_cells(cells, jobs))
    }


# ----------------------------------------------------------------------
# Fig. 9 — eManager migration throughput by instance type
# ----------------------------------------------------------------------
def _fig9_cell(itype_name: str, size_bytes: int, scale: str, seed: int) -> float:
    """One fig9 grid point: eManager migration throughput (contexts/s)."""
    sizing = SCALES[scale]
    batch = sizing.emanager_batch
    itype = INSTANCE_TYPES[itype_name]
    testbed = make_testbed("aeon", 2, instance_type=itype, seed=seed)

    class Payload(Room):
        pass

    Payload.size_bytes = size_bytes
    refs = []
    for i in range(batch):
        refs.append(
            testbed.runtime.create_context(
                Payload, server=testbed.servers[0],
                name=f"payload-{i}", args=(i,),
            )
        )
    storage = CloudStorage(testbed.sim)
    host = Server(testbed.sim, "~emanager", itype)
    testbed.network.register(host.name, host.mailbox, itype)
    coordinator = MigrationCoordinator(testbed.runtime, storage, host)

    def pump():
        window = 4  # concurrent migrations in flight
        pending = []
        for ref in refs:
            pending.append(coordinator.migrate(ref.cid, testbed.servers[1]))
            if len(pending) >= window:
                yield pending.pop(0)
        for handle in pending:
            yield handle

    start = testbed.sim.now
    testbed.sim.run_process(pump())
    elapsed_s = (testbed.sim.now - start) / 1000.0
    return batch / elapsed_s if elapsed_s > 0 else 0.0


def fig9(
    scale: str = "quick", seed: int = 0, jobs: int = 1
) -> Dict[str, Dict[str, float]]:
    """Max contexts/s the eManager migrates, per instance type and size.

    Args/parallelism as :func:`fig5a` (one cell per instance × payload
    size).  Returns ``{instance_type: {"1KB"|"1MB": contexts_per_s}}``.
    Reference: docs/EXPERIMENTS.md § fig9.
    """
    cells = [
        Cell(
            (itype_name, label),
            f"{_EXP}:_fig9_cell",
            dict(itype_name=itype_name, size_bytes=size_bytes, scale=scale, seed=seed),
        )
        for itype_name in ("m1.large", "m1.medium", "m1.small")
        for label, size_bytes in (("1KB", 1024), ("1MB", 1_000_000))
    ]
    results: Dict[str, Dict[str, float]] = {}
    for cell, result in zip(cells, run_cells(cells, jobs)):
        results.setdefault(cell.key[0], {})[cell.key[1]] = result.value
    return results


# ----------------------------------------------------------------------
# Fig. 10 — availability through a crash/recovery timeline (beyond the
# paper: the §5.3 machinery exercised as a recovery mechanism)
# ----------------------------------------------------------------------
FIG10_SYSTEMS = ("aeon", "eventwave", "orleans")

#: Crash the victim at this fraction of the run, restart it this much later.
FIG10_CRASH_FRAC = 0.35
FIG10_RESTART_FRAC = 0.30
FIG10_WINDOW_MS = 500.0


def fig10_run(system: str, scale: str = "quick", seed: int = 0) -> Dict[str, object]:
    """One availability run: game + checkpoints + a mid-run server crash.

    A 6-server game deployment serves closed-loop clients while the
    eManager checkpoints every Room subtree to cloud storage on a fixed
    cadence and a heartbeat/lease failure detector watches the fleet.
    At 35% of the run one server fail-stops (losing its contexts'
    volatile state); the detector declares it dead, the eManager
    re-places the lost contexts from their last checkpoints on the
    survivors, and the server itself restarts — empty — later.  Clients
    retry delivery failures (surfaced as retryable errors) twice.

    Returns goodput and p99 time series (failed events excluded), the
    crash/recovery timeline and the lost-work accounting.
    """
    sizing = SCALES[scale]
    duration = sizing.fault_duration_ms
    n_servers = 6
    testbed = make_testbed(system, n_servers, seed=seed)
    runtime = testbed.runtime
    config = GameConfig(rooms=n_servers, players_per_room=4, shared_items_per_room=2)
    app = build_game(runtime, config, system, servers=testbed.servers)

    storage = CloudStorage(testbed.sim)
    manager = EManager(runtime, storage, None, M3_LARGE, max_concurrent_migrations=8)
    detector = FailureDetector(
        testbed.sim,
        testbed.network,
        testbed.cluster,
        heartbeat_interval_ms=200.0,
        lease_ms=650.0,
        check_interval_ms=100.0,
    )
    manager.enable_fault_tolerance(
        detector,
        checkpoint_interval_ms=sizing.fault_checkpoint_ms,
        roots=[room.cid for room in app.rooms],
        # Orleans has no global lock order: a subtree-locking snapshot
        # deadlocks against its per-call turn locks, so it gets the
        # per-grain (fuzzy) persistence real Orleans offers.
        consistent_checkpoints=(system != "orleans"),
    )
    detector.start()

    victim = testbed.servers[1].name  # hosts room-1's co-located subtree
    crash_at = duration * FIG10_CRASH_FRAC
    restart_after = duration * FIG10_RESTART_FRAC
    schedule = FaultSchedule(
        [ServerCrash(crash_at, victim, restart_after_ms=restart_after)]
    )
    injector = FaultInjector(
        testbed.sim, testbed.network, testbed.cluster, schedule, rng=testbed.rng
    )
    injector.start()

    clients = ClosedLoopClients(
        runtime,
        app.sample_op,
        n_clients=sizing.fault_clients,
        think_ms=8.0,
        rng=testbed.rng,
        stop_at_ms=duration,
        max_retries=2,
    )
    clients.start()
    testbed.sim.run(until=duration + 3000.0)
    detector.stop()
    manager.stop()

    goodput = runtime.latency.windowed_count(
        FIG10_WINDOW_MS, duration, exclude_tag=FAILED_TAG
    )
    p99 = runtime.latency.windowed_percentile(
        99.0, FIG10_WINDOW_MS, duration, exclude_tag=FAILED_TAG
    )
    return {
        "system": system,
        "duration_ms": duration,
        "crash_at_ms": crash_at,
        "restart_at_ms": crash_at + restart_after,
        "victim": victim,
        "goodput": goodput.points,
        "p99": p99.points,
        "events_failed": runtime.events_failed,
        "client_errors": len(clients.errors),
        "client_retries": clients.retries,
        "detections": [
            {
                "server": d.server,
                "detected_at_ms": d.detected_at_ms,
                "latency_ms": d.latency_ms,
            }
            for d in detector.detections
        ],
        "recoveries": manager.recovery_log,
        "contexts_recovered": manager.contexts_recovered,
        "checkpoints_taken": manager.checkpoints_taken,
        "fault_log": injector.log,
    }


def fig10(
    scale: str = "quick", seed: int = 0, jobs: int = 1
) -> Dict[str, Dict[str, object]]:
    """Goodput/p99 through a crash/recovery timeline, AEON vs baselines.

    Args/parallelism as :func:`fig5a` (one :func:`fig10_run` cell per
    system).  Returns ``{system: run}``.  Reference: docs/EXPERIMENTS.md
    § fig10.
    """
    cells = [
        Cell(
            (system,),
            f"{_EXP}:fig10_run",
            dict(system=system, scale=scale, seed=seed),
        )
        for system in FIG10_SYSTEMS
    ]
    return {
        cell.key[0]: result.value
        for cell, result in zip(cells, run_cells(cells, jobs))
    }


# ----------------------------------------------------------------------
# Fig. 11 — long-horizon churn availability (beyond the paper: fig10's
# single crash replaced by sustained crash/restart churn, scored
# against a windowed availability SLO, with incremental checkpoints)
# ----------------------------------------------------------------------
FIG11_SYSTEMS = ("aeon", "eventwave", "orleans")
FIG11_WINDOW_MS = 500.0


def _fig11_room_weights(n_rooms: int) -> List[float]:
    """Geometric hot/cold room skew (room 0 hottest).

    Skewed write traffic is what incremental checkpoints exploit: cold
    rooms' subtrees go unchanged between intervals and are skipped.
    """
    return [0.5**i for i in range(n_rooms)]


def fig11_run(
    system: str,
    scale: str = "quick",
    seed: int = 0,
    checkpoint_mode: str = "delta",
) -> Dict[str, object]:
    """One long-horizon churn run: game + checkpoints + crash/restart churn.

    Like :func:`fig10_run` but the single mid-run crash becomes
    :func:`repro.faults.random_churn`: crash/restart cycles arrive for
    the whole horizon (one server down at a time), each detected by the
    heartbeat/lease detector and recovered by checkpoint re-placement,
    while the detector's declarations also push-invalidate client
    location caches.  Client traffic is skewed across rooms (see
    :func:`_fig11_room_weights`) and checkpoints default to the
    incremental base+delta mode.

    Returns goodput/p99 series, the availability SLO score (fraction of
    windows post-churn-start meeting goodput/p99 targets derived from
    the pre-churn baseline), detection/recovery/lost-work accounting and
    the checkpoint storage cost.
    """
    sizing = SCALES[scale]
    duration = sizing.churn_duration_ms
    churn_start = sizing.churn_start_ms
    n_servers = 6
    testbed = make_testbed(system, n_servers, seed=seed)
    runtime = testbed.runtime
    config = GameConfig(rooms=n_servers, players_per_room=4, shared_items_per_room=2)
    app = build_game(runtime, config, system, servers=testbed.servers)
    app.set_room_weights(_fig11_room_weights(n_servers))

    storage = CloudStorage(testbed.sim)
    manager = EManager(runtime, storage, None, M3_LARGE, max_concurrent_migrations=8)
    detector = FailureDetector(
        testbed.sim,
        testbed.network,
        testbed.cluster,
        heartbeat_interval_ms=200.0,
        lease_ms=650.0,
        check_interval_ms=100.0,
    )
    manager.enable_fault_tolerance(
        detector,
        checkpoint_interval_ms=sizing.churn_checkpoint_ms,
        roots=[room.cid for room in app.rooms],
        # Orleans gets per-grain (fuzzy) persistence — see fig10_run.
        consistent_checkpoints=(system != "orleans"),
        checkpoint_mode=checkpoint_mode,
    )
    detector.start()

    schedule = random_churn(
        [server.name for server in testbed.servers],
        duration,
        testbed.rng,
        mean_time_between_crashes_ms=sizing.churn_mtbf_ms,
        restart_delay_ms=sizing.churn_restart_ms,
        start_ms=churn_start,
    )
    injector = FaultInjector(
        testbed.sim, testbed.network, testbed.cluster, schedule, rng=testbed.rng
    )
    injector.start()

    clients = ClosedLoopClients(
        runtime,
        app.sample_op,
        n_clients=sizing.churn_clients,
        think_ms=8.0,
        rng=testbed.rng,
        stop_at_ms=duration,
        max_retries=2,
    )
    clients.start()
    testbed.sim.run(until=duration + 3000.0)
    detector.stop()
    manager.stop()

    goodput = runtime.latency.windowed_count(
        FIG11_WINDOW_MS, duration, exclude_tag=FAILED_TAG
    )
    p99 = runtime.latency.windowed_percentile(
        99.0, FIG11_WINDOW_MS, duration, exclude_tag=FAILED_TAG
    )
    slo = availability_slo(
        goodput.points,
        p99.points,
        baseline_from_ms=churn_start * 0.3,
        baseline_to_ms=churn_start,
        eval_from_ms=churn_start,
        eval_to_ms=duration,
        # A window is available at ≥85% of fault-free goodput with p99
        # within 3× of baseline (20 ms floor): strict enough that the
        # detection+recovery gap after each crash shows up, loose enough
        # that steady-state noise does not.
        goodput_fraction=0.85,
        p99_multiplier=3.0,
        p99_floor_ms=20.0,
    )
    detect_latencies = [
        d.latency_ms for d in detector.detections if d.latency_ms is not None
    ]
    return {
        "system": system,
        "checkpoint_mode": checkpoint_mode,
        "duration_ms": duration,
        "churn_start_ms": churn_start,
        "crashes": len(schedule),
        "goodput": goodput.points,
        "p99": p99.points,
        "slo": slo.as_dict(),
        "detections": len(detector.detections),
        "mean_detection_latency_ms": mean(detect_latencies),
        "redeclarations": detector.redeclarations,
        "recoveries": manager.recoveries,
        "contexts_recovered": manager.contexts_recovered,
        "contexts_restored_without_checkpoint": (
            manager.contexts_restored_without_checkpoint
        ),
        "cache_invalidations": manager.cache_invalidations,
        "events_failed": runtime.events_failed,
        "client_errors": len(clients.errors),
        "client_retries": clients.retries,
        "checkpoints_taken": manager.checkpoints_taken,
        "checkpoints_skipped": manager.checkpoints_skipped,
        "checkpoint_bytes_written": manager.checkpoint_bytes_written,
        "recovery_log": manager.recovery_log,
        "fault_log": injector.log,
    }


def fig11(scale: str = "quick", seed: int = 0, jobs: int = 1) -> Dict[str, object]:
    """Availability SLO table under sustained churn, AEON vs baselines.

    Every system runs with incremental (delta) checkpoints; AEON runs
    once more with full checkpoints so the table can report the
    checkpoint-bytes saving delta mode buys on the identical churn
    scenario.  Args/parallelism as :func:`fig5a` (one
    :func:`fig11_run` cell per system plus the aeon-full cell).
    Reference: docs/EXPERIMENTS.md § fig11.
    """
    cells = [
        Cell(
            (system, "delta"),
            f"{_EXP}:fig11_run",
            dict(system=system, scale=scale, seed=seed, checkpoint_mode="delta"),
        )
        for system in FIG11_SYSTEMS
    ]
    cells.append(
        Cell(
            ("aeon", "full"),
            f"{_EXP}:fig11_run",
            dict(system="aeon", scale=scale, seed=seed, checkpoint_mode="full"),
        )
    )
    results = run_cells(cells, jobs)
    systems = {
        cell.key[0]: result.value
        for cell, result in zip(cells[:-1], results[:-1])
    }
    return {
        "window_ms": FIG11_WINDOW_MS,
        "systems": systems,
        "aeon_full": results[-1].value,
    }


# ----------------------------------------------------------------------
# Ablation — chain release on/off (beyond the paper)
# ----------------------------------------------------------------------
def _ablation_cell(early_release: bool, scale: str, seed: int) -> float:
    """One ablation run: TPC-C throughput with the given release mode."""
    sizing = SCALES[scale]
    costs = DEFAULT_COSTS.with_(early_release=early_release)
    testbed = make_testbed("aeon_so", 4, seed=seed, costs=costs)
    config = TpccConfig(districts=4, customers_per_district=10)
    deployment = build_tpcc(
        testbed.runtime, config, False, servers=testbed.servers
    )
    workload = TpccWorkload(deployment, "aeon_so")
    clients = ClosedLoopClients(
        testbed.runtime, workload.sample_op,
        n_clients=sizing.tpcc_clients_per_server * 4,
        think_ms=5.0, rng=testbed.rng,
        stop_at_ms=sizing.tpcc_duration_ms,
    )
    clients.start()
    testbed.sim.run(until=sizing.tpcc_duration_ms + 15000.0)
    result = measure("aeon_so", testbed, clients.n_clients,
                     sizing.tpcc_warmup_ms, sizing.tpcc_duration_ms)
    return result.throughput_per_s


def ablation_chain_release(
    scale: str = "quick", seed: int = 0, jobs: int = 1
) -> Dict[str, float]:
    """TPC-C throughput with and without chain (early) release.

    Args/parallelism as :func:`fig5a` (one cell per release mode).
    Returns ``{"chain-release"|"hold-till-commit": txns_per_s}``.
    Reference: docs/EXPERIMENTS.md § ablation.
    """
    cells = [
        Cell(
            (label,),
            f"{_EXP}:_ablation_cell",
            dict(early_release=early, scale=scale, seed=seed),
        )
        for label, early in (("chain-release", True), ("hold-till-commit", False))
    ]
    return {
        cell.key[0]: result.value
        for cell, result in zip(cells, run_cells(cells, jobs))
    }


# ----------------------------------------------------------------------
# Rendering and CLI
# ----------------------------------------------------------------------
def _render_fig5a(data) -> str:
    systems = list(data)
    counts = [n for n, _ in data[systems[0]]]
    rows = []
    for i, n in enumerate(counts):
        rows.append([n] + [round(data[s][i][1]) for s in systems])
    return format_table("Fig 5a — game scale-out (events/s)", ["servers"] + systems, rows)


def _render_curve(title, data) -> str:
    lines = [title, ""]
    for system, points in data.items():
        lines.append(f"[{system}]")
        for x, y in points:
            lines.append(f"  {x:10.1f}  {y:10.2f}")
        lines.append("")
    return "\n".join(lines)


def _render_table1(rows) -> str:
    return format_table(
        "Table 1 — SLA performance and cost",
        ["setup", "% requests > SLA", "avg servers", "requests"],
        [
            [r["setup"], round(r["violation_pct"], 1), round(r["avg_servers"], 1), r["requests"]]
            for r in rows
        ],
    )


def fig10_phases(run: Dict[str, object]) -> Dict[str, float]:
    """Mean goodput of one fig10 run before / during / after the outage.

    ``pre`` skips the first 10% as warmup; ``outage`` spans the crash to
    the end of recovery (or the detector lease window when no recovery
    ran); ``post`` starts 1 s after recovery finished.
    """
    crash = float(run["crash_at_ms"])
    duration = float(run["duration_ms"])
    recovery_end = crash
    for entry in run["recoveries"]:
        finished = entry.get("finished_ms")
        if finished is not None and finished > recovery_end:
            recovery_end = finished
    if recovery_end <= crash:
        recovery_end = crash + 1500.0
    goodput = run["goodput"]
    pre = [v for t, v in goodput if duration * 0.1 <= t < crash]
    outage = [v for t, v in goodput if crash <= t < recovery_end]
    post = [v for t, v in goodput if recovery_end + 1000.0 <= t < duration]
    return {
        "pre": mean(pre),
        "outage": mean(outage),
        "post": mean(post),
        "recovery_end_ms": recovery_end,
    }


def _render_fig10(data) -> str:
    rows = []
    for system, run in data.items():
        phases = fig10_phases(run)
        detections = run["detections"]
        detect_ms = mean(
            [d["latency_ms"] for d in detections if d["latency_ms"] is not None]
        )
        rows.append(
            [
                system,
                round(phases["pre"], 1),
                round(phases["outage"], 1),
                round(phases["post"], 1),
                round(detect_ms, 1),
                run["contexts_recovered"],
                run["events_failed"],
            ]
        )
    return format_table(
        "Fig 10 — goodput through a crash/recovery timeline (events/s)",
        ["system", "pre-crash", "outage", "recovered", "detect ms", "ctx restored", "failed"],
        rows,
    )


def _render_fig11(data) -> str:
    rows = []
    runs = dict(data["systems"])
    runs["aeon (full ckpt)"] = data["aeon_full"]
    for label, run in runs.items():
        slo = run["slo"]
        rows.append(
            [
                label,
                round(slo["availability_pct"], 1),
                round(slo["baseline_goodput_per_s"], 1),
                round(slo["goodput_target_per_s"], 1),
                round(run["mean_detection_latency_ms"], 1),
                run["contexts_recovered"],
                run["events_failed"],
                run["checkpoints_taken"],
                run["checkpoints_skipped"],
                run["checkpoint_bytes_written"],
            ]
        )
    table = format_table(
        "Fig 11 — availability SLO under crash/restart churn",
        [
            "system",
            "avail %",
            "base ev/s",
            "target ev/s",
            "detect ms",
            "ctx restored",
            "failed",
            "ckpts",
            "skipped",
            "ckpt bytes",
        ],
        rows,
    )
    delta_bytes = data["systems"]["aeon"]["checkpoint_bytes_written"]
    full_bytes = data["aeon_full"]["checkpoint_bytes_written"]
    saving = 100.0 * (1.0 - delta_bytes / full_bytes) if full_bytes else 0.0
    return (
        table
        + f"\n\ndelta checkpoints: {delta_bytes:,} bytes vs full "
        + f"{full_bytes:,} bytes ({saving:.1f}% saved on identical churn)"
    )


def _render_fig9(data) -> str:
    rows = [
        [itype, round(sizes["1KB"], 1), round(sizes["1MB"], 1)]
        for itype, sizes in data.items()
    ]
    return format_table(
        "Fig 9 — eManager max migration throughput (contexts/s)",
        ["instance", "1KB", "1MB"],
        rows,
    )


ALL_EXPERIMENTS: Dict[str, Callable] = {
    "fig5a": fig5a,
    "fig5b": fig5b,
    "fig6a": fig6a,
    "fig6b": fig6b,
    "fig7": fig7,
    "table1": table1,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "ablation": ablation_chain_release,
}


def _jsonable(value: Any) -> Any:
    """Recursively convert experiment results to JSON-encodable data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: run, print and optionally dump selected experiments.

    Args: ``argv`` overrides ``sys.argv[1:]`` (used by tests).  Returns
    the process exit code.  Flags: ``--figure``/``--all`` select
    experiments, ``--scale`` the sizing preset, ``--seed`` the RNG seed,
    ``--jobs`` the worker-process count (1 = serial, 0 = one per core;
    figure data is byte-identical at any level), ``--json PATH`` dumps
    machine-readable results.  Reference: docs/EXPERIMENTS.md.
    """
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--figure", choices=sorted(ALL_EXPERIMENTS), default=None)
    parser.add_argument("--all", action="store_true")
    parser.add_argument("--scale", choices=sorted(SCALES), default="quick")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent experiment cells "
        "(1 = serial, 0 = one per CPU core; results are byte-identical)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the figure data (machine-readable) to this file",
    )
    args = parser.parse_args(argv)
    chosen = sorted(ALL_EXPERIMENTS) if args.all else [args.figure or "fig5a"]
    results: Dict[str, Any] = {}
    for name in chosen:
        data = ALL_EXPERIMENTS[name](scale=args.scale, seed=args.seed, jobs=args.jobs)
        results[name] = data
        print(render(name, data))
        print()
    if args.json:
        payload = {
            "scale": args.scale,
            "seed": args.seed,
            "experiments": _jsonable(results),
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


def render(name: str, data) -> str:
    """Human-readable rendering for any experiment's result."""
    if name == "fig5a":
        return _render_fig5a(data)
    if name == "fig5b":
        return _render_curve("Fig 5b — game latency vs throughput (thr/s, ms)", data)
    if name == "fig6a":
        return _render_fig5a(data).replace("Fig 5a — game", "Fig 6a — TPC-C")
    if name == "fig6b":
        return _render_curve("Fig 6b — TPC-C latency vs throughput (txn/s, ms)", data)
    if name == "fig7":
        lines = ["Fig 7 — elastic vs static (mean latency per setup)", ""]
        for setup, run in data.items():
            values = [v for _t, v in run["latency_series"]]
            lines.append(
                f"  {setup:>8}: mean={mean(values):6.2f} ms  "
                f"peak={max(values) if values else 0:6.2f} ms  "
                f"violations={run['sla'].violation_pct:5.1f}%"
            )
        return "\n".join(lines)
    if name == "table1":
        return _render_table1(data)
    if name == "fig8":
        lines = ["Fig 8 — throughput while migrating Room contexts", ""]
        for label, points in data.items():
            values = [v for _t, v in points]
            steady = mean(values[:4]) if len(values) >= 4 else mean(values)
            dip = min(values) if values else 0.0
            lines.append(f"  {label:>12}: steady={steady:7.1f}/s  dip={dip:7.1f}/s")
        return "\n".join(lines)
    if name == "fig9":
        return _render_fig9(data)
    if name == "fig10":
        return _render_fig10(data)
    if name == "fig11":
        return _render_fig11(data)
    if name == "ablation":
        return format_table(
            "Ablation — chain release (TPC-C, AEON_SO, 4 servers)",
            ["mode", "events/s"],
            [[k, round(v, 1)] for k, v in data.items()],
        )
    return repr(data)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
