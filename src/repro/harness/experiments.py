"""CLI + legacy figure aliases over the declarative scenario engine.

Every table and figure of the paper's §6 — and every scenario beyond
them — is a registered :class:`~repro.harness.scenarios.ScenarioSpec`
(see :mod:`repro.harness.scenarios` and docs/SCENARIOS.md).  This
module keeps the historical surface:

* ``figNx()``/``table1()``/``ablation_chain_release()`` are thin
  aliases calling :func:`~repro.harness.scenarios.run_scenario` on the
  registered spec of the same name — their figure data is
  byte-identical to the pre-spec implementations;
* :data:`ALL_EXPERIMENTS` maps the legacy names to those aliases;
* :func:`main` is the command line::

      python -m repro.harness.experiments --figure fig5a --scale quick
      python -m repro.harness.experiments --all --scale quick --jobs 4
      python -m repro.harness.experiments --list-scenarios
      python -m repro.harness.experiments --scenario churn_sweep \\
          --set mtbf_ms=1000,4000 --jobs 2

  ``--scenario`` runs any registered scenario; ``--set key=value``
  overrides a sweep axis or (sub-)spec field; ``--all`` runs the eleven
  paper figures on one shared worker pool (cells stream across figure
  boundaries — no idle cores while a straggler finishes).

Per-figure reference (knobs, expected wall-clock, how to read each
table): docs/EXPERIMENTS.md.  Scenario authoring: docs/SCENARIOS.md.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..results.store import open_store, resolve_mode
from .runner import CellPool
from .scenarios import (
    SCALES,
    Scale,
    ScenarioError,
    ScenarioSpec,
    _elastic_game_run,  # noqa: F401  (re-export: benchmarks drive it directly)
    _jsonable,
    assemble_scenario,
    expand,
    fig10_phases,  # noqa: F401  (re-export: fig10 benchmark reads phases)
    get_scenario,
    list_scenarios,
    prepare_scenario,
    render_scenario,
    run_scenario,
)

__all__ = [
    "fig5a",
    "fig5b",
    "fig6a",
    "fig6b",
    "fig7",
    "table1",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "ablation_chain_release",
    "ALL_EXPERIMENTS",
    "SCALES",
    "Scale",
    "render",
    "main",
]


def _alias(name: str) -> Callable:
    """Build a legacy ``figN(scale, seed, jobs)`` wrapper for a scenario."""

    def run(
        scale: str = "quick",
        seed: int = 0,
        jobs: int = 1,
        cache: str = "off",
        cache_dir: Optional[str] = None,
    ):
        return run_scenario(
            name, scale=scale, seed=seed, jobs=jobs,
            cache=cache, cache_dir=cache_dir,
        )

    run.__name__ = name
    run.__qualname__ = name
    run.__doc__ = (
        f"{get_scenario(name).description or get_scenario(name).title}\n\n"
        f"Thin alias for ``run_scenario({name!r})``: ``scale`` picks the\n"
        f"sizing preset, ``seed`` the RNG seed, ``jobs`` the worker\n"
        f"processes (1 = serial, 0 = one per core; figure data is\n"
        f"byte-identical at any level), ``cache``/``cache_dir`` the\n"
        f"persistent result store (docs/ARCHITECTURE.md § Result store).\n"
        f"Reference: docs/EXPERIMENTS.md § {name}."
    )
    return run


fig5a = _alias("fig5a")
fig5b = _alias("fig5b")
fig6a = _alias("fig6a")
fig6b = _alias("fig6b")
fig7 = _alias("fig7")
table1 = _alias("table1")
fig8 = _alias("fig8")
fig9 = _alias("fig9")
fig10 = _alias("fig10")
fig11 = _alias("fig11")
ablation_chain_release = _alias("ablation")

#: The paper's figures by CLI name (the ``--all`` set).  Every entry is
#: also a registered scenario; ``--scenario`` additionally reaches the
#: beyond-the-paper scenarios (``--list-scenarios`` shows everything).
ALL_EXPERIMENTS: Dict[str, Callable] = {
    "fig5a": fig5a,
    "fig5b": fig5b,
    "fig6a": fig6a,
    "fig6b": fig6b,
    "fig7": fig7,
    "table1": table1,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "ablation": ablation_chain_release,
}


def render(name: str, data) -> str:
    """Human-readable rendering for any registered scenario's result."""
    return render_scenario(get_scenario(name), data)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: run, print and optionally dump selected scenarios.

    Args: ``argv`` overrides ``sys.argv[1:]`` (used by tests).  Returns
    the process exit code.  Flags: ``--figure``/``--all``/``--scenario``
    select experiments (``--list-scenarios`` prints the registry),
    ``--scale`` the sizing preset, ``--seed`` the RNG seed, ``--set
    key=value`` overrides spec fields or sweep axes (repeatable; needs a
    single selected scenario), ``--jobs`` the worker-process count (1 =
    serial, 0 = one per core; figure data is byte-identical at any
    level; with ``--all`` one pool is shared by every figure), ``--json
    PATH`` dumps machine-readable results.  Caching: the CLI defaults to
    the persistent result store in ``.repro_results/`` (``--cache-dir``
    moves it, ``--no-cache`` disables it, ``--refresh`` recomputes and
    repopulates, ``REPRO_CACHE=auto|off|refresh`` sets the default);
    cached results are byte-identical to fresh ones, and a killed
    ``--all`` resumes from the cells it already completed.  Reference:
    docs/EXPERIMENTS.md and docs/SCENARIOS.md.
    """
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--figure", choices=sorted(ALL_EXPERIMENTS), default=None)
    parser.add_argument(
        "--scenario",
        choices=list_scenarios(),
        default=None,
        help="run any registered scenario (see --list-scenarios)",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print every registered scenario and exit",
    )
    parser.add_argument("--all", action="store_true")
    parser.add_argument("--scale", choices=sorted(SCALES), default="quick")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        metavar="KEY=VALUE",
        default=[],
        help="override a sweep axis or (sub-)spec field of the selected "
        "scenario, e.g. --set mtbf_ms=1000,4000 or --set faults.lease_ms=500 "
        "(repeatable; requires --scenario or --figure)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent experiment cells "
        "(1 = serial, 0 = one per CPU core; results are byte-identical; "
        "with --all the pool is shared across figures)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the figure data (machine-readable) to this file",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="persistent result store directory (default: "
        "$REPRO_RESULTS_DIR or .repro_results); maintain it with "
        "'python -m repro.results'",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="run without the persistent result store (neither load nor save)",
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="recompute every cell and overwrite its store entry",
    )
    args = parser.parse_args(argv)
    if args.no_cache and args.refresh:
        parser.error("--no-cache and --refresh are mutually exclusive")

    if args.list_scenarios:
        width = max(len(name) for name in list_scenarios())
        for name in list_scenarios():
            spec = get_scenario(name)
            marker = "*" if name in ALL_EXPERIMENTS else " "
            print(f"{marker} {name:<{width}}  {spec.description or spec.title}")
        print("\n(* = part of --all; others run via --scenario NAME)")
        return 0

    selectors = sum(bool(s) for s in (args.scenario, args.all, args.figure))
    if selectors > 1:
        parser.error("pick one of --scenario, --figure or --all")
    if args.scenario:
        chosen = [args.scenario]
    elif args.all:
        chosen = sorted(ALL_EXPERIMENTS)
    else:
        chosen = [args.figure or "fig5a"]
    if args.overrides and len(chosen) != 1:
        parser.error("--set requires a single scenario (--scenario or --figure)")

    results: Dict[str, Any] = {}
    try:
        store = open_store(
            resolve_mode(args.no_cache, args.refresh, args.cache_dir),
            args.cache_dir,
        )
    except ValueError as error:
        parser.error(str(error))
    try:
        with CellPool(args.jobs, store=store) as pool:
            # Expand and enqueue every chosen scenario up front: cells
            # stream through one shared pool, so workers never idle at a
            # figure boundary waiting for a straggler cell.
            plans = []
            for name in chosen:
                spec = prepare_scenario(
                    name, scale=args.scale, seed=args.seed,
                    overrides=args.overrides,
                )
                cells = expand(spec)
                plans.append((name, spec, cells, pool.submit(cells)))
            for name, spec, cells, handles in plans:
                data = assemble_scenario(spec, cells, pool.gather(handles))
                results[name] = data
                print(render_scenario(spec, data))
                print()
    except ScenarioError as error:
        parser.error(str(error))
    if store is not None:
        total = store.hits + store.misses
        pct = 100.0 * store.hits / total if total else 0.0
        print(
            f"result store: {store.hits}/{total} cache hits ({pct:.0f}%), "
            f"{store.misses} computed -> {store.root}"
        )
    if args.json:
        payload = {
            "scale": args.scale,
            "seed": args.seed,
            "experiments": _jsonable(results),
        }
        if store is not None:
            payload["cache"] = {
                "dir": str(store.root),
                "hits": store.hits,
                "misses": store.misses,
            }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
