"""CLI + legacy figure aliases over the declarative scenario engine.

Every table and figure of the paper's §6 — and every scenario beyond
them — is a registered :class:`~repro.harness.scenarios.ScenarioSpec`
(see :mod:`repro.harness.scenarios` and docs/SCENARIOS.md).  This
module keeps the historical surface:

* ``figNx()``/``table1()``/``ablation_chain_release()`` are thin
  aliases calling :func:`~repro.harness.scenarios.run_scenario` on the
  registered spec of the same name — their figure data is
  byte-identical to the pre-spec implementations;
* :data:`ALL_EXPERIMENTS` maps the legacy names to those aliases;
* :func:`main` is the command line::

      python -m repro.harness.experiments --figure fig5a --scale quick
      python -m repro.harness.experiments --all --scale quick --jobs 4
      python -m repro.harness.experiments --list-scenarios
      python -m repro.harness.experiments --scenario churn_sweep \\
          --set mtbf_ms=1000,4000 --jobs 2

  ``--scenario`` runs any registered scenario — *repeat it* to run a
  matrix of scenarios through one shared executor, each with its own
  trailing ``--set`` overrides::

      python -m repro.harness.experiments \\
          --scenario churn_sweep --set mtbf_ms=1000 \\
          --scenario churn_sweep --set mtbf_ms=4000 --jobs 2

  ``--set key=value`` overrides a sweep axis or (sub-)spec field (it
  binds to the nearest preceding ``--scenario``; before any, it applies
  globally); ``--all`` runs the eleven paper figures on one shared
  worker pool (cells stream across figure boundaries — no idle cores
  while a straggler finishes).  ``--executor serial|pool|queue`` picks
  where cells run (docs/ARCHITECTURE.md § Executors); the queue backend
  publishes cells to a ``--queue-dir`` spool that any number of
  ``python -m repro.exec.worker`` processes drain.

Per-figure reference (knobs, expected wall-clock, how to read each
table): docs/EXPERIMENTS.md.  Scenario authoring: docs/SCENARIOS.md.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..exec import EXECUTORS, ExecutorError, QueueExecutor, WorkerLostError
from ..results.store import open_store, resolve_mode
from .runner import CellPool
from .scenarios import (
    SCALES,
    Scale,
    ScenarioError,
    ScenarioSpec,
    _elastic_game_run,  # noqa: F401  (re-export: benchmarks drive it directly)
    _jsonable,
    assemble_scenario,
    expand,
    fig10_phases,  # noqa: F401  (re-export: fig10 benchmark reads phases)
    get_scenario,
    list_scenarios,
    prepare_scenario,
    render_scenario,
    run_scenario,
)

__all__ = [
    "fig5a",
    "fig5b",
    "fig6a",
    "fig6b",
    "fig7",
    "table1",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "ablation_chain_release",
    "ALL_EXPERIMENTS",
    "SCALES",
    "Scale",
    "render",
    "main",
]


def _alias(name: str) -> Callable:
    """Build a legacy ``figN(scale, seed, jobs)`` wrapper for a scenario."""

    def run(
        scale: str = "quick",
        seed: int = 0,
        jobs: int = 1,
        cache: str = "off",
        cache_dir: Optional[str] = None,
    ):
        return run_scenario(
            name, scale=scale, seed=seed, jobs=jobs,
            cache=cache, cache_dir=cache_dir,
        )

    run.__name__ = name
    run.__qualname__ = name
    run.__doc__ = (
        f"{get_scenario(name).description or get_scenario(name).title}\n\n"
        f"Thin alias for ``run_scenario({name!r})``: ``scale`` picks the\n"
        f"sizing preset, ``seed`` the RNG seed, ``jobs`` the worker\n"
        f"processes (1 = serial, 0 = one per core; figure data is\n"
        f"byte-identical at any level), ``cache``/``cache_dir`` the\n"
        f"persistent result store (docs/ARCHITECTURE.md § Result store).\n"
        f"Reference: docs/EXPERIMENTS.md § {name}."
    )
    return run


fig5a = _alias("fig5a")
fig5b = _alias("fig5b")
fig6a = _alias("fig6a")
fig6b = _alias("fig6b")
fig7 = _alias("fig7")
table1 = _alias("table1")
fig8 = _alias("fig8")
fig9 = _alias("fig9")
fig10 = _alias("fig10")
fig11 = _alias("fig11")
ablation_chain_release = _alias("ablation")

#: The paper's figures by CLI name (the ``--all`` set).  Every entry is
#: also a registered scenario; ``--scenario`` additionally reaches the
#: beyond-the-paper scenarios (``--list-scenarios`` shows everything).
ALL_EXPERIMENTS: Dict[str, Callable] = {
    "fig5a": fig5a,
    "fig5b": fig5b,
    "fig6a": fig6a,
    "fig6b": fig6b,
    "fig7": fig7,
    "table1": table1,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "ablation": ablation_chain_release,
}


def render(name: str, data) -> str:
    """Human-readable rendering for any registered scenario's result."""
    return render_scenario(get_scenario(name), data)


class _MatrixScenario(argparse.Action):
    """``--scenario NAME``: open a new matrix group (repeatable)."""

    def __call__(self, parser, namespace, value, option_string=None):
        # Copy-on-append: never mutate the shared argparse default list
        # (main() runs many times per test process).
        groups = list(getattr(namespace, "matrix", None) or [])
        groups.append((value, []))
        namespace.matrix = groups


class _MatrixSet(argparse.Action):
    """``--set K=V``: bind to the nearest preceding ``--scenario`` group,
    or to the global override list when none is open yet."""

    def __call__(self, parser, namespace, value, option_string=None):
        groups = list(getattr(namespace, "matrix", None) or [])
        if groups:
            name, sets = groups[-1]
            groups[-1] = (name, sets + [value])
            namespace.matrix = groups
        else:
            namespace.overrides = list(
                getattr(namespace, "overrides", None) or []
            ) + [value]


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: run, print and optionally dump selected scenarios.

    Args: ``argv`` overrides ``sys.argv[1:]`` (used by tests).  Returns
    the process exit code: 0 on success, 2 when workers were lost beyond
    recovery (the partial result store stays intact — rerun to resume).
    Flags: ``--figure``/``--all``/``--scenario`` select experiments
    (``--list-scenarios`` prints the registry; ``--scenario`` repeats
    into a matrix sharing one executor), ``--scale`` the sizing preset,
    ``--seed`` the RNG seed, ``--set key=value`` overrides spec fields
    or sweep axes (repeatable; binds to the nearest preceding
    ``--scenario``, else applies globally), ``--jobs`` the
    worker-process count (1 = serial, 0 = one per core; figure data is
    byte-identical at any level; with ``--all`` one pool is shared by
    every figure), ``--executor``/``--queue-*`` the execution backend
    (docs/ARCHITECTURE.md § Executors), ``--json PATH`` dumps
    machine-readable results.  Caching: the CLI defaults to the
    persistent result store in ``.repro_results/`` (``--cache-dir``
    moves it, ``--no-cache`` disables it, ``--refresh`` recomputes and
    repopulates, ``REPRO_CACHE=auto|off|refresh`` sets the default);
    cached results are byte-identical to fresh ones, and a killed
    ``--all`` resumes from the cells it already completed.  Reference:
    docs/EXPERIMENTS.md and docs/SCENARIOS.md.
    """
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--figure", choices=sorted(ALL_EXPERIMENTS), default=None)
    parser.add_argument(
        "--scenario",
        choices=list_scenarios(),
        action=_MatrixScenario,
        dest="matrix",
        help="run any registered scenario (see --list-scenarios); repeat "
        "to run a matrix of scenarios through one shared executor, each "
        "taking its own trailing --set overrides",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print every registered scenario and exit",
    )
    parser.add_argument("--all", action="store_true")
    parser.add_argument("--scale", choices=sorted(SCALES), default="quick")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--set",
        dest="overrides",
        action=_MatrixSet,
        metavar="KEY=VALUE",
        help="override a sweep axis or (sub-)spec field of the selected "
        "scenario, e.g. --set mtbf_ms=1000,4000 or --set faults.lease_ms=500 "
        "(repeatable; binds to the nearest preceding --scenario, else "
        "applies to the single selected scenario)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent experiment cells "
        "(1 = serial, 0 = one per CPU core; results are byte-identical; "
        "with --all the pool is shared across figures)",
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTORS,
        default=None,
        help="cell-execution backend: serial (in-process), pool (local "
        "worker processes, retries lost workers), queue (spool-dir work "
        "queue drained by 'python -m repro.exec.worker' processes); "
        "default: $REPRO_EXECUTOR, else picked from --jobs",
    )
    parser.add_argument(
        "--queue-dir",
        metavar="PATH",
        default=None,
        help="queue backend spool directory (default: $REPRO_QUEUE_DIR "
        "or .repro_queue); implies --executor queue",
    )
    parser.add_argument(
        "--queue-workers",
        type=int,
        default=0,
        metavar="N",
        help="spawn N local queue workers for the run (default 0: rely "
        "on externally launched workers)",
    )
    parser.add_argument(
        "--queue-lease",
        type=float,
        default=None,
        metavar="S",
        help="seconds before a claimed cell with a stale worker "
        "heartbeat is re-queued (default 30)",
    )
    parser.add_argument(
        "--queue-straggler-factor",
        type=float,
        default=None,
        metavar="X",
        help="speculatively re-dispatch a cell running longer than X times "
        "the p90 of completed cells (default 3.0)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the figure data (machine-readable) to this file",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="persistent result store directory (default: "
        "$REPRO_RESULTS_DIR or .repro_results); maintain it with "
        "'python -m repro.results'",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="run without the persistent result store (neither load nor save)",
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="recompute every cell and overwrite its store entry",
    )
    parser.set_defaults(matrix=[], overrides=[])
    args = parser.parse_args(argv)
    if args.no_cache and args.refresh:
        parser.error("--no-cache and --refresh are mutually exclusive")

    if args.list_scenarios:
        width = max(len(name) for name in list_scenarios())
        for name in list_scenarios():
            spec = get_scenario(name)
            marker = "*" if name in ALL_EXPERIMENTS else " "
            print(f"{marker} {name:<{width}}  {spec.description or spec.title}")
        print("\n(* = part of --all; others run via --scenario NAME)")
        return 0

    selectors = sum(bool(s) for s in (args.matrix, args.all, args.figure))
    if selectors > 1:
        parser.error("pick one of --scenario, --figure or --all")
    # (display name, scenario name, overrides) per run; repeats of one
    # scenario render as name@2, name@3, ... in output and --json.
    if args.matrix:
        seen: Dict[str, int] = {}
        chosen = []
        for name, sets in args.matrix:
            seen[name] = seen.get(name, 0) + 1
            display = name if seen[name] == 1 else f"{name}@{seen[name]}"
            chosen.append((display, name, list(args.overrides) + sets))
    elif args.all:
        if args.overrides:
            parser.error(
                "--set requires a single scenario (--scenario or --figure)"
            )
        chosen = [(name, name, []) for name in sorted(ALL_EXPERIMENTS)]
    else:
        name = args.figure or "fig5a"
        chosen = [(name, name, list(args.overrides))]

    executor_options: Dict[str, Any] = {}
    if args.queue_workers:
        executor_options["spawn_workers"] = args.queue_workers
    if args.queue_lease is not None:
        executor_options["lease_timeout_s"] = args.queue_lease
    if args.queue_straggler_factor is not None:
        executor_options["straggler_factor"] = args.queue_straggler_factor

    results: Dict[str, Any] = {}
    try:
        store = open_store(
            resolve_mode(args.no_cache, args.refresh, args.cache_dir),
            args.cache_dir,
        )
    except ValueError as error:
        parser.error(str(error))
    try:
        with CellPool(
            args.jobs,
            store=store,
            executor=args.executor,
            queue_dir=args.queue_dir,
            executor_options=executor_options,
        ) as pool:
            # Expand and enqueue every chosen scenario up front: cells
            # stream through one shared pool, so workers never idle at a
            # figure boundary waiting for a straggler cell.
            plans = []
            for display, name, overrides in chosen:
                spec = prepare_scenario(
                    name, scale=args.scale, seed=args.seed,
                    overrides=overrides,
                )
                cells = expand(spec)
                plans.append((display, spec, cells, pool.submit(cells)))
            for display, spec, cells, handles in plans:
                data = assemble_scenario(spec, cells, pool.gather(handles))
                results[display] = data
                print(render_scenario(spec, data))
                print()
            backend = pool.executor
    except ScenarioError as error:
        parser.error(str(error))
    except ExecutorError as error:
        print(f"executor error: {error}", file=sys.stderr)
        if isinstance(error, WorkerLostError) and error.cells:
            for key in error.cells:
                print(f"  lost cell: {key}", file=sys.stderr)
        if store is not None:
            print(
                f"completed cells are persisted in {store.root}; "
                "rerun to resume from them",
                file=sys.stderr,
            )
        return 2
    if isinstance(backend, QueueExecutor):
        stats = backend.stats()
        print(
            f"queue executor: {stats['completed']} cells via "
            f"{stats['workers']} worker(s), {stats['reclaims']} lease "
            f"reclaim(s), {stats['speculations']} speculative dispatch(es)"
        )
    if store is not None:
        total = store.hits + store.misses
        pct = 100.0 * store.hits / total if total else 0.0
        print(
            f"result store: {store.hits}/{total} cache hits ({pct:.0f}%), "
            f"{store.misses} computed -> {store.root}"
        )
    if args.json:
        payload = {
            "scale": args.scale,
            "seed": args.seed,
            "experiments": _jsonable(results),
        }
        if store is not None:
            payload["cache"] = {
                "dir": str(store.root),
                "hits": store.hits,
                "misses": store.misses,
            }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
