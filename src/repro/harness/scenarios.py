"""Declarative scenario API: specs, a registry, and composable sweeps.

Every experiment in this repository — the paper's figures and anything
you invent — is described by a frozen, picklable :class:`ScenarioSpec`:
the application (:attr:`~ScenarioSpec.app`), the systems under test,
the cluster shape, the workload, the fault schedule, the sizing
(scale/seed/duration) and the metrics/output shape.  The engine turns a
spec into results in three steps:

* :func:`expand` enumerates the spec's sweep axes (systems × server
  counts × seeds × user-declared axes) into independent
  :class:`~repro.harness.runner.Cell`\\ s;
* :func:`build_scenario` (via the :func:`run_point` cell body) wires a
  testbed, application, clients and fault machinery from the spec and
  runs one sweep point;
* :func:`run_scenario` executes the cells (serially, across worker
  processes, or on a shared :class:`~repro.harness.runner.CellPool`)
  and assembles/renders the figure data keyed off the spec's declared
  output shape.

Scenarios register under a name with the :func:`scenario` decorator;
``--scenario NAME`` / ``--list-scenarios`` / ``--set key=value`` on the
CLI (``python -m repro.harness.experiments``) drive any of them.  All
eleven legacy figures are registered specs — their ``figN()`` wrappers
in :mod:`repro.harness.experiments` are thin aliases and their figure
JSON is byte-identical to the pre-spec implementations (pinned by
``tests/test_scenarios.py`` against ``tests/data/``).

Authoring guide (a new scenario in under 20 lines): docs/SCENARIOS.md.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..apps.game import GameConfig, Room, build_game
from ..apps.massive import MassiveConfig, build_massive, run_checksum
from ..apps.tpcc import TpccConfig, TpccWorkload, build_tpcc
from ..core.costs import DEFAULT_COSTS
from ..core.runtime import FAILED_TAG
from ..elasticity import CloudStorage, EManager, MigrationCoordinator, SLAPolicy
from ..faults import (
    FailureDetector,
    FaultInjector,
    FaultSchedule,
    NetworkPartition,
    ServerCrash,
    random_churn,
)
from ..results.store import open_store
from ..sim.cluster import INSTANCE_TYPES, M1_SMALL, M3_LARGE, Server
from ..sim.metrics import LatencyRecorder, mean, percentile
from ..workloads.generators import ClosedLoopClients, DynamicClients, RampProfile
from ..workloads.sla import availability_slo, sla_report
from .report import format_table
from .runner import Cell, SYSTEMS, make_testbed, measure, run_cells, run_game

#: Dotted-path prefix for this module's cell bodies (see Cell.fn).
_SCN = "repro.harness.scenarios"

__all__ = [
    "Scale",
    "SCALES",
    "GameSpec",
    "TpccSpec",
    "WorkloadSpec",
    "FaultSpec",
    "ElasticSpec",
    "ScenarioSpec",
    "ScenarioError",
    "scenario",
    "register",
    "get_scenario",
    "list_scenarios",
    "REGISTRY",
    "sweep_axes",
    "zip_points",
    "expand",
    "apply_overrides",
    "build_scenario",
    "run_point",
    "run_scenario",
    "assemble_scenario",
    "render_scenario",
    "fig10_phases",
]


# ----------------------------------------------------------------------
# Sizing presets
# ----------------------------------------------------------------------
@dataclass
class Scale:
    """Experiment sizing knobs."""

    game_duration_ms: float
    game_warmup_ms: float
    game_clients_per_server: int
    tpcc_duration_ms: float
    tpcc_warmup_ms: float
    tpcc_clients_per_server: int
    server_counts: Tuple[int, ...]
    client_sweep: Tuple[int, ...]
    elastic_duration_ms: float
    migration_duration_ms: float
    emanager_batch: int
    fault_duration_ms: float = 16000.0
    fault_clients: int = 48
    fault_checkpoint_ms: float = 1500.0
    # churn (long-horizon availability) sizing.
    churn_duration_ms: float = 30000.0
    churn_clients: int = 40
    churn_mtbf_ms: float = 3000.0
    churn_start_ms: float = 5000.0
    churn_checkpoint_ms: float = 1500.0
    churn_restart_ms: Tuple[float, float] = (1500.0, 4000.0)
    # massive tier (columnar bulk registration) sizing.
    massive_contexts: int = 100_000
    massive_servers: int = 32
    massive_clients: int = 256
    massive_duration_ms: float = 800.0
    massive_warmup_ms: float = 200.0
    massive_think_ms: float = 2.0


SCALES: Dict[str, Scale] = {
    "quick": Scale(
        game_duration_ms=1200.0,
        game_warmup_ms=400.0,
        game_clients_per_server=60,
        tpcc_duration_ms=8000.0,
        tpcc_warmup_ms=2500.0,
        tpcc_clients_per_server=12,
        server_counts=(2, 4, 8),
        client_sweep=(8, 32, 96, 192),
        elastic_duration_ms=40000.0,
        migration_duration_ms=12000.0,
        emanager_batch=40,
        fault_duration_ms=16000.0,
        fault_clients=48,
        fault_checkpoint_ms=1500.0,
        churn_duration_ms=30000.0,
        churn_clients=40,
        churn_mtbf_ms=3000.0,
        churn_start_ms=5000.0,
        churn_checkpoint_ms=1500.0,
        churn_restart_ms=(1500.0, 4000.0),
    ),
    "full": Scale(
        game_duration_ms=2500.0,
        game_warmup_ms=700.0,
        game_clients_per_server=110,
        tpcc_duration_ms=15000.0,
        tpcc_warmup_ms=4000.0,
        tpcc_clients_per_server=16,
        server_counts=(2, 4, 8, 12, 16),
        client_sweep=(8, 24, 64, 128, 256, 512),
        elastic_duration_ms=60000.0,
        migration_duration_ms=20000.0,
        emanager_batch=120,
        fault_duration_ms=40000.0,
        fault_clients=120,
        fault_checkpoint_ms=2000.0,
        churn_duration_ms=120000.0,
        churn_clients=96,
        churn_mtbf_ms=12000.0,
        churn_start_ms=10000.0,
        churn_checkpoint_ms=2000.0,
        churn_restart_ms=(2000.0, 8000.0),
        massive_contexts=300_000,
        massive_servers=96,
        massive_clients=384,
        massive_duration_ms=1200.0,
        massive_warmup_ms=300.0,
        massive_think_ms=2.0,
    ),
    # The million-context tier: figure sizing mirrors "full" (so any
    # scenario *can* run here), but what the preset is for is the
    # massive_* scenarios — a 1M-leaf population on a several-hundred
    # server fleet, bulk-registered through the columnar table.
    "massive": Scale(
        game_duration_ms=2500.0,
        game_warmup_ms=700.0,
        game_clients_per_server=110,
        tpcc_duration_ms=15000.0,
        tpcc_warmup_ms=4000.0,
        tpcc_clients_per_server=16,
        server_counts=(2, 4, 8, 12, 16),
        client_sweep=(8, 24, 64, 128, 256, 512),
        elastic_duration_ms=60000.0,
        migration_duration_ms=20000.0,
        emanager_batch=120,
        massive_contexts=1_000_000,
        massive_servers=256,
        massive_clients=768,
        massive_duration_ms=1500.0,
        massive_warmup_ms=300.0,
        massive_think_ms=2.0,
    ),
}


# ----------------------------------------------------------------------
# Spec dataclasses (frozen, picklable: they travel inside Cell kwargs)
# ----------------------------------------------------------------------
class ScenarioError(ValueError):
    """Raised for invalid scenario names, axes or ``--set`` overrides."""


@dataclass(frozen=True)
class GameSpec:
    """Game-application shape (see :class:`repro.apps.game.GameConfig`)."""

    rooms: int = 0  # 0 -> one room per server
    players_per_room: int = 8
    shared_items_per_room: int = 4
    #: "uniform" | "geometric" — client traffic across rooms; geometric
    #: is the 0.5**i hot/cold skew of the churn experiments (honored by
    #: the fault and elastic paths).
    room_weights: str = "uniform"


@dataclass(frozen=True)
class TpccSpec:
    """TPC-C application shape (see :class:`repro.apps.tpcc.TpccConfig`)."""

    districts: int = 0  # 0 -> one district per server
    customers_per_district: int = 10


@dataclass(frozen=True)
class WorkloadSpec:
    """One client population: closed-loop or profile-following ramp."""

    kind: str = "closed_loop"  # "closed_loop" | "ramp"
    think_ms: float = 2.0
    clients: int = 0  # absolute population; 0 -> clients_per_server
    clients_per_server: int = 0  # 0 -> the scale preset's default
    max_retries: int = 0
    name_prefix: str = "client"
    # ramp (DynamicClients) knobs:
    profile: str = "normal_peak"  # "normal_peak" | "diurnal"
    machines: int = 8
    min_per_machine: int = 1
    max_per_machine: int = 16
    cycles: int = 2  # diurnal day/night cycles over the run


@dataclass(frozen=True)
class FaultSpec:
    """Fault schedule + detection/recovery/SLO knobs for a scenario.

    ``kind="crash"`` is the fig10 single mid-run fail-stop (placed by
    run fractions); ``kind="churn"`` is the fig11 sustained
    crash/restart churn (exponential arrivals); ``kind="split_brain"``
    is an *asymmetric* partition (detector + eManager cut off from one
    server while clients still reach it) that never heals within the
    run; ``kind="partition_recovery"`` is the same cut healing while
    recovery is mid-flight.  Zero-valued sizing fields fall back to the
    scale preset.

    The honest-failure knobs (``fencing``, ``honest_recovery``,
    ``crash_drops_state``) all default **off**, which keeps every legacy
    figure byte-identical; the partition kinds are expected to turn at
    least ``honest_recovery`` on — with it off, recovery would peek
    ground truth, see a live server and skip the restore entirely.
    """

    kind: str = "none"  # "none" | "crash" | "churn" | "split_brain" | "partition_recovery"
    heartbeat_ms: float = 200.0
    lease_ms: float = 650.0
    check_ms: float = 100.0
    checkpoint_ms: float = 0.0  # 0 -> scale default
    checkpoint_mode: str = "full"  # "full" | "delta"
    # crash placement (fractions of the run):
    crash_frac: float = 0.35
    restart_frac: float = 0.30
    victim: int = 1  # index into the server fleet
    # churn arrivals:
    mtbf_ms: float = 0.0  # 0 -> scale default
    restart_ms: Tuple[float, float] = (0.0, 0.0)  # (0,0) -> scale default
    churn_start_ms: float = 0.0  # 0 -> scale default
    # windowed availability SLO (churn only):
    window_ms: float = 500.0
    goodput_fraction: float = 0.85
    p99_multiplier: float = 3.0
    p99_floor_ms: float = 20.0
    # honest failure semantics (all default off — legacy byte-identical):
    fencing: bool = False
    honest_recovery: bool = False
    crash_drops_state: bool = False
    fence_grace_ms: float = 300.0
    # partition placement (split_brain / partition_recovery kinds):
    partition_frac: float = 0.35
    partition_ms: float = 0.0  # 0 -> kind-specific default


@dataclass(frozen=True)
class ElasticSpec:
    """eManager + SLA policy knobs for elastic scenarios."""

    sla_ms: float = 10.0
    scale_out_step: int = 4
    min_servers: int = 4
    max_servers: int = 40
    scale_in_fraction: float = 0.25
    headroom: float = 0.45
    boot_delay_ms: float = 1500.0
    report_interval_ms: float = 1000.0
    max_concurrent_migrations: int = 8


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative experiment: what to deploy, sweep and measure.

    The spec is frozen and picklable — :func:`expand` embeds it in each
    generated :class:`~repro.harness.runner.Cell`, so worker processes
    rebuild the exact deployment from data alone.  Field groups:

    * **deployment** — ``app`` ("game" | "tpcc" | "mixed"), ``systems``,
      ``servers`` (fixed fleet) or ``server_counts`` (sweep; empty =
      the scale preset's counts), ``instance``, ``game``/``tpcc`` shape;
    * **workload** — ``workload`` (plus ``tpcc_workload`` for the mixed
      co-tenant), ``duration_ms``/``warmup_ms``/``drain_ms`` (0 = the
      scale preset's sizing);
    * **faults / elasticity** — ``faults`` (:class:`FaultSpec`),
      ``elastic`` (:class:`ElasticSpec` or ``None``);
    * **sweep** — ``seeds``, ``axes`` (extra named axes; a value of
      ``()`` pulls the scale default, e.g. ``("clients", ())``),
      ``zip_axes`` (paired axes that advance *together* instead of
      crossing — all must have equal lengths, validated fail-fast),
      ``points`` (explicit sweep points overriding the cross-product);
    * **output** — ``metrics`` (RunResult attributes), ``output`` (the
      assembly/render shape), optional custom ``cell`` / ``assemble`` /
      ``render`` dotted ``"module:function"`` hooks.

    Axis names (and ``--set`` keys) resolve against spec fields, then
    against the sub-spec fields (workload, faults, elastic, game, tpcc)
    — e.g. an axis ``("mtbf_ms", (1500, 3000))`` sweeps
    ``faults.mtbf_ms``.  See docs/SCENARIOS.md for the full reference.
    """

    name: str
    title: str
    description: str = ""
    # Deployment.
    app: str = "game"
    systems: Tuple[str, ...] = SYSTEMS
    servers: int = 0
    server_counts: Tuple[int, ...] = ()
    instance: str = ""  # "" -> m3.large
    game: GameSpec = GameSpec()
    tpcc: TpccSpec = TpccSpec()
    # Workload + measurement window.
    workload: WorkloadSpec = WorkloadSpec()
    tpcc_workload: WorkloadSpec = WorkloadSpec(
        think_ms=5.0, name_prefix="tpcc-client"
    )
    duration_ms: float = 0.0
    warmup_ms: float = 0.0
    drain_ms: float = 0.0
    # Faults / elasticity.
    faults: FaultSpec = FaultSpec()
    elastic: Optional[ElasticSpec] = None
    # Sweep.
    scale: str = "quick"
    seeds: Tuple[int, ...] = (0,)
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    zip_axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    points: Tuple[Tuple[Tuple[str, Any], ...], ...] = ()
    # Output.
    metrics: Tuple[str, ...] = ("throughput_per_s",)
    output: str = "curve"
    x_name: str = "servers"
    cell: str = ""
    assemble: str = ""
    render: str = ""

    def with_(self, **changes: Any) -> "ScenarioSpec":
        """A copy with ``changes`` applied (sugar over dataclasses.replace)."""
        return replace(self, **changes)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
REGISTRY: Dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec) -> ScenarioSpec:
    """Register ``spec`` under its name; returns it.  Names are unique."""
    if spec.name in REGISTRY:
        raise ScenarioError(f"scenario {spec.name!r} already registered")
    REGISTRY[spec.name] = spec
    return spec


def scenario(builder: Callable[[], ScenarioSpec]) -> Callable[[], ScenarioSpec]:
    """Decorator: register the :class:`ScenarioSpec` the builder returns.

    The builder runs once at import time; keep it a pure spec literal::

        @scenario
        def my_sweep() -> ScenarioSpec:
            return ScenarioSpec(name="my_sweep", ...)
    """
    register(builder())
    return builder


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered spec by name."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r}; pick from {', '.join(sorted(REGISTRY))}"
        ) from None


def list_scenarios() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(REGISTRY)


def _resolve(dotted: str) -> Callable:
    """Resolve a ``"module:function"`` hook (same contract as Cell.fn)."""
    import importlib

    module_name, _, fn_name = dotted.partition(":")
    return getattr(importlib.import_module(module_name), fn_name)


# ----------------------------------------------------------------------
# Sweep expansion
# ----------------------------------------------------------------------
#: Axes whose empty value tuple pulls a per-scale default.
_SCALE_AXIS_DEFAULTS: Dict[str, str] = {
    "n_servers": "server_counts",
    "clients": "client_sweep",
}


def _axis_values(name: str, values: Tuple[Any, ...], sizing: Scale) -> Tuple:
    if values:
        return tuple(values)
    attr = _SCALE_AXIS_DEFAULTS.get(name)
    if attr is None:
        raise ScenarioError(f"axis {name!r} has no values and no scale default")
    return tuple(getattr(sizing, attr))


def _validate_seeds(spec: ScenarioSpec) -> None:
    """Reject multi-seed sweeps the assembly cannot combine.

    Only curve assembly knows how to combine seed replicas (it averages
    the metric per point); everywhere else a swept seed axis would
    silently corrupt keyed assembly — and custom-cell / explicit-points
    scenarios pin their own seed handling (fig7/table1 shard via the
    rep axis).  Fail fast instead of dropping ``seeds[1:]``.
    """
    if len(spec.seeds) <= 1:
        return
    if spec.cell:
        raise ScenarioError(
            f"scenario {spec.name!r} does not support multi-seed sweeps; "
            f"shard repetitions via its axes instead (e.g. --set rep=0,1,2)"
        )
    if spec.points or spec.output != "curve":
        raise ScenarioError(
            f"scenario {spec.name!r} (output {spec.output!r}) does not "
            f"support multi-seed sweeps; only 'curve' outputs average "
            f"across seeds"
        )


def sweep_axes(spec: ScenarioSpec) -> List[Tuple[str, Tuple]]:
    """The spec's ordered sweep axes: ``[(axis_name, values), ...]``.

    Generic (``spec.cell == ""``) scenarios sweep ``system`` first, then
    ``n_servers`` when no fixed fleet is set, then the user-declared
    ``spec.axes``, then ``seed`` when more than one seed is given.
    Custom-cell scenarios sweep exactly ``spec.axes``.
    """
    sizing = SCALES[spec.scale]
    _validate_seeds(spec)
    axes: List[Tuple[str, Tuple]] = []
    if not spec.cell:
        axes.append(("system", tuple(spec.systems)))
        if spec.servers == 0:
            axes.append(("n_servers", _axis_values("n_servers", spec.server_counts, sizing)))
    for name, values in spec.axes:
        axes.append((name, _axis_values(name, tuple(values), sizing)))
    if not spec.cell and len(spec.seeds) > 1:
        axes.append(("seed", tuple(spec.seeds)))
    return axes


def zip_points(spec: ScenarioSpec) -> List[Tuple[Tuple[str, Any], ...]]:
    """The spec's paired-axis positions: ``[((name, value), ...), ...]``.

    Unlike ``spec.axes`` (which cross), the ``spec.zip_axes`` advance
    *together*: position ``i`` takes value ``i`` of every zip axis, like
    Python's ``zip``.  All zip axes must resolve to the same length
    (empty values pull the scale default, exactly as cross axes do);
    mismatched lengths or a name colliding with a cross axis fail fast
    with :class:`ScenarioError` before any cell runs.  Returns ``[()]``
    when no zip axes are declared (the neutral element for the
    cross-product in :func:`_sweep_points`).
    """
    if not spec.zip_axes:
        return [()]
    if spec.points:
        raise ScenarioError(
            f"scenario {spec.name!r} declares both explicit points and "
            f"zip_axes; explicit points already pin every axis value"
        )
    sizing = SCALES[spec.scale]
    resolved = [
        (name, _axis_values(name, tuple(values), sizing))
        for name, values in spec.zip_axes
    ]
    cross_names = {name for name, _values in sweep_axes(spec)}
    for name, _values in resolved:
        if name in cross_names:
            raise ScenarioError(
                f"scenario {spec.name!r}: zip axis {name!r} collides with "
                f"a cross-product axis of the same name"
            )
    lengths = {name: len(values) for name, values in resolved}
    if len(set(lengths.values())) > 1:
        raise ScenarioError(
            f"scenario {spec.name!r}: zip axes must have equal lengths, got "
            + ", ".join(f"{name}={n}" for name, n in lengths.items())
        )
    length = next(iter(lengths.values()))
    return [
        tuple((name, values[i]) for name, values in resolved)
        for i in range(length)
    ]


def _sweep_points(spec: ScenarioSpec) -> List[Tuple[Tuple[str, Any], ...]]:
    """All sweep points as ``((axis, value), ...)`` tuples, in cell order.

    Cross-product axes expand first; each resulting point is then
    extended with every zip position (zip values vary fastest).  With no
    zip axes this is exactly the historical cross-product.
    """
    if spec.points:
        if spec.zip_axes:
            zip_points(spec)  # raises: points + zip_axes conflict
        return [tuple(point) for point in spec.points]
    points: List[Tuple[Tuple[str, Any], ...]] = [()]
    for name, values in sweep_axes(spec):
        points = [point + ((name, value),) for point in points for value in values]
    zips = zip_points(spec)
    if zips != [()]:
        points = [point + zipped for point in points for zipped in zips]
    return points


def expand(spec: ScenarioSpec) -> List[Cell]:
    """Enumerate the spec's sweep into :class:`Cell`\\ s (cell order = data order).

    Generic scenarios produce :func:`run_point` cells carrying the spec
    itself; custom-cell scenarios produce ``spec.cell`` cells whose
    kwargs are the axis values plus ``scale``/``seed`` (matching the
    historical per-figure cell functions byte for byte).
    """
    _validate_seeds(spec)
    cells: List[Cell] = []
    for point in _sweep_points(spec):
        key = tuple(value for _name, value in point)
        if spec.cell:
            kwargs: Dict[str, Any] = {name: value for name, value in point}
            kwargs["scale"] = spec.scale
            kwargs["seed"] = spec.seeds[0]
            cells.append(Cell(key, spec.cell, kwargs))
        else:
            kwargs = {"spec": spec}
            kwargs.update({name: value for name, value in point})
            cells.append(Cell(key, f"{_SCN}:run_point", kwargs))
    return cells


# ----------------------------------------------------------------------
# Overrides (--set key=value) and axis-value folding
# ----------------------------------------------------------------------
#: Sub-specs searched (in order) when folding a bare key into the spec.
_SUBSPEC_FIELDS = ("workload", "tpcc_workload", "faults", "elastic", "game", "tpcc")

#: Spec fields that are tuples (a scalar --set value is wrapped).
_TUPLE_FIELDS = {"systems", "seeds", "server_counts", "metrics"}

#: Spec fields --set may not touch (identity/plumbing).  Axis *names*
#: (cross or zip) are still settable — they replace that axis's values.
_PROTECTED_FIELDS = {"name", "cell", "assemble", "render", "axes", "zip_axes", "points"}


def _spec_field_names(obj: Any) -> Tuple[str, ...]:
    return tuple(f.name for f in dataclasses.fields(obj))


def _set_key(spec: ScenarioSpec, key: str, value: Any) -> ScenarioSpec:
    """Fold one ``key=value`` into the spec (axis values use
    :func:`apply_overrides`; this handles spec/sub-spec fields)."""
    if "." in key:
        sub, _, inner = key.partition(".")
        if sub not in _SUBSPEC_FIELDS:
            raise ScenarioError(
                f"unknown sub-spec {sub!r}; pick from {', '.join(_SUBSPEC_FIELDS)}"
            )
        obj = getattr(spec, sub)
        if obj is None:
            raise ScenarioError(f"scenario {spec.name!r} has no {sub} spec to set")
        if inner not in _spec_field_names(obj):
            raise ScenarioError(
                f"unknown field {inner!r} of {sub}; pick from "
                f"{', '.join(_spec_field_names(obj))}"
            )
        return replace(spec, **{sub: replace(obj, **{inner: value})})
    if key in _PROTECTED_FIELDS:
        raise ScenarioError(f"field {key!r} cannot be overridden")
    if key in _spec_field_names(spec):
        if key in _TUPLE_FIELDS and not isinstance(value, tuple):
            value = (value,)
        return replace(spec, **{key: value})
    for sub in _SUBSPEC_FIELDS:
        obj = getattr(spec, sub)
        if obj is not None and key in _spec_field_names(obj):
            return replace(spec, **{sub: replace(obj, **{key: value})})
    valid = sorted(
        set(_spec_field_names(spec)) - _PROTECTED_FIELDS
        | {
            f"{sub}.{name}"
            for sub in _SUBSPEC_FIELDS
            if getattr(spec, sub, None) is not None
            for name in _spec_field_names(getattr(spec, sub))
        }
    )
    raise ScenarioError(
        f"unknown scenario key {key!r} (axes: "
        f"{', '.join(name for name, _v in spec.axes) or 'none'}; fields include: "
        f"{', '.join(valid[:12])}, ...)"
    )


def _parse_value(text: str) -> Any:
    """Parse one ``--set`` value: literals, with commas making a tuple."""
    import ast

    def one(part: str) -> Any:
        part = part.strip()
        try:
            return ast.literal_eval(part)
        except (ValueError, SyntaxError):
            return part

    if "," in text:
        return tuple(one(part) for part in text.split(",") if part.strip() != "")
    return one(text)


def apply_overrides(
    spec: ScenarioSpec, assignments: Sequence[str]
) -> ScenarioSpec:
    """Apply ``--set key=value`` strings to a spec, returning the new spec.

    ``key`` may name a sweep axis — cross-product or zip — (replacing
    its values), a spec field (``duration_ms``, ``systems``, ...), a
    sub-spec field searched in order (``mtbf_ms`` → ``faults.mtbf_ms``),
    or a dotted sub-spec path (``workload.think_ms``).  Unknown keys
    raise :class:`ScenarioError`.
    """
    for raw in assignments:
        key, sep, text = raw.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ScenarioError(f"--set expects key=value, got {raw!r}")
        value = _parse_value(text)
        axis_names = [name for name, _values in spec.axes]
        zip_names = [name for name, _values in spec.zip_axes]
        if key in axis_names:
            values = value if isinstance(value, tuple) else (value,)
            spec = replace(
                spec,
                axes=tuple(
                    (name, values if name == key else old)
                    for name, old in spec.axes
                ),
            )
        elif key in zip_names:
            # Replacing one zip axis's values; the equal-length check
            # still runs (fail-fast) when the sweep expands.
            values = value if isinstance(value, tuple) else (value,)
            spec = replace(
                spec,
                zip_axes=tuple(
                    (name, values if name == key else old)
                    for name, old in spec.zip_axes
                ),
            )
        else:
            spec = _set_key(spec, key, value)
    return spec


def _fold_point(spec: ScenarioSpec, point: Dict[str, Any]) -> ScenarioSpec:
    """Fold extra axis values (beyond system/n_servers/seed) into the spec."""
    for key, value in point.items():
        spec = _set_key(spec, key, value)
    return spec


# ----------------------------------------------------------------------
# Generic cell body: build + run + measure one sweep point
# ----------------------------------------------------------------------
def _game_config(game: GameSpec, n_servers: int) -> GameConfig:
    return GameConfig(
        rooms=game.rooms or n_servers,
        players_per_room=game.players_per_room,
        shared_items_per_room=game.shared_items_per_room,
    )


def _tpcc_config(tpcc: TpccSpec, n_servers: int) -> TpccConfig:
    return TpccConfig(
        districts=tpcc.districts or n_servers,
        customers_per_district=tpcc.customers_per_district,
    )


def _geometric_weights(n_rooms: int) -> List[float]:
    """Geometric hot/cold room skew (room 0 hottest).

    Skewed write traffic is what incremental checkpoints exploit: cold
    rooms' subtrees go unchanged between intervals and are skipped.
    """
    return [0.5**i for i in range(n_rooms)]


def _metric_values(metrics: Tuple[str, ...], result: Any) -> Any:
    values = tuple(getattr(result, name) for name in metrics)
    return values[0] if len(values) == 1 else values


def run_point(spec: ScenarioSpec, **point: Any) -> Any:
    """Run one sweep point of a generic scenario (the shared cell body).

    Reserved point keys: ``system``, ``n_servers``, ``seed``.  Any other
    key is folded into the matching spec/sub-spec field (that is how
    axes like ``clients`` or ``mtbf_ms`` parameterize the run).  Returns
    the point's plain-data result (metrics value(s) or a run dict),
    exactly as the historical per-figure cell functions did.
    """
    system = str(point.pop("system", spec.systems[0] if spec.systems else "aeon"))
    n_servers = int(point.pop("n_servers", 0) or spec.servers or 1)
    seed = int(point.pop("seed", spec.seeds[0]))
    if point:
        spec = _fold_point(spec, point)
    sizing = SCALES[spec.scale]
    built = build_scenario(spec, sizing, system, n_servers, seed)
    return built()


def build_scenario(
    spec: ScenarioSpec, sizing: Scale, system: str, n_servers: int, seed: int
) -> Callable[[], Any]:
    """Wire one sweep point from the spec; returns its runner thunk.

    Dispatches on the spec's fault/elastic/app declarations to the
    matching builder — each builds testbed + app + clients (+ fault or
    elasticity machinery), runs the simulation and returns plain data.
    """
    if spec.faults.kind != "none":
        return lambda: _fault_run(spec, sizing, system, n_servers, seed)
    if spec.elastic is not None:
        return lambda: _elastic_run(spec, sizing, system, n_servers, seed)
    if spec.app == "game":
        return lambda: _game_point(spec, sizing, system, n_servers, seed)
    if spec.app == "tpcc":
        return lambda: _tpcc_point(spec, sizing, system, n_servers, seed)
    if spec.app == "mixed":
        return lambda: _mixed_run(spec, sizing, system, n_servers, seed)
    raise ScenarioError(f"unknown app {spec.app!r}; pick game, tpcc or mixed")


def _game_point(
    spec: ScenarioSpec, sizing: Scale, system: str, n_servers: int, seed: int
) -> Any:
    """Closed-loop game run → metric value(s) (the fig5a/fig5b wiring)."""
    wl = spec.workload
    n_clients = wl.clients or (
        (wl.clients_per_server or sizing.game_clients_per_server) * n_servers
    )
    result, _tb, _app = run_game(
        system,
        n_servers,
        n_clients=n_clients,
        duration_ms=spec.duration_ms or sizing.game_duration_ms,
        warmup_ms=spec.warmup_ms or sizing.game_warmup_ms,
        think_ms=wl.think_ms,
        config=_game_config(spec.game, n_servers),
        seed=seed,
    )
    return _metric_values(spec.metrics, result)


def _tpcc_run(
    system: str,
    n_servers: int,
    n_clients: int,
    duration_ms: float,
    warmup_ms: float,
    seed: int = 0,
    think_ms: float = 5.0,
    config: Optional[TpccConfig] = None,
):
    """Build + drive + measure one TPC-C deployment (shared cell core)."""
    testbed = make_testbed(system, n_servers, seed=seed)
    config = config or TpccConfig(districts=n_servers, customers_per_district=10)
    deployment = build_tpcc(
        testbed.runtime,
        config,
        multi_ownership=(system == "aeon"),
        servers=testbed.servers,
        colocate=system in ("aeon", "aeon_so", "eventwave"),
    )
    workload = TpccWorkload(deployment, system)
    clients = ClosedLoopClients(
        testbed.runtime,
        workload.sample_op,
        n_clients=n_clients,
        think_ms=think_ms,
        rng=testbed.rng,
        stop_at_ms=duration_ms,
    )
    clients.start()
    testbed.sim.run(until=duration_ms + 15000.0)
    result = measure(system, testbed, n_clients, warmup_ms, duration_ms)
    result.errors = len(clients.errors)
    return result, testbed, deployment


def _tpcc_point(
    spec: ScenarioSpec, sizing: Scale, system: str, n_servers: int, seed: int
) -> Any:
    """Closed-loop TPC-C run → metric value(s) (the fig6a/fig6b wiring)."""
    wl = spec.workload
    n_clients = wl.clients or (
        (wl.clients_per_server or sizing.tpcc_clients_per_server) * n_servers
    )
    result, _tb, _dep = _tpcc_run(
        system,
        n_servers,
        n_clients=n_clients,
        duration_ms=spec.duration_ms or sizing.tpcc_duration_ms,
        warmup_ms=spec.warmup_ms or sizing.tpcc_warmup_ms,
        seed=seed,
        think_ms=wl.think_ms,
        config=_tpcc_config(spec.tpcc, n_servers),
    )
    return _metric_values(spec.metrics, result)


def _fault_run(
    spec: ScenarioSpec, sizing: Scale, system: str, n_servers: int, seed: int
) -> Dict[str, object]:
    """Game + checkpoints + detector + faults → availability run dict.

    ``faults.kind == "crash"`` reproduces the fig10 single mid-run
    fail-stop timeline; ``"churn"`` reproduces the fig11 sustained
    crash/restart churn scored against the windowed availability SLO.
    The wiring (and the returned dicts) are byte-identical to the
    historical ``fig10_run``/``fig11_run`` drivers.

    ``"split_brain"`` / ``"partition_recovery"`` cut the detector and
    eManager off from one server (clients still reach it — an
    *asymmetric* partition) and exercise the honest-failure knobs:
    fencing epochs, step-down flushes and rolled-back-write accounting.
    """
    f = spec.faults
    if f.kind not in ("crash", "churn", "split_brain", "partition_recovery"):
        raise ScenarioError(f"unknown fault kind {f.kind!r}")
    churn = f.kind == "churn"
    partition = f.kind in ("split_brain", "partition_recovery")
    honest = f.fencing or f.honest_recovery or f.crash_drops_state
    duration = spec.duration_ms or (
        sizing.churn_duration_ms if churn else sizing.fault_duration_ms
    )
    testbed = make_testbed(system, n_servers, seed=seed)
    runtime = testbed.runtime
    config = _game_config(spec.game, n_servers)
    app = build_game(runtime, config, system, servers=testbed.servers)
    if spec.game.room_weights == "geometric":
        app.set_room_weights(_geometric_weights(len(app.rooms)))

    storage = CloudStorage(testbed.sim)
    manager = EManager(runtime, storage, None, M3_LARGE, max_concurrent_migrations=8)
    detector = FailureDetector(
        testbed.sim,
        testbed.network,
        testbed.cluster,
        heartbeat_interval_ms=f.heartbeat_ms,
        lease_ms=f.lease_ms,
        check_interval_ms=f.check_ms,
    )
    checkpoint_ms = f.checkpoint_ms or (
        sizing.churn_checkpoint_ms if churn else sizing.fault_checkpoint_ms
    )
    manager.enable_fault_tolerance(
        detector,
        checkpoint_interval_ms=checkpoint_ms,
        roots=[room.cid for room in app.rooms],
        # Orleans has no global lock order: a subtree-locking snapshot
        # deadlocks against its per-call turn locks, so it gets the
        # per-grain (fuzzy) persistence real Orleans offers.
        consistent_checkpoints=(system != "orleans"),
        checkpoint_mode=f.checkpoint_mode,
        fencing=f.fencing,
        # False means "unset" here: the eManager then defaults honest
        # recovery to the fencing flag, so fencing alone is coherent.
        honest_recovery=(f.honest_recovery or None),
        crash_drops_state=f.crash_drops_state,
        fence_grace_ms=f.fence_grace_ms,
    )
    detector.start()

    if churn:
        churn_start = f.churn_start_ms or sizing.churn_start_ms
        restart_ms = f.restart_ms if f.restart_ms != (0.0, 0.0) else sizing.churn_restart_ms
        schedule = random_churn(
            [server.name for server in testbed.servers],
            duration,
            testbed.rng,
            mean_time_between_crashes_ms=f.mtbf_ms or sizing.churn_mtbf_ms,
            restart_delay_ms=restart_ms,
            start_ms=churn_start,
        )
    elif partition:
        # Asymmetric cut: the detector and eManager lose the victim, but
        # clients (in neither group) still reach it — the old owner keeps
        # receiving traffic while recovery re-places its subtrees.
        victim = testbed.servers[f.victim].name
        partition_at = duration * f.partition_frac
        if f.partition_ms:
            partition_len = f.partition_ms
        elif f.kind == "split_brain":
            # Never heals within the run (including the drain tail).
            partition_len = duration + 3000.0 - partition_at
        else:
            # partition_recovery: heal lands inside the step-down grace
            # window — mid-recovery, after declaration, before restore.
            partition_len = f.lease_ms + f.check_ms + 0.5 * f.fence_grace_ms
        schedule = FaultSchedule(
            [
                NetworkPartition(
                    partition_at,
                    partition_len,
                    group_a=("~fdetector", "~emanager"),
                    group_b=(victim,),
                )
            ]
        )
    else:
        victim = testbed.servers[f.victim].name
        crash_at = duration * f.crash_frac
        restart_after = duration * f.restart_frac
        schedule = FaultSchedule(
            [ServerCrash(crash_at, victim, restart_after_ms=restart_after)]
        )
    injector = FaultInjector(
        testbed.sim, testbed.network, testbed.cluster, schedule, rng=testbed.rng
    )
    injector.start()

    wl = spec.workload
    clients = ClosedLoopClients(
        runtime,
        app.sample_op,
        n_clients=wl.clients
        or (sizing.churn_clients if churn else sizing.fault_clients),
        think_ms=wl.think_ms,
        rng=testbed.rng,
        stop_at_ms=duration,
        max_retries=wl.max_retries,
    )
    clients.start()
    testbed.sim.run(until=duration + 3000.0)
    detector.stop()
    manager.stop()

    goodput = runtime.latency.windowed_count(
        f.window_ms, duration, exclude_tag=FAILED_TAG
    )
    p99 = runtime.latency.windowed_percentile(
        99.0, f.window_ms, duration, exclude_tag=FAILED_TAG
    )
    detections = [
        {
            "server": d.server,
            "detected_at_ms": d.detected_at_ms,
            "latency_ms": d.latency_ms,
        }
        for d in detector.detections
    ]
    if partition:
        return {
            "system": system,
            "duration_ms": duration,
            "partition_at_ms": partition_at,
            "partition_heal_ms": partition_at + partition_len,
            "victim": victim,
            "fencing": f.fencing,
            "goodput": goodput.points,
            "p99": p99.points,
            "events_failed": runtime.events_failed,
            "client_errors": len(clients.errors),
            "client_retries": clients.retries,
            "detections": detections,
            "false_detections": manager.false_detections,
            "lost_updates": runtime.writes_rolled_back,
            "fenced_writes": (
                manager.fencing.rejected if manager.fencing is not None else 0
            ),
            "flush_restores": manager.flush_restores,
            "contexts_recovered": manager.contexts_recovered,
            "recoveries": manager.recovery_log,
            "checkpoints_taken": manager.checkpoints_taken,
            "fault_log": injector.log,
        }
    if not churn:
        result = {
            "system": system,
            "duration_ms": duration,
            "crash_at_ms": crash_at,
            "restart_at_ms": crash_at + restart_after,
            "victim": victim,
            "goodput": goodput.points,
            "p99": p99.points,
            "events_failed": runtime.events_failed,
            "client_errors": len(clients.errors),
            "client_retries": clients.retries,
            "detections": detections,
            "recoveries": manager.recovery_log,
            "contexts_recovered": manager.contexts_recovered,
            "checkpoints_taken": manager.checkpoints_taken,
            "fault_log": injector.log,
        }
        if honest:
            # Conditional: legacy fig10 payloads stay byte-identical.
            result["lost_work"] = runtime.writes_rolled_back
        return result
    slo = availability_slo(
        goodput.points,
        p99.points,
        baseline_from_ms=churn_start * 0.3,
        baseline_to_ms=churn_start,
        eval_from_ms=churn_start,
        eval_to_ms=duration,
        # A window is available at >=85% of fault-free goodput with p99
        # within 3x of baseline (20 ms floor): strict enough that the
        # detection+recovery gap after each crash shows up, loose enough
        # that steady-state noise does not.
        goodput_fraction=f.goodput_fraction,
        p99_multiplier=f.p99_multiplier,
        p99_floor_ms=f.p99_floor_ms,
        # Lost *work* (acked writes rolled back at crash/recovery) rides
        # along only under honest semantics; None keeps the legacy fig11
        # payload byte-identical.
        lost_work=(runtime.writes_rolled_back if honest else None),
    )
    detect_latencies = [
        d.latency_ms for d in detector.detections if d.latency_ms is not None
    ]
    return {
        "system": system,
        "checkpoint_mode": f.checkpoint_mode,
        "duration_ms": duration,
        "churn_start_ms": churn_start,
        "crashes": len(schedule),
        "goodput": goodput.points,
        "p99": p99.points,
        "slo": slo.as_dict(),
        "detections": len(detector.detections),
        "mean_detection_latency_ms": mean(detect_latencies),
        "redeclarations": detector.redeclarations,
        "recoveries": manager.recoveries,
        "contexts_recovered": manager.contexts_recovered,
        "contexts_restored_without_checkpoint": (
            manager.contexts_restored_without_checkpoint
        ),
        "cache_invalidations": manager.cache_invalidations,
        "events_failed": runtime.events_failed,
        "client_errors": len(clients.errors),
        "client_retries": clients.retries,
        "checkpoints_taken": manager.checkpoints_taken,
        "checkpoints_skipped": manager.checkpoints_skipped,
        "checkpoint_bytes_written": manager.checkpoint_bytes_written,
        "recovery_log": manager.recovery_log,
        "fault_log": injector.log,
    }


def _ramp_profile(wl: WorkloadSpec, duration_ms: float) -> RampProfile:
    if wl.profile == "diurnal":
        return RampProfile.diurnal(
            duration_ms,
            machines=wl.machines,
            min_per_machine=wl.min_per_machine,
            max_per_machine=wl.max_per_machine,
            cycles=wl.cycles,
        )
    if wl.profile == "normal_peak":
        return RampProfile.normal_peak(
            duration_ms,
            machines=wl.machines,
            min_per_machine=wl.min_per_machine,
            max_per_machine=wl.max_per_machine,
        )
    raise ScenarioError(f"unknown ramp profile {wl.profile!r}")


def _elastic_run(
    spec: ScenarioSpec, sizing: Scale, system: str, n_servers: int, seed: int
) -> Dict[str, object]:
    """Elastic game run: eManager + SLA policy + profile-following load.

    The generic counterpart of the fig7 ``_elastic_game_run`` cell for
    spec-declared elastic scenarios (e.g. the diurnal wave): the fleet
    starts at ``n_servers`` and the eManager grows/shrinks it against
    ``spec.elastic``'s SLA policy while clients follow the workload's
    ramp profile.
    """
    e = spec.elastic
    wl = spec.workload
    duration = spec.duration_ms or sizing.elastic_duration_ms
    itype = INSTANCE_TYPES[spec.instance] if spec.instance else M3_LARGE
    testbed = make_testbed(system, n_servers, instance_type=itype, seed=seed)
    testbed.cluster.boot_delay_ms = e.boot_delay_ms
    config = _game_config(spec.game, n_servers)
    app = build_game(testbed.runtime, config, system, servers=testbed.servers)
    if spec.game.room_weights == "geometric":
        app.set_room_weights(_geometric_weights(len(app.rooms)))
    storage = CloudStorage(testbed.sim)
    policy = SLAPolicy(
        sla_ms=e.sla_ms,
        scale_out_step=e.scale_out_step,
        min_servers=e.min_servers,
        max_servers=e.max_servers,
        scale_in_fraction=e.scale_in_fraction,
        headroom=e.headroom,
    )
    manager = EManager(
        testbed.runtime,
        storage,
        policy,
        itype,
        report_interval_ms=e.report_interval_ms,
        max_concurrent_migrations=e.max_concurrent_migrations,
    )
    manager.start()
    profile = _ramp_profile(wl, duration)
    clients = DynamicClients(
        testbed.runtime,
        app.sample_op,
        profile,
        think_ms=wl.think_ms,
        rng=testbed.rng,
        stop_at_ms=duration,
    )
    clients.start()
    testbed.sim.run(until=duration + (spec.drain_ms or 5000.0))
    manager.stop()
    latency_series = testbed.runtime.latency.windowed_mean(1000.0, duration)
    server_series = manager.server_count_series
    avg_servers = server_series.mean_value()
    report = sla_report(
        spec.name, testbed.runtime.latency, e.sla_ms, avg_servers, since_ms=0.0
    )
    return {
        "system": system,
        "latency_series": latency_series.points,
        "server_series": server_series.points,
        "client_series": clients.active_series,
        "sla": report,
        "avg_servers": avg_servers,
        "peak_servers": server_series.max_value(),
        "peak_clients": profile.peak(),
    }


#: Tag sets splitting the mixed co-tenancy latency stream per app.
GAME_TAGS = ("private", "shared", "readonly")
TPCC_TAGS = ("new_order", "payment", "order_status", "delivery", "stock_level")


def _mixed_run(
    spec: ScenarioSpec, sizing: Scale, system: str, n_servers: int, seed: int
) -> Dict[str, object]:
    """Game + TPC-C co-tenants on one fleet → per-app and combined metrics.

    Both applications deploy on the *same* servers and runtime; two
    closed-loop client populations (with distinct RNG stream prefixes)
    drive them concurrently.  Per-app numbers come from splitting the
    shared latency stream by *top-level* operation tag; the combined
    numbers count every completion, including TPC-C sub-transactions
    (``new_order/sub``), so the per-app splits sum to at most the
    combined count.
    """
    if system == "eventwave":
        # EventWave sequences every event through the single root of ONE
        # ownership tree; two co-tenant applications mean two roots
        # ('castle' + 'warehouse'), which its runtime model rejects on
        # every call.  Co-tenancy is simply not expressible there.
        raise ScenarioError(
            "mixed co-tenancy cannot run on 'eventwave': its runtime "
            "requires exactly one root context, and two applications "
            "create two ownership roots"
        )
    wl_game, wl_tpcc = spec.workload, spec.tpcc_workload
    duration = spec.duration_ms or sizing.tpcc_duration_ms
    warmup = spec.warmup_ms or sizing.tpcc_warmup_ms
    testbed = make_testbed(system, n_servers, seed=seed)
    game = build_game(
        testbed.runtime, _game_config(spec.game, n_servers), system,
        servers=testbed.servers,
    )
    deployment = build_tpcc(
        testbed.runtime,
        _tpcc_config(spec.tpcc, n_servers),
        multi_ownership=(system == "aeon"),
        servers=testbed.servers,
        colocate=system in ("aeon", "aeon_so", "eventwave"),
    )
    workload = TpccWorkload(deployment, system)
    n_game = wl_game.clients or (
        (wl_game.clients_per_server or sizing.game_clients_per_server) * n_servers
    )
    n_tpcc = wl_tpcc.clients or (
        (wl_tpcc.clients_per_server or sizing.tpcc_clients_per_server) * n_servers
    )
    game_clients = ClosedLoopClients(
        testbed.runtime,
        game.sample_op,
        n_clients=n_game,
        think_ms=wl_game.think_ms,
        rng=testbed.rng,
        stop_at_ms=duration,
        name_prefix=wl_game.name_prefix,
    )
    tpcc_clients = ClosedLoopClients(
        testbed.runtime,
        workload.sample_op,
        n_clients=n_tpcc,
        think_ms=wl_tpcc.think_ms,
        rng=testbed.rng,
        stop_at_ms=duration,
        name_prefix=wl_tpcc.name_prefix,
    )
    game_clients.start()
    tpcc_clients.start()
    testbed.sim.run(until=duration + (spec.drain_ms or 15000.0))
    combined = measure(system, testbed, n_game + n_tpcc, warmup, duration)

    window_s = (duration - warmup) / 1000.0

    def split(tags: Tuple[str, ...]) -> Dict[str, float]:
        lats = testbed.runtime.latency.latencies_between(warmup, duration, tags=tags)
        lats.sort()
        return {
            "completed": len(lats),
            "throughput_per_s": len(lats) / window_s if window_s > 0 else 0.0,
            "mean_latency_ms": mean(lats),
            "p99_latency_ms": percentile(lats, 99.0, presorted=True),
        }

    return {
        "system": system,
        "n_servers": n_servers,
        "game_clients": n_game,
        "tpcc_clients": n_tpcc,
        "game": split(GAME_TAGS),
        "tpcc": split(TPCC_TAGS),
        "combined": {
            "completed": combined.completed,
            "throughput_per_s": combined.throughput_per_s,
            "mean_latency_ms": combined.mean_latency_ms,
            "p99_latency_ms": combined.p99_latency_ms,
        },
        "game_errors": len(game_clients.errors),
        "tpcc_errors": len(tpcc_clients.errors),
    }


# ----------------------------------------------------------------------
# Custom cell bodies (the figures whose wiring predates — and outlives —
# the generic builder: elasticity setups, migration pumps, ablations)
# ----------------------------------------------------------------------
def _elastic_game_run(
    setup: str,
    scale: str,
    seed: int = 0,
    sla_ms: float = 10.0,
) -> Dict[str, object]:
    """One §6.2 run: ``setup`` is 'elastic' or a fixed server count."""
    sizing = SCALES[scale]
    duration = sizing.elastic_duration_ms
    elastic = setup == "elastic"
    start_servers = 8 if elastic else int(setup)
    testbed = make_testbed("aeon", start_servers, instance_type=M1_SMALL, seed=seed)
    testbed.cluster.boot_delay_ms = 1500.0
    # 32 rooms so the fleet can usefully grow beyond 16 servers.
    config = GameConfig(rooms=32, players_per_room=4, shared_items_per_room=2)
    app = build_game(testbed.runtime, config, "aeon", servers=testbed.servers)
    manager = None
    if elastic:
        storage = CloudStorage(testbed.sim)
        policy = SLAPolicy(sla_ms=sla_ms, scale_out_step=4, min_servers=4,
                           max_servers=40, scale_in_fraction=0.25,
                           headroom=0.45)
        manager = EManager(
            testbed.runtime, storage, policy, M1_SMALL,
            report_interval_ms=1000.0, max_concurrent_migrations=8,
        )
        manager.start()
    profile = RampProfile.normal_peak(
        duration, machines=8, min_per_machine=1, max_per_machine=16
    )
    clients = DynamicClients(
        testbed.runtime,
        app.sample_op,
        profile,
        think_ms=12.0,
        rng=testbed.rng,
        stop_at_ms=duration,
    )
    clients.start()
    testbed.sim.run(until=duration + 5000.0)
    if manager is not None:
        manager.stop()
    # Latency time series (1 s buckets) and server-count series.
    latency_series = testbed.runtime.latency.windowed_mean(1000.0, duration)
    if manager is not None:
        server_series = manager.server_count_series
        avg_servers = server_series.mean_value()
    else:
        count = len(testbed.cluster.alive_servers())
        server_series = None
        avg_servers = float(count)
    report = sla_report(
        setup, testbed.runtime.latency, sla_ms, avg_servers, since_ms=0.0
    )
    return {
        "setup": setup,
        "latency_series": latency_series.points,
        "server_series": server_series.points if server_series else None,
        "client_series": clients.active_series,
        "sla": report,
    }


def _elastic_cell(setup: str, rep: int, scale: str, seed: int) -> Dict[str, object]:
    """One (setup, repetition) sub-cell of fig7/table1.

    ``rep`` shards a setup into independent seed replicas (``seed +
    rep``) so ``--set rep=0,1,2`` splits the two longest-running
    experiments into cells ``--jobs`` can actually parallelise.  The
    default single ``rep=0`` reproduces the historical monolithic cell
    byte for byte.
    """
    return _elastic_game_run(setup, scale, seed + rep)


def _fig8_cell(
    n_migrations: int, scale: str, seed: int
) -> List[Tuple[float, float]]:
    """One fig8 run: throughput series while migrating ``n_migrations`` Rooms."""
    sizing = SCALES[scale]
    duration = sizing.migration_duration_ms
    testbed = make_testbed("aeon", 20, instance_type=M1_SMALL, seed=seed)
    config = GameConfig(rooms=20, players_per_room=4, shared_items_per_room=2)
    app = build_game(testbed.runtime, config, "aeon", servers=testbed.servers)
    storage = CloudStorage(testbed.sim)
    host = Server(testbed.sim, "~emanager", M3_LARGE)
    testbed.network.register(host.name, host.mailbox, M3_LARGE)
    coordinator = MigrationCoordinator(testbed.runtime, storage, host)
    clients = ClosedLoopClients(
        testbed.runtime,
        app.sample_op,
        n_clients=120,
        think_ms=10.0,
        rng=testbed.rng,
        stop_at_ms=duration,
    )
    clients.start()

    def migrate_rooms(n=n_migrations, tb=testbed, coord=coordinator):
        yield tb.sim.timeout(duration * 0.4)
        handles = []
        for i in range(n):
            src_room = f"room-{i}"
            dst = tb.servers[(i + 1) % len(tb.servers)]
            if tb.runtime.placement[src_room] == dst.name:
                dst = tb.servers[(i + 2) % len(tb.servers)]
            handles.append(coord.migrate(src_room, dst))
        for handle in handles:
            yield handle

    testbed.sim.process(migrate_rooms())
    testbed.sim.run(until=duration + 5000.0)
    window = testbed.runtime.throughput.windowed_rate(250.0, duration)
    return window.points


def _fig9_cell(itype_name: str, size_bytes: int, scale: str, seed: int) -> float:
    """One fig9 grid point: eManager migration throughput (contexts/s)."""
    sizing = SCALES[scale]
    batch = sizing.emanager_batch
    itype = INSTANCE_TYPES[itype_name]
    testbed = make_testbed("aeon", 2, instance_type=itype, seed=seed)

    class Payload(Room):
        pass

    Payload.size_bytes = size_bytes
    refs = []
    for i in range(batch):
        refs.append(
            testbed.runtime.create_context(
                Payload, server=testbed.servers[0],
                name=f"payload-{i}", args=(i,),
            )
        )
    storage = CloudStorage(testbed.sim)
    host = Server(testbed.sim, "~emanager", itype)
    testbed.network.register(host.name, host.mailbox, itype)
    coordinator = MigrationCoordinator(testbed.runtime, storage, host)

    def pump():
        window = 4  # concurrent migrations in flight
        pending = []
        for ref in refs:
            pending.append(coordinator.migrate(ref.cid, testbed.servers[1]))
            if len(pending) >= window:
                yield pending.pop(0)
        for handle in pending:
            yield handle

    start = testbed.sim.now
    testbed.sim.run_process(pump())
    elapsed_s = (testbed.sim.now - start) / 1000.0
    return batch / elapsed_s if elapsed_s > 0 else 0.0


def _massive_run(flavor: str, scale: str, seed: int) -> Dict[str, object]:
    """One massive-tier run: bulk-registered leaves under closed-loop load.

    The scale preset's ``massive_*`` sizing drives everything: a
    ``massive_contexts``-leaf tree (see :mod:`repro.apps.massive`) is
    registered through the columnar bulk path — no instances, no locks —
    and ``massive_clients`` closed-loop clients sample uniformly over
    the population, materializing only the leaves they actually touch.
    The latency recorder runs with a low sampling threshold so
    percentile queries answer from its bounded reservoir, and the
    returned ``checksum`` (materialized leaf state in sorted-cid order
    plus the completion count) pins the run's determinism.
    """
    sizing = SCALES[scale]
    duration = sizing.massive_duration_ms
    testbed = make_testbed("aeon", sizing.massive_servers, seed=seed)
    # Swap the recorder before any event completes: massive runs engage
    # reservoir sampling almost immediately instead of at the default
    # exact-mode threshold, bounding metric memory at any event count.
    testbed.runtime.latency = LatencyRecorder(sample_threshold=65536)
    config = MassiveConfig(contexts=sizing.massive_contexts, flavor=flavor)
    app = build_massive(testbed.runtime, config, testbed.servers)
    clients = ClosedLoopClients(
        testbed.runtime,
        app.sample_op,
        n_clients=sizing.massive_clients,
        think_ms=sizing.massive_think_ms,
        rng=testbed.rng,
        stop_at_ms=duration,
    )
    clients.start()
    testbed.sim.run(until=duration + 2000.0)
    result = measure(
        "aeon", testbed, clients.n_clients, sizing.massive_warmup_ms, duration
    )
    runtime = testbed.runtime
    return {
        "flavor": flavor,
        "contexts": runtime.context_count(),
        "materialized": len(runtime.instances),
        "servers": sizing.massive_servers,
        "clients": clients.n_clients,
        "completed": result.completed,
        "throughput_per_s": result.throughput_per_s,
        "mean_latency_ms": result.mean_latency_ms,
        "p50_latency_ms": result.p50_latency_ms,
        "p99_latency_ms": result.p99_latency_ms,
        "sampling": runtime.latency.sampling,
        "errors": len(clients.errors),
        "checksum": run_checksum(runtime, app),
    }


def _massive_game_cell(rep: int, scale: str, seed: int) -> Dict[str, object]:
    """One repetition of the massive game-flavor run (``seed + rep``)."""
    return _massive_run("game", scale, seed + rep)


def _massive_tpcc_cell(rep: int, scale: str, seed: int) -> Dict[str, object]:
    """One repetition of the massive TPC-C-flavor run (``seed + rep``)."""
    return _massive_run("tpcc", scale, seed + rep)


def _ablation_cell(early_release: bool, scale: str, seed: int) -> float:
    """One ablation run: TPC-C throughput with the given release mode."""
    sizing = SCALES[scale]
    costs = DEFAULT_COSTS.with_(early_release=early_release)
    testbed = make_testbed("aeon_so", 4, seed=seed, costs=costs)
    config = TpccConfig(districts=4, customers_per_district=10)
    deployment = build_tpcc(
        testbed.runtime, config, False, servers=testbed.servers
    )
    workload = TpccWorkload(deployment, "aeon_so")
    clients = ClosedLoopClients(
        testbed.runtime, workload.sample_op,
        n_clients=sizing.tpcc_clients_per_server * 4,
        think_ms=5.0, rng=testbed.rng,
        stop_at_ms=sizing.tpcc_duration_ms,
    )
    clients.start()
    testbed.sim.run(until=sizing.tpcc_duration_ms + 15000.0)
    result = measure("aeon_so", testbed, clients.n_clients,
                     sizing.tpcc_warmup_ms, sizing.tpcc_duration_ms)
    return result.throughput_per_s


# ----------------------------------------------------------------------
# Assembly: cell results (in cell order) -> figure data
# ----------------------------------------------------------------------
def _assemble_curve(spec, cells, results):
    """``{system: [(x, value), ...]}`` — systems × one x axis (+ seeds).

    With a swept ``seed`` axis the metric is averaged across seeds per
    (system, x) point; a single seed passes values through untouched.
    """
    curves: Dict[str, List[Tuple[Any, Any]]] = {s: [] for s in spec.systems}
    grouped: Dict[Tuple, List[Any]] = {}
    order: List[Tuple] = []
    for cell, result in zip(cells, results):
        group = cell.key[:2]
        if group not in grouped:
            grouped[group] = []
            order.append(group)
        grouped[group].append(result.value)
    for system, x in order:
        values = grouped[(system, x)]
        value = values[0] if len(values) == 1 else mean(values)
        curves[system].append((x, value))
    return curves


def _assemble_xy(spec, cells, results):
    """``{system: [metric-tuple, ...]}`` in sweep order (fig5b/fig6b)."""
    curves: Dict[str, List[Any]] = {s: [] for s in spec.systems}
    for cell, result in zip(cells, results):
        curves[cell.key[0]].append(result.value)
    return curves


def _assemble_by_first_key(spec, cells, results):
    """``{key[0]: run}`` in cell order (fig10-style per-system runs)."""
    return {
        cell.key[0]: result.value for cell, result in zip(cells, results)
    }


_GENERIC_ASSEMBLERS = {
    "curve": _assemble_curve,
    "xy": _assemble_xy,
    "runs": _assemble_by_first_key,
    "elastic": _assemble_by_first_key,
    "mixed": _assemble_by_first_key,
}


def _rep_groups(spec, cells, results):
    """Group (setup, rep) elastic sub-cell results by setup, in axis order."""
    by_setup: Dict[str, List[Any]] = {}
    order: List[str] = []
    for cell, result in zip(cells, results):
        setup = cell.key[0]
        if setup not in order:
            order.append(setup)
            by_setup[setup] = []
        by_setup[setup].append(result.value)
    return order, by_setup


def _aggregate_elastic_runs(runs: List[Dict[str, object]]) -> Dict[str, object]:
    """Average multi-rep elastic runs (single-rep passes through untouched).

    The latency series is averaged pointwise by window time; the
    server/client series stay rep 0's (fleet decisions are per-replica
    trajectories, not averageable); SLA scalars average across reps.
    """
    if len(runs) == 1:
        return runs[0]
    by_time: Dict[float, List[float]] = {}
    for run in runs:
        for t, value in run["latency_series"]:
            by_time.setdefault(t, []).append(value)
    first = runs[0]
    reports = [run["sla"] for run in runs]
    return {
        "setup": first["setup"],
        "reps": len(runs),
        "latency_series": [(t, mean(vals)) for t, vals in sorted(by_time.items())],
        "server_series": first["server_series"],
        "client_series": first["client_series"],
        "sla": {
            "setup": reports[0].setup,
            "sla_ms": reports[0].sla_ms,
            "total_requests": sum(r.total_requests for r in reports),
            "violations": sum(r.violations for r in reports),
            "violation_pct": mean([r.violation_pct for r in reports]),
            "avg_servers": mean([r.avg_servers for r in reports]),
        },
    }


def _assemble_fig7(spec, cells, results):
    """``{setup: run}`` — multi-rep setups aggregate via the rep shards."""
    order, by_setup = _rep_groups(spec, cells, results)
    return {setup: _aggregate_elastic_runs(by_setup[setup]) for setup in order}


def _assemble_table1(spec, cells, results):
    """Table 1 rows: one per setup, averaged across rep shards."""
    order, by_setup = _rep_groups(spec, cells, results)
    rows = []
    for setup in order:
        runs = by_setup[setup]
        if len(runs) == 1:
            report = runs[0]["sla"]
            violation_pct = report.violation_pct
            avg_servers = report.avg_servers
            requests = report.total_requests
        else:
            reports = [run["sla"] for run in runs]
            violation_pct = mean([r.violation_pct for r in reports])
            avg_servers = mean([r.avg_servers for r in reports])
            requests = sum(r.total_requests for r in reports)
        rows.append(
            {
                "setup": f"{setup}-server" if setup != "elastic" else "Elastic",
                "violation_pct": violation_pct,
                "avg_servers": avg_servers,
                "requests": requests,
            }
        )
    return rows


def _assemble_fig8(spec, cells, results):
    return {
        f"{cell.key[0]} contexts": result.value
        for cell, result in zip(cells, results)
    }


_FIG9_SIZE_LABELS = {1024: "1KB", 1_000_000: "1MB"}


def _assemble_fig9(spec, cells, results):
    out: Dict[str, Dict[str, float]] = {}
    for cell, result in zip(cells, results):
        itype, size_bytes = cell.key[0], cell.key[1]
        label = _FIG9_SIZE_LABELS.get(size_bytes, f"{size_bytes}B")
        out.setdefault(itype, {})[label] = result.value
    return out


def _assemble_fig11(spec, cells, results):
    systems: Dict[str, object] = {}
    aeon_full = None
    for cell, result in zip(cells, results):
        system, mode = cell.key[0], cell.key[1]
        if mode == "delta":
            systems[system] = result.value
        else:
            aeon_full = result.value
    return {
        "window_ms": spec.faults.window_ms,
        "systems": systems,
        "aeon_full": aeon_full,
    }


def _assemble_ablation(spec, cells, results):
    labels = {True: "chain-release", False: "hold-till-commit"}
    return {
        labels[cell.key[0]]: result.value
        for cell, result in zip(cells, results)
    }


def _assemble_split_brain(spec, cells, results):
    """``{"fenced"/"unfenced": run}`` plus the lost-updates invariant.

    The invariant the scenario exists to prove: **zero** lost updates
    with fencing on (the step-down flush preserves every acked write),
    a **nonzero** count with fencing off (restore rolls back to the
    last periodic checkpoint while the old owner was still serving).
    """
    runs: Dict[str, Dict[str, object]] = {}
    for cell, result in zip(cells, results):
        label = "fenced" if cell.key[1] else "unfenced"
        runs[label] = result.value
    fenced = runs.get("fenced")
    unfenced = runs.get("unfenced")
    return {
        "runs": runs,
        "invariant": {
            "fenced_lost_updates": (
                fenced["lost_updates"] if fenced is not None else None
            ),
            "unfenced_lost_updates": (
                unfenced["lost_updates"] if unfenced is not None else None
            ),
            "zero_loss_with_fencing": (
                fenced is not None and fenced["lost_updates"] == 0
            ),
            "loss_without_fencing": (
                unfenced is not None and unfenced["lost_updates"] > 0
            ),
        },
    }


def _assemble_massive(spec, cells, results):
    """The single run dict (one rep) or ``{rep: run}`` (sharded reps)."""
    if len(results) == 1:
        return results[0].value
    return {f"rep{cell.key[0]}": r.value for cell, r in zip(cells, results)}


def _render_massive(spec, data) -> str:
    runs = [data] if "contexts" in data else list(data.values())
    lines = [spec.title, ""]
    for run in runs:
        lines.append(
            f"  {run['flavor']:>5}: {run['contexts']:,} contexts "
            f"({run['materialized']:,} materialized) on {run['servers']} "
            f"servers, {run['clients']} clients"
        )
        lines.append(
            f"         {run['throughput_per_s']:,.1f} ev/s  "
            f"p50={run['p50_latency_ms']:.2f} ms  "
            f"p99={run['p99_latency_ms']:.2f} ms  "
            f"sampling={run['sampling']}  errors={run['errors']}"
        )
        lines.append(f"         checksum {run['checksum'][:16]}…")
    return "\n".join(lines)


def _assemble_churn_sweep(spec, cells, results):
    rows = []
    runs: Dict[str, object] = {}
    for cell, result in zip(cells, results):
        run = result.value
        mtbf = cell.key[-1]
        runs[f"{run['system']}@{mtbf:g}"] = run
        rows.append(
            {
                "system": run["system"],
                "mtbf_ms": mtbf,
                "crashes": run["crashes"],
                "availability_pct": run["slo"]["availability_pct"],
                "mean_detection_latency_ms": run["mean_detection_latency_ms"],
                "contexts_recovered": run["contexts_recovered"],
                "events_failed": run["events_failed"],
                "checkpoint_bytes_written": run["checkpoint_bytes_written"],
            }
        )
    return {"window_ms": spec.faults.window_ms, "rows": rows, "runs": runs}


def assemble_scenario(spec: ScenarioSpec, cells, results):
    """Assemble cell results (in cell order) into the figure data."""
    if spec.assemble:
        return _resolve(spec.assemble)(spec, cells, results)
    try:
        assembler = _GENERIC_ASSEMBLERS[spec.output]
    except KeyError:
        raise ScenarioError(
            f"scenario {spec.name!r}: no generic assembler for output "
            f"{spec.output!r} and no custom 'assemble' hook"
        ) from None
    return assembler(spec, cells, results)


# ----------------------------------------------------------------------
# Rendering: figure data -> text (keyed off the spec's output shape)
# ----------------------------------------------------------------------
def _render_grid_curve(spec, data) -> str:
    systems = list(data)
    xs = [x for x, _ in data[systems[0]]]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [round(data[s][i][1]) for s in systems])
    return format_table(spec.title, [spec.x_name] + systems, rows)


def _render_xy_curve(spec, data) -> str:
    lines = [spec.title, ""]
    for system, points in data.items():
        lines.append(f"[{system}]")
        for x, y in points:
            lines.append(f"  {x:10.1f}  {y:10.2f}")
        lines.append("")
    return "\n".join(lines)


def _sla_field(sla, name):
    """Read an SLA field from a SlaReport or an aggregated-rep dict."""
    return sla[name] if isinstance(sla, dict) else getattr(sla, name)


def _render_fig7(spec, data) -> str:
    lines = [spec.title, ""]
    for setup, run in data.items():
        values = [v for _t, v in run["latency_series"]]
        lines.append(
            f"  {setup:>8}: mean={mean(values):6.2f} ms  "
            f"peak={max(values) if values else 0:6.2f} ms  "
            f"violations={_sla_field(run['sla'], 'violation_pct'):5.1f}%"
        )
    return "\n".join(lines)


def _render_table1(spec, data) -> str:
    return format_table(
        spec.title,
        ["setup", "% requests > SLA", "avg servers", "requests"],
        [
            [r["setup"], round(r["violation_pct"], 1), round(r["avg_servers"], 1), r["requests"]]
            for r in data
        ],
    )


def _render_fig8(spec, data) -> str:
    lines = [spec.title, ""]
    for label, points in data.items():
        values = [v for _t, v in points]
        steady = mean(values[:4]) if len(values) >= 4 else mean(values)
        dip = min(values) if values else 0.0
        lines.append(f"  {label:>12}: steady={steady:7.1f}/s  dip={dip:7.1f}/s")
    return "\n".join(lines)


def _render_fig9(spec, data) -> str:
    rows = [
        [itype, round(sizes["1KB"], 1), round(sizes["1MB"], 1)]
        for itype, sizes in data.items()
    ]
    return format_table(spec.title, ["instance", "1KB", "1MB"], rows)


def fig10_phases(run: Dict[str, object]) -> Dict[str, float]:
    """Mean goodput of one fig10 run before / during / after the outage.

    ``pre`` skips the first 10% as warmup; ``outage`` spans the crash to
    the end of recovery (or the detector lease window when no recovery
    ran); ``post`` starts 1 s after recovery finished.
    """
    crash = float(run["crash_at_ms"])
    duration = float(run["duration_ms"])
    recovery_end = crash
    for entry in run["recoveries"]:
        finished = entry.get("finished_ms")
        if finished is not None and finished > recovery_end:
            recovery_end = finished
    if recovery_end <= crash:
        recovery_end = crash + 1500.0
    goodput = run["goodput"]
    pre = [v for t, v in goodput if duration * 0.1 <= t < crash]
    outage = [v for t, v in goodput if crash <= t < recovery_end]
    post = [v for t, v in goodput if recovery_end + 1000.0 <= t < duration]
    return {
        "pre": mean(pre),
        "outage": mean(outage),
        "post": mean(post),
        "recovery_end_ms": recovery_end,
    }


def _render_fig10(spec, data) -> str:
    rows = []
    for system, run in data.items():
        phases = fig10_phases(run)
        detections = run["detections"]
        detect_ms = mean(
            [d["latency_ms"] for d in detections if d["latency_ms"] is not None]
        )
        rows.append(
            [
                system,
                round(phases["pre"], 1),
                round(phases["outage"], 1),
                round(phases["post"], 1),
                round(detect_ms, 1),
                run["contexts_recovered"],
                run["events_failed"],
            ]
        )
    return format_table(
        spec.title,
        ["system", "pre-crash", "outage", "recovered", "detect ms", "ctx restored", "failed"],
        rows,
    )


def _render_fig11(spec, data) -> str:
    rows = []
    runs = dict(data["systems"])
    runs["aeon (full ckpt)"] = data["aeon_full"]
    for label, run in runs.items():
        slo = run["slo"]
        rows.append(
            [
                label,
                round(slo["availability_pct"], 1),
                round(slo["baseline_goodput_per_s"], 1),
                round(slo["goodput_target_per_s"], 1),
                round(run["mean_detection_latency_ms"], 1),
                run["contexts_recovered"],
                run["events_failed"],
                run["checkpoints_taken"],
                run["checkpoints_skipped"],
                run["checkpoint_bytes_written"],
            ]
        )
    table = format_table(
        spec.title,
        [
            "system",
            "avail %",
            "base ev/s",
            "target ev/s",
            "detect ms",
            "ctx restored",
            "failed",
            "ckpts",
            "skipped",
            "ckpt bytes",
        ],
        rows,
    )
    delta_bytes = data["systems"]["aeon"]["checkpoint_bytes_written"]
    full_bytes = data["aeon_full"]["checkpoint_bytes_written"]
    saving = 100.0 * (1.0 - delta_bytes / full_bytes) if full_bytes else 0.0
    return (
        table
        + f"\n\ndelta checkpoints: {delta_bytes:,} bytes vs full "
        + f"{full_bytes:,} bytes ({saving:.1f}% saved on identical churn)"
    )


def _render_split_brain(spec, data) -> str:
    rows = []
    for label in ("fenced", "unfenced"):
        run = data["runs"].get(label)
        if run is None:
            continue
        rows.append(
            [
                label,
                run["lost_updates"],
                run["fenced_writes"],
                run["flush_restores"],
                run["contexts_recovered"],
                run["false_detections"],
                run["events_failed"],
                run["client_retries"],
            ]
        )
    table = format_table(
        spec.title,
        ["mode", "lost upd", "fenced wr", "flush rst", "ctx restored",
         "false det", "failed", "retries"],
        rows,
    )
    inv = data["invariant"]
    return (
        table
        + f"\n\nzero lost updates with fencing: {inv['zero_loss_with_fencing']}"
        + f"; lost updates without fencing: {inv['unfenced_lost_updates']}"
    )


def _render_partition_recovery(spec, data) -> str:
    rows = []
    for system, run in data.items():
        rows.append(
            [
                system,
                round(run["partition_at_ms"], 1),
                round(run["partition_heal_ms"], 1),
                run["lost_updates"],
                run["flush_restores"],
                run["contexts_recovered"],
                run["false_detections"],
                run["events_failed"],
            ]
        )
    return format_table(
        spec.title,
        ["system", "cut ms", "heal ms", "lost upd", "flush rst",
         "ctx restored", "false det", "failed"],
        rows,
    )


def _render_ablation(spec, data) -> str:
    return format_table(
        spec.title,
        ["mode", "events/s"],
        [[k, round(v, 1)] for k, v in data.items()],
    )


def _render_churn_sweep(spec, data) -> str:
    rows = [
        [
            r["system"],
            round(r["mtbf_ms"]),
            r["crashes"],
            round(r["availability_pct"], 1),
            round(r["mean_detection_latency_ms"], 1),
            r["contexts_recovered"],
            r["events_failed"],
            r["checkpoint_bytes_written"],
        ]
        for r in data["rows"]
    ]
    return format_table(
        spec.title,
        ["system", "MTBF ms", "crashes", "avail %", "detect ms",
         "ctx restored", "failed", "ckpt bytes"],
        rows,
    )


def _render_mixed(spec, data) -> str:
    rows = []
    for system, run in data.items():
        rows.append(
            [
                system,
                round(run["game"]["throughput_per_s"], 1),
                round(run["game"]["p99_latency_ms"], 2),
                round(run["tpcc"]["throughput_per_s"], 1),
                round(run["tpcc"]["p99_latency_ms"], 2),
                round(run["combined"]["throughput_per_s"], 1),
                run["game_errors"] + run["tpcc_errors"],
            ]
        )
    return format_table(
        spec.title,
        ["system", "game ev/s", "game p99", "tpcc txn/s", "tpcc p99",
         "combined/s", "errors"],
        rows,
    )


def _render_elastic(spec, data) -> str:
    lines = [spec.title, ""]
    for system, run in data.items():
        values = [v for _t, v in run["latency_series"]]
        lines.append(
            f"  {system:>10}: mean={mean(values):6.2f} ms  "
            f"peak={max(values) if values else 0:6.2f} ms  "
            f"violations={_sla_field(run['sla'], 'violation_pct'):5.1f}%  "
            f"servers avg={run['avg_servers']:.1f} peak={run['peak_servers']:.0f}  "
            f"clients peak={run['peak_clients']}"
        )
    return "\n".join(lines)


_GENERIC_RENDERERS = {
    "curve": _render_grid_curve,
    "xy": _render_xy_curve,
    "runs": _render_fig10,
    "elastic": _render_elastic,
    "mixed": _render_mixed,
}


def render_scenario(spec: ScenarioSpec, data) -> str:
    """Human-readable rendering of a scenario's assembled data."""
    if spec.render:
        return _resolve(spec.render)(spec, data)
    renderer = _GENERIC_RENDERERS.get(spec.output)
    if renderer is None:
        return repr(data)
    return renderer(spec, data)


# ----------------------------------------------------------------------
# JSON conversion + the one-call driver
# ----------------------------------------------------------------------
def _jsonable(value: Any) -> Any:
    """Recursively convert experiment results to JSON-encodable data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def prepare_scenario(
    scenario: Any,
    scale: Optional[str] = None,
    seed: Optional[int] = None,
    overrides: Sequence[str] = (),
) -> ScenarioSpec:
    """Resolve a name/spec and apply scale/seed/``--set`` overrides."""
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    if scale is not None:
        spec = replace(spec, scale=scale)
    if spec.scale not in SCALES:
        raise ScenarioError(
            f"unknown scale {spec.scale!r}; pick from {', '.join(sorted(SCALES))}"
        )
    if seed is not None:
        spec = replace(spec, seeds=(seed,))
    if overrides:
        spec = apply_overrides(spec, overrides)
    return spec


def run_scenario(
    scenario: Any,
    scale: Optional[str] = None,
    seed: Optional[int] = None,
    jobs: int = 1,
    overrides: Sequence[str] = (),
    pool: Any = None,
    cache: Optional[str] = "off",
    cache_dir: Optional[Any] = None,
    executor: Any = None,
    queue_dir: Any = None,
) -> Any:
    """Run a scenario end to end and return its assembled figure data.

    ``scenario`` is a registered name or a :class:`ScenarioSpec`;
    ``scale``/``seed`` override the spec's sizing; ``overrides`` are
    ``--set``-style ``key=value`` strings; ``jobs`` fans the sweep cells
    out to worker processes (1 = serial, 0 = one per core — data is
    byte-identical at any level); ``pool`` shares one
    :class:`~repro.harness.runner.CellPool` across scenarios.

    ``cache`` attaches the persistent result store (see
    docs/ARCHITECTURE.md § Result store): ``"auto"`` loads persisted
    cells and persists fresh ones, ``"refresh"`` recomputes everything
    and repopulates, ``"off"`` (the library default — programmatic
    callers stay pure) touches no store.  ``cache_dir`` overrides the
    store directory (default ``.repro_results/`` or
    ``$REPRO_RESULTS_DIR``).  ``executor`` picks the cell-execution
    backend (``"serial"``/``"pool"``/``"queue"`` or an
    :class:`~repro.exec.Executor` instance — docs/ARCHITECTURE.md
    § Executors) and ``queue_dir`` the queue backend's spool directory.
    A ``pool`` carries its own store and backend, so all of these are
    ignored when one is passed.
    """
    spec = prepare_scenario(scenario, scale=scale, seed=seed, overrides=overrides)
    cells = expand(spec)
    if pool is not None:
        results = run_cells(cells, jobs, pool=pool)
    else:
        try:
            store = open_store(cache, cache_dir)
        except ValueError as error:
            raise ScenarioError(str(error)) from None
        results = run_cells(
            cells, jobs, store=store, executor=executor, queue_dir=queue_dir
        )
    return assemble_scenario(spec, cells, results)


# ----------------------------------------------------------------------
# Registered scenarios — the paper's figures
# ----------------------------------------------------------------------
@scenario
def _fig5a() -> ScenarioSpec:
    """Game throughput vs number of servers, all five systems."""
    return ScenarioSpec(
        name="fig5a",
        title="Fig 5a — game scale-out (events/s)",
        description="Game throughput vs number of servers, all five systems.",
        app="game",
        workload=WorkloadSpec(think_ms=2.0),
        metrics=("throughput_per_s",),
        output="curve",
        x_name="servers",
    )


@scenario
def _fig5b() -> ScenarioSpec:
    """Game (throughput, mean latency) pairs over a client sweep."""
    return ScenarioSpec(
        name="fig5b",
        title="Fig 5b — game latency vs throughput (thr/s, ms)",
        description="Game latency vs throughput at 8 servers over a client sweep.",
        app="game",
        servers=8,
        workload=WorkloadSpec(think_ms=2.0),
        axes=(("clients", ()),),  # () -> the scale preset's client_sweep
        metrics=("throughput_per_s", "mean_latency_ms"),
        output="xy",
    )


@scenario
def _fig6a() -> ScenarioSpec:
    """TPC-C throughput vs number of servers (one district each)."""
    return ScenarioSpec(
        name="fig6a",
        title="Fig 6a — TPC-C scale-out (events/s)",
        description="TPC-C throughput vs number of servers (one district each).",
        app="tpcc",
        workload=WorkloadSpec(think_ms=5.0),
        metrics=("throughput_per_s",),
        output="curve",
        x_name="servers",
    )


@scenario
def _fig6b() -> ScenarioSpec:
    """TPC-C (throughput, mean latency) pairs over a client sweep."""
    return ScenarioSpec(
        name="fig6b",
        title="Fig 6b — TPC-C latency vs throughput (txn/s, ms)",
        description="TPC-C latency vs throughput at 8 servers over a client sweep.",
        app="tpcc",
        servers=8,
        workload=WorkloadSpec(think_ms=5.0),
        axes=(("clients", ()),),
        metrics=("throughput_per_s", "mean_latency_ms"),
        output="xy",
    )


@scenario
def _fig7() -> ScenarioSpec:
    """Latency/server-count time series: elastic vs static setups."""
    return ScenarioSpec(
        name="fig7",
        title="Fig 7 — elastic vs static (mean latency per setup)",
        description="Latency and fleet-size time series, elastic vs static setups.",
        cell=f"{_SCN}:_elastic_cell",
        axes=(("setup", ("elastic", "8", "16", "32")), ("rep", (0,))),
        output="fig7",
        assemble=f"{_SCN}:_assemble_fig7",
        render=f"{_SCN}:_render_fig7",
    )


@scenario
def _table1() -> ScenarioSpec:
    """SLA violation percentage and average servers per setup."""
    return ScenarioSpec(
        name="table1",
        title="Table 1 — SLA performance and cost",
        description="SLA violations and average fleet size per setup.",
        cell=f"{_SCN}:_elastic_cell",
        axes=(("setup", ("8", "16", "22", "32", "elastic")), ("rep", (0,))),
        output="table1",
        assemble=f"{_SCN}:_assemble_table1",
        render=f"{_SCN}:_render_table1",
    )


@scenario
def _fig8() -> ScenarioSpec:
    """Throughput time series while migrating 1/8/12 of 20 Rooms."""
    return ScenarioSpec(
        name="fig8",
        title="Fig 8 — throughput while migrating Room contexts",
        description="Throughput time series while migrating 1/8/12 of 20 Rooms.",
        cell=f"{_SCN}:_fig8_cell",
        axes=(("n_migrations", (1, 8, 12)),),
        output="fig8",
        assemble=f"{_SCN}:_assemble_fig8",
        render=f"{_SCN}:_render_fig8",
    )


@scenario
def _fig9() -> ScenarioSpec:
    """Max contexts/s the eManager migrates, per instance type and size."""
    return ScenarioSpec(
        name="fig9",
        title="Fig 9 — eManager max migration throughput (contexts/s)",
        description="eManager migration throughput per instance type and payload.",
        cell=f"{_SCN}:_fig9_cell",
        axes=(
            ("itype_name", ("m1.large", "m1.medium", "m1.small")),
            ("size_bytes", (1024, 1_000_000)),
        ),
        output="fig9",
        assemble=f"{_SCN}:_assemble_fig9",
        render=f"{_SCN}:_render_fig9",
    )


@scenario
def _fig10() -> ScenarioSpec:
    """Goodput/p99 through a crash/recovery timeline, AEON vs baselines."""
    return ScenarioSpec(
        name="fig10",
        title="Fig 10 — goodput through a crash/recovery timeline (events/s)",
        description="Availability through one mid-run server crash and recovery.",
        app="game",
        systems=("aeon", "eventwave", "orleans"),
        servers=6,
        game=GameSpec(players_per_room=4, shared_items_per_room=2),
        workload=WorkloadSpec(think_ms=8.0, max_retries=2),
        faults=FaultSpec(kind="crash"),
        output="runs",
        render=f"{_SCN}:_render_fig10",
    )


@scenario
def _fig11() -> ScenarioSpec:
    """Availability SLO table under sustained churn, AEON vs baselines."""
    return ScenarioSpec(
        name="fig11",
        title="Fig 11 — availability SLO under crash/restart churn",
        description="Windowed availability SLO under sustained crash/restart churn.",
        app="game",
        systems=("aeon", "eventwave", "orleans"),
        servers=6,
        game=GameSpec(
            players_per_room=4, shared_items_per_room=2, room_weights="geometric"
        ),
        workload=WorkloadSpec(think_ms=8.0, max_retries=2),
        faults=FaultSpec(kind="churn"),
        points=(
            (("system", "aeon"), ("checkpoint_mode", "delta")),
            (("system", "eventwave"), ("checkpoint_mode", "delta")),
            (("system", "orleans"), ("checkpoint_mode", "delta")),
            (("system", "aeon"), ("checkpoint_mode", "full")),
        ),
        output="fig11",
        assemble=f"{_SCN}:_assemble_fig11",
        render=f"{_SCN}:_render_fig11",
    )


@scenario
def _ablation() -> ScenarioSpec:
    """TPC-C throughput with and without chain (early) release."""
    return ScenarioSpec(
        name="ablation",
        title="Ablation — chain release (TPC-C, AEON_SO, 4 servers)",
        description="TPC-C throughput with and without chain (early) release.",
        cell=f"{_SCN}:_ablation_cell",
        axes=(("early_release", (True, False)),),
        output="ablation",
        assemble=f"{_SCN}:_assemble_ablation",
        render=f"{_SCN}:_render_ablation",
    )


# ----------------------------------------------------------------------
# Registered scenarios — beyond the paper (the old API made these painful)
# ----------------------------------------------------------------------
@scenario
def _mixed_cotenancy() -> ScenarioSpec:
    """Game + TPC-C co-tenants sharing one fleet (per-app + combined metrics)."""
    return ScenarioSpec(
        name="mixed_cotenancy",
        title="Mixed co-tenancy — game + TPC-C on one fleet",
        description="Game and TPC-C deployed on the same servers under "
        "concurrent load; per-app and combined throughput/latency. "
        "(EventWave is excluded: one root context per runtime.)",
        app="mixed",
        systems=("aeon", "aeon_so", "orleans"),
        servers=6,
        workload=WorkloadSpec(think_ms=2.0, clients_per_server=30),
        tpcc_workload=WorkloadSpec(
            think_ms=5.0, clients_per_server=8, name_prefix="tpcc-client"
        ),
        output="mixed",
    )


@scenario
def _churn_sweep() -> ScenarioSpec:
    """Availability vs churn intensity: an MTBF sweep of the fig11 run."""
    return ScenarioSpec(
        name="churn_sweep",
        title="Churn sweep — availability vs MTBF (delta checkpoints)",
        description="fig11's churn run swept over mean-time-between-crashes: "
        "how availability degrades as churn intensifies.",
        app="game",
        systems=("aeon",),
        servers=6,
        game=GameSpec(
            players_per_room=4, shared_items_per_room=2, room_weights="geometric"
        ),
        workload=WorkloadSpec(think_ms=8.0, max_retries=2),
        faults=FaultSpec(kind="churn", checkpoint_mode="delta"),
        axes=(("mtbf_ms", (1500.0, 3000.0, 6000.0)),),
        output="churn_sweep",
        assemble=f"{_SCN}:_assemble_churn_sweep",
        render=f"{_SCN}:_render_churn_sweep",
    )


@scenario
def _split_brain() -> ScenarioSpec:
    """Asymmetric partition: fencing's zero-lost-updates invariant."""
    return ScenarioSpec(
        name="split_brain",
        title="Split brain — fencing epochs vs lost updates (asymmetric partition)",
        description="An asymmetric partition cuts the detector and eManager "
        "off from one server while clients still reach it; recovery "
        "re-places its subtrees while the old owner keeps serving.  With "
        "fencing the old owner is fenced at declaration and its step-down "
        "flush preserves every acked write (zero lost updates); with "
        "fencing off the restore rolls back to the last periodic "
        "checkpoint and the rolled-back writes are counted.",
        app="game",
        systems=("aeon",),
        servers=4,
        game=GameSpec(players_per_room=4, shared_items_per_room=2),
        workload=WorkloadSpec(think_ms=8.0, max_retries=3),
        faults=FaultSpec(
            kind="split_brain",
            honest_recovery=True,
            crash_drops_state=True,
        ),
        axes=(("fencing", (True, False)),),
        output="split_brain",
        assemble=f"{_SCN}:_assemble_split_brain",
        render=f"{_SCN}:_render_split_brain",
    )


@scenario
def _partition_recovery() -> ScenarioSpec:
    """A partition healing mid-recovery: re-admission without data loss."""
    return ScenarioSpec(
        name="partition_recovery",
        title="Partition recovery — the cut heals mid-recovery (fencing on)",
        description="The detector-side partition heals inside the fencing "
        "step-down grace window, while recovery is mid-flight: the "
        "returning owner is re-admitted at the current epoch, the flush "
        "still covers every acked write, and nothing is lost or doubly "
        "applied.",
        app="game",
        systems=("aeon",),
        servers=4,
        game=GameSpec(players_per_room=4, shared_items_per_room=2),
        workload=WorkloadSpec(think_ms=8.0, max_retries=3),
        faults=FaultSpec(
            kind="partition_recovery",
            fencing=True,
            honest_recovery=True,
            crash_drops_state=True,
        ),
        output="runs",
        render=f"{_SCN}:_render_partition_recovery",
    )


@scenario
def _massive_game() -> ScenarioSpec:
    """A million bulk-registered game players on the columnar core."""
    return ScenarioSpec(
        name="massive_game",
        title="Massive game — a million players on the columnar core",
        description="A huge single-parent player population registered "
        "through the columnar bulk path: leaves materialize lazily on "
        "first touch, percentiles come from the reservoir-sampling "
        "recorder, and a state digest pins determinism.  ~100k contexts "
        "at --scale quick (the CI smoke tier), 1M+ at --scale massive.",
        cell=f"{_SCN}:_massive_game_cell",
        axes=(("rep", (0,)),),
        output="massive",
        assemble=f"{_SCN}:_assemble_massive",
        render=f"{_SCN}:_render_massive",
    )


@scenario
def _massive_tpcc() -> ScenarioSpec:
    """A million bulk-registered TPC-C terminals on the columnar core."""
    return ScenarioSpec(
        name="massive_tpcc",
        title="Massive TPC-C — a million terminals on the columnar core",
        description="The TPC-C-shaped massive tier: order-submitting "
        "terminal leaves under district shards, bulk-registered and "
        "lazily materialized.  ~100k contexts at --scale quick (the CI "
        "smoke tier), 1M+ at --scale massive.",
        cell=f"{_SCN}:_massive_tpcc_cell",
        axes=(("rep", (0,)),),
        output="massive",
        assemble=f"{_SCN}:_assemble_massive",
        render=f"{_SCN}:_render_massive",
    )


@scenario
def _diurnal() -> ScenarioSpec:
    """Diurnal-wave elasticity: the eManager tracking day/night load cycles."""
    return ScenarioSpec(
        name="diurnal",
        title="Diurnal elasticity — two-peak day/night load (elastic fleet)",
        description="An elastic AEON fleet following a two-cycle diurnal "
        "client wave; latency vs fleet-size trajectories and SLA score.",
        app="game",
        systems=("aeon",),
        servers=8,
        instance="m1.small",
        game=GameSpec(rooms=32, players_per_room=4, shared_items_per_room=2),
        workload=WorkloadSpec(
            kind="ramp",
            profile="diurnal",
            think_ms=12.0,
            machines=8,
            min_per_machine=1,
            max_per_machine=16,
            cycles=2,
        ),
        elastic=ElasticSpec(),
        output="elastic",
    )
