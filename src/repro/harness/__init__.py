"""Experiment harness: drivers for every table and figure in the paper."""

from .experiments import ALL_EXPERIMENTS, render
from .runner import RunResult, SYSTEMS, Testbed, make_testbed, run_game

__all__ = [
    "ALL_EXPERIMENTS",
    "render",
    "RunResult",
    "SYSTEMS",
    "Testbed",
    "make_testbed",
    "run_game",
]
