"""Experiment harness: declarative scenarios driving every figure."""

from .experiments import ALL_EXPERIMENTS, render
from .runner import CellPool, RunResult, SYSTEMS, Testbed, make_testbed, run_game
from .scenarios import (
    ScenarioSpec,
    get_scenario,
    list_scenarios,
    run_scenario,
    scenario,
)

__all__ = [
    "ALL_EXPERIMENTS",
    "render",
    "CellPool",
    "RunResult",
    "SYSTEMS",
    "Testbed",
    "make_testbed",
    "run_game",
    "ScenarioSpec",
    "get_scenario",
    "list_scenarios",
    "run_scenario",
    "scenario",
]
