"""Plain-text rendering of experiment results (tables and series)."""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_table", "format_series"]


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render an aligned text table with a title line."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(str(column)), *(len(row[i]) for row in rendered_rows))
        if rendered_rows
        else len(str(column))
        for i, column in enumerate(columns)
    ]
    lines = [title, ""]
    header = "  ".join(str(c).ljust(widths[i]) for i, c in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_series(
    title: str,
    series_by_label: Dict[str, List[tuple]],
    x_name: str = "t",
    y_name: str = "value",
) -> str:
    """Render one or more (x, y) series as aligned columns."""
    lines = [title, ""]
    for label, points in series_by_label.items():
        lines.append(f"[{label}]")
        lines.append(f"  {x_name:>12}  {y_name:>12}")
        for x, y in points:
            lines.append(f"  {_cell(x):>12}  {_cell(y):>12}")
        lines.append("")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
