"""Experiment runner: build a cluster + runtime + app, drive, measure.

Every figure in EXPERIMENTS.md is produced through :func:`run_game` /
:func:`run_tpcc` (plus the elasticity/migration drivers in
:mod:`repro.harness.experiments`), so all experiments share one
measurement discipline: fixed warmup cut, fixed measurement window,
deterministic seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type

from ..apps.game import GameApp, GameConfig, build_game
from ..baselines import EventWaveRuntime, OrleansRuntime
from ..core.costs import CostModel, DEFAULT_COSTS
from ..core.protocol import AeonRuntime
from ..core.runtime import RuntimeBase
from ..sim.cluster import Cluster, InstanceType, M3_LARGE, Server
from ..sim.kernel import Simulator
from ..sim.network import Network
from ..sim.rng import RngRegistry
from ..workloads.generators import ClosedLoopClients

__all__ = [
    "SYSTEMS",
    "runtime_class_for",
    "Testbed",
    "make_testbed",
    "RunResult",
    "run_game",
]

#: The five measured systems, in the paper's legend order.
SYSTEMS = ("eventwave", "orleans", "orleans_star", "aeon_so", "aeon")

_RUNTIME_FOR: Dict[str, Type[RuntimeBase]] = {
    "aeon": AeonRuntime,
    "aeon_so": AeonRuntime,
    "eventwave": EventWaveRuntime,
    "orleans": OrleansRuntime,
    "orleans_star": OrleansRuntime,
}


def runtime_class_for(system: str) -> Type[RuntimeBase]:
    """The runtime class executing ``system`` (variants share runtimes)."""
    try:
        return _RUNTIME_FOR[system]
    except KeyError:
        raise ValueError(f"unknown system {system!r}; pick from {SYSTEMS}") from None


@dataclass
class Testbed:
    """One simulated deployment: simulator, network, cluster, runtime."""

    sim: Simulator
    network: Network
    cluster: Cluster
    runtime: RuntimeBase
    servers: List[Server]
    rng: RngRegistry


def make_testbed(
    system: str,
    n_servers: int,
    instance_type: InstanceType = M3_LARGE,
    costs: CostModel = DEFAULT_COSTS,
    seed: int = 0,
    record_history: bool = False,
) -> Testbed:
    """Build a fresh simulated cluster running ``system``."""
    sim = Simulator()
    cluster = Cluster(sim)
    network = Network(sim)
    servers = [cluster.add_server(instance_type) for _ in range(n_servers)]
    runtime = runtime_class_for(system)(
        sim, network, cluster, costs=costs, record_history=record_history
    )
    return Testbed(
        sim=sim,
        network=network,
        cluster=cluster,
        runtime=runtime,
        servers=servers,
        rng=RngRegistry(seed),
    )


@dataclass
class RunResult:
    """Metrics of one measured run."""

    system: str
    n_servers: int
    n_clients: int
    throughput_per_s: float
    mean_latency_ms: float
    p50_latency_ms: float
    p99_latency_ms: float
    completed: int
    errors: int
    duration_ms: float
    extras: Dict[str, float] = field(default_factory=dict)


def run_game(
    system: str,
    n_servers: int,
    n_clients: int,
    duration_ms: float = 4000.0,
    warmup_ms: float = 1000.0,
    think_ms: float = 1.0,
    config: Optional[GameConfig] = None,
    costs: CostModel = DEFAULT_COSTS,
    seed: int = 0,
    record_history: bool = False,
) -> Tuple[RunResult, Testbed, GameApp]:
    """Run the game under closed-loop load and measure steady state."""
    testbed = make_testbed(
        system, n_servers, costs=costs, seed=seed, record_history=record_history
    )
    game_config = config or GameConfig(rooms=n_servers)
    app = build_game(testbed.runtime, game_config, system, servers=testbed.servers)
    clients = ClosedLoopClients(
        testbed.runtime,
        app.sample_op,
        n_clients=n_clients,
        think_ms=think_ms,
        rng=testbed.rng,
        stop_at_ms=duration_ms,
    )
    clients.start()
    testbed.sim.run(until=duration_ms + 2000.0)
    result = measure(system, testbed, n_clients, warmup_ms, duration_ms)
    result.errors = len(clients.errors)
    return result, testbed, app


def measure(
    system: str,
    testbed: Testbed,
    n_clients: int,
    warmup_ms: float,
    duration_ms: float,
) -> RunResult:
    """Extract steady-state metrics from a finished run."""
    runtime = testbed.runtime
    window = duration_ms - warmup_ms
    completed = runtime.throughput.count_between(warmup_ms, duration_ms)
    # Bisect-windowed query on the array-backed recorder: no per-sample
    # objects, no full scan.
    latencies = runtime.latency.latencies_between(warmup_ms, duration_ms)
    latencies.sort()

    def pct(p: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(p / 100.0 * (len(latencies) - 1)))]

    return RunResult(
        system=system,
        n_servers=len(testbed.cluster.servers),
        n_clients=n_clients,
        throughput_per_s=completed / (window / 1000.0) if window > 0 else 0.0,
        mean_latency_ms=sum(latencies) / len(latencies) if latencies else 0.0,
        p50_latency_ms=pct(50.0),
        p99_latency_ms=pct(99.0),
        completed=completed,
        errors=0,
        duration_ms=duration_ms,
    )
