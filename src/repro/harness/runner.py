"""Experiment runner: build a cluster + runtime + app, drive, measure.

Every figure in docs/EXPERIMENTS.md is produced through
:func:`run_game` / the drivers in :mod:`repro.harness.experiments`, so
all experiments share one measurement discipline: fixed warmup cut,
fixed measurement window, deterministic seeds.

This module also hosts the **parallel experiment engine**: every figure
decomposes into independent :class:`Cell`\\ s (one self-contained
simulation each — typically one ``(system, server_count, seed)`` run),
executed serially or across worker processes by :func:`run_cells`, and
reassembled in cell order so the figure data is byte-identical at any
``--jobs`` level.  See docs/ARCHITECTURE.md § Parallel experiment
engine for why cells parallelise safely (each builds its own simulator
and named RNG streams; nothing reads wall-clock state).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type

from ..apps.game import GameApp, GameConfig, build_game
from ..baselines import EventWaveRuntime, OrleansRuntime
from ..core.costs import CostModel, DEFAULT_COSTS
from ..core.protocol import AeonRuntime
from ..core.runtime import RuntimeBase

# The cell primitives and executor backends live in ``repro.exec``
# (docs/ARCHITECTURE.md § Executors); re-exported here because the
# harness is their historical home and every figure module imports
# them from this path.
from ..exec.base import (  # noqa: F401  (re-exports)
    Cell,
    CellResult,
    Executor,
    ExecutorError,
    WorkerLostError,
    execute_cell,
    execute_cell_timed,
    make_executor,
    resolve_executor,
    resolve_jobs,
)
from ..results.store import MISS, ResultStore
from ..sim.cluster import Cluster, InstanceType, M3_LARGE, Server
from ..sim.kernel import Simulator
from ..sim.network import Network
from ..sim.rng import RngRegistry
from ..workloads.generators import ClosedLoopClients

__all__ = [
    "SYSTEMS",
    "runtime_class_for",
    "Testbed",
    "make_testbed",
    "RunResult",
    "run_game",
    "Cell",
    "CellResult",
    "execute_cell",
    "execute_cell_timed",
    "resolve_jobs",
    "resolve_executor",
    "run_cells",
    "CellPool",
]

_log = logging.getLogger("repro.harness.runner")

#: The five measured systems, in the paper's legend order.
SYSTEMS = ("eventwave", "orleans", "orleans_star", "aeon_so", "aeon")

_RUNTIME_FOR: Dict[str, Type[RuntimeBase]] = {
    "aeon": AeonRuntime,
    "aeon_so": AeonRuntime,
    "eventwave": EventWaveRuntime,
    "orleans": OrleansRuntime,
    "orleans_star": OrleansRuntime,
}


def runtime_class_for(system: str) -> Type[RuntimeBase]:
    """The runtime class executing ``system`` (variants share runtimes)."""
    try:
        return _RUNTIME_FOR[system]
    except KeyError:
        raise ValueError(f"unknown system {system!r}; pick from {SYSTEMS}") from None


@dataclass
class Testbed:
    """One simulated deployment: simulator, network, cluster, runtime."""

    sim: Simulator
    network: Network
    cluster: Cluster
    runtime: RuntimeBase
    servers: List[Server]
    rng: RngRegistry


def make_testbed(
    system: str,
    n_servers: int,
    instance_type: InstanceType = M3_LARGE,
    costs: CostModel = DEFAULT_COSTS,
    seed: int = 0,
    record_history: bool = False,
) -> Testbed:
    """Build a fresh simulated cluster running ``system``.

    Args: ``system`` one of :data:`SYSTEMS`, ``n_servers`` fleet size,
    ``instance_type``/``costs`` hardware and protocol cost models,
    ``seed`` the RNG registry seed, ``record_history`` enables the
    serializability checker.  Returns a :class:`Testbed` whose parts
    share one simulator.  See docs/ARCHITECTURE.md § layer map.
    """
    sim = Simulator()
    cluster = Cluster(sim)
    network = Network(sim)
    servers = [cluster.add_server(instance_type) for _ in range(n_servers)]
    runtime = runtime_class_for(system)(
        sim, network, cluster, costs=costs, record_history=record_history
    )
    return Testbed(
        sim=sim,
        network=network,
        cluster=cluster,
        runtime=runtime,
        servers=servers,
        rng=RngRegistry(seed),
    )


@dataclass
class RunResult:
    """Metrics of one measured run."""

    system: str
    n_servers: int
    n_clients: int
    throughput_per_s: float
    mean_latency_ms: float
    p50_latency_ms: float
    p99_latency_ms: float
    completed: int
    errors: int
    duration_ms: float
    extras: Dict[str, float] = field(default_factory=dict)


def run_game(
    system: str,
    n_servers: int,
    n_clients: int,
    duration_ms: float = 4000.0,
    warmup_ms: float = 1000.0,
    think_ms: float = 1.0,
    config: Optional[GameConfig] = None,
    costs: CostModel = DEFAULT_COSTS,
    seed: int = 0,
    record_history: bool = False,
) -> Tuple[RunResult, Testbed, GameApp]:
    """Run the game under closed-loop load and measure steady state.

    Args: deployment shape (``system``/``n_servers``/``n_clients``),
    measurement window (``duration_ms``/``warmup_ms``), per-client
    ``think_ms``, optional ``config``/``costs`` overrides and ``seed``.
    Returns ``(RunResult, Testbed, GameApp)``.  Used by fig5a/fig5b
    cells — see docs/EXPERIMENTS.md.
    """
    testbed = make_testbed(
        system, n_servers, costs=costs, seed=seed, record_history=record_history
    )
    game_config = config or GameConfig(rooms=n_servers)
    app = build_game(testbed.runtime, game_config, system, servers=testbed.servers)
    clients = ClosedLoopClients(
        testbed.runtime,
        app.sample_op,
        n_clients=n_clients,
        think_ms=think_ms,
        rng=testbed.rng,
        stop_at_ms=duration_ms,
    )
    clients.start()
    testbed.sim.run(until=duration_ms + 2000.0)
    result = measure(system, testbed, n_clients, warmup_ms, duration_ms)
    result.errors = len(clients.errors)
    return result, testbed, app


# ----------------------------------------------------------------------
# Parallel experiment engine (executor wiring; primitives: repro.exec)
# ----------------------------------------------------------------------
def run_cells(
    cells: Sequence[Cell],
    jobs: int = 1,
    pool: Optional["CellPool"] = None,
    store: Optional[ResultStore] = None,
    executor: Any = None,
    queue_dir: Any = None,
) -> List[CellResult]:
    """Execute ``cells`` and return their results *in cell order*.

    ``jobs=1`` runs serially in-process (no pool, no pickling — the
    historical path); ``jobs>1``/``0`` fans the cells out to a local
    worker-process pool.  ``executor`` picks the backend explicitly —
    ``"serial"``, ``"pool"`` (retry-on-worker-death, see
    :class:`~repro.exec.ProcessExecutor`), ``"queue"`` (the spool-dir
    work queue under ``queue_dir`` that external ``python -m
    repro.exec.worker`` processes drain), or any
    :class:`~repro.exec.Executor` instance; default: ``REPRO_EXECUTOR``
    or jobs-based.  Whatever the backend, results are reassembled in
    submission order, so figure data is byte-identical to the serial
    path regardless of completion order.  Passing a :class:`CellPool`
    shares one long-lived backend (and its duplicate-cell cache) across
    many ``run_cells`` calls — the ``--all`` streaming path; a pool
    carries its own store and backend, so the other knobs are only
    honored when ``pool`` is ``None``.

    ``store`` attaches a :class:`~repro.results.ResultStore`: cells with
    a persisted result are not dispatched at all (hit → deserialize),
    and every miss is persisted the moment it completes — a killed run
    resumes where it died, and cached data is byte-identical to fresh
    data at any ``jobs`` level.  See docs/EXPERIMENTS.md for per-figure
    ``--jobs`` guidance and docs/ARCHITECTURE.md § Result store /
    § Executors.
    """
    if pool is not None:
        return pool.gather(pool.submit(cells))
    if (
        store is None
        and executor is None
        and queue_dir is None
        and resolve_jobs(jobs) == 1
    ):
        return [execute_cell(cell) for cell in cells]
    with CellPool(jobs, store=store, executor=executor, queue_dir=queue_dir) as pool_:
        return pool_.gather(pool_.submit(cells))


class _CachedCell:
    """Pool handle for a result-store hit: the value is already here."""

    __slots__ = ("_result",)

    def __init__(self, result: CellResult) -> None:
        self._result = result

    def done(self) -> bool:
        return True

    def result(self) -> CellResult:
        return self._result


class CellPool:
    """One executor backend shared by every scenario of an ``--all`` run.

    Historically each figure ran its cells through its own
    ``run_cells`` batch, so worker processes idled at every figure
    boundary while the last straggler cell finished.  A ``CellPool``
    instead accepts *all* figures' cells up front (:meth:`submit`
    returns per-cell handles immediately), streams results back as
    cells complete, and :meth:`gather` blocks only for the cells a
    figure actually needs — in cell order, so assembled figure data is
    byte-identical to the per-figure batches.

    Identical cells (same ``fn`` and kwargs — e.g. the four elastic
    setups fig7 and table1 share) are executed **once** and their result
    is re-keyed for every requester; cell bodies are deterministic
    functions of their kwargs, so this is invisible in the data.

    Where cells run is an :class:`~repro.exec.Executor` strategy
    (docs/ARCHITECTURE.md § Executors): ``executor`` is a backend name
    (``"serial"`` / ``"pool"`` / ``"queue"``), an executor instance, or
    ``None`` — resolve via ``REPRO_EXECUTOR``, else ``jobs=1`` →
    serial lazy execution (the exact historical serial order) and
    ``jobs>1``/``0`` → the retrying local process pool.  ``queue_dir``
    and ``executor_options`` configure the queue backend.  Use as a
    context manager or call :meth:`close`.

    ``store`` attaches a :class:`~repro.results.ResultStore`: before a
    novel cell is dispatched the store is consulted (hit → the persisted
    value comes back as a ready handle, no worker touched), and every
    executed cell is persisted *as it completes* — so a killed ``--all``
    resumes where it died.  Dedup runs before the store consult, so the
    pool's hit/miss counters count *distinct* cells: a fully warm
    ``--all`` reports 100% hits even though fig7 and table1 request the
    same elastic setups twice.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        executor: Any = None,
        queue_dir: Any = None,
        executor_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.store = store
        self.executor = make_executor(
            executor,
            jobs=self.jobs,
            store=store,
            queue_dir=queue_dir,
            options=executor_options,
        )
        self._cache: Dict[tuple, Any] = {}

    @staticmethod
    def _dedup_key(cell: Cell) -> tuple:
        return (cell.fn, tuple(sorted((k, repr(v)) for k, v in cell.kwargs.items())))

    def _dispatch(self, cell: Cell) -> Any:
        """Produce a handle for one novel cell: store hit or backend submit."""
        store = self.store
        if store is not None:
            value = store.load(cell)
            if value is not MISS:
                return _CachedCell(CellResult(key=cell.key, value=value))
        return self.executor.submit(cell)

    def submit(self, cells: Sequence[Cell]) -> List[Tuple[Cell, Any]]:
        """Enqueue ``cells``; returns ``(cell, handle)`` pairs for :meth:`gather`."""
        handles = []
        for cell in cells:
            key = self._dedup_key(cell)
            handle = self._cache.get(key)
            if handle is None:
                handle = self._dispatch(cell)
                self._cache[key] = handle
            handles.append((cell, handle))
        return handles

    def gather(self, handles: Sequence[Tuple[Cell, Any]]) -> List[CellResult]:
        """Collect the handles' results, re-keyed per requesting cell,
        in submission (= cell) order."""
        return [
            CellResult(key=cell.key, value=handle.result().value)
            for cell, handle in handles
        ]

    def close(self) -> None:
        """Shut the backend down.

        Joins cells already running but cancels the still-queued ones —
        when one cell of an ``--all`` run fails, the error should not
        wait behind minutes of queued elastic simulations.
        """
        self.executor.shutdown(wait=True)

    def __enter__(self) -> "CellPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def measure(
    system: str,
    testbed: Testbed,
    n_clients: int,
    warmup_ms: float,
    duration_ms: float,
) -> RunResult:
    """Extract steady-state metrics from a finished run.

    Counts completions and latencies in ``[warmup_ms, duration_ms)``
    and returns a :class:`RunResult` (throughput, mean/p50/p99 latency,
    completions).  See docs/ARCHITECTURE.md § layer map.
    """
    runtime = testbed.runtime
    window = duration_ms - warmup_ms
    completed = runtime.throughput.count_between(warmup_ms, duration_ms)
    # Bisect-windowed query on the array-backed recorder: no per-sample
    # objects, no full scan.
    latencies = runtime.latency.latencies_between(warmup_ms, duration_ms)
    latencies.sort()

    def pct(p: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(p / 100.0 * (len(latencies) - 1)))]

    return RunResult(
        system=system,
        n_servers=len(testbed.cluster.servers),
        n_clients=n_clients,
        throughput_per_s=completed / (window / 1000.0) if window > 0 else 0.0,
        mean_latency_ms=sum(latencies) / len(latencies) if latencies else 0.0,
        p50_latency_ms=pct(50.0),
        p99_latency_ms=pct(99.0),
        completed=completed,
        errors=0,
        duration_ms=duration_ms,
    )
