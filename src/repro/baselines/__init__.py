"""Baseline runtime models the paper compares AEON against.

* :class:`EventWaveRuntime` — tree of contexts, total order at the root.
* :class:`OrleansRuntime` — single-threaded non-reentrant grains,
  no cross-grain atomicity (the "Orleans" vs "Orleans*" distinction is
  made in the application wiring, not the runtime).
"""

from .eventwave import EventWaveRuntime, SingleOwnershipError
from .orleans import OrleansDeadlockError, OrleansRuntime

__all__ = [
    "EventWaveRuntime",
    "OrleansDeadlockError",
    "OrleansRuntime",
    "SingleOwnershipError",
]
