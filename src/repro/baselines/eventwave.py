"""EventWave runtime model (Chuang et al., SoCC'13), as characterized in §2.1.

Execution discipline reproduced:

* contexts form a strict **tree** (single ownership); attempts to create
  a second owner are rejected;
* **every** event is totally ordered at the single root context: the
  root sequencer is a serial resource on the root's server, charging
  ``eventwave_root_cpu_ms`` per event — the scalability bottleneck the
  paper measures (Fig. 5a/6a plateaus);
* after sequencing, the event is routed down the tree to its target
  (per-hop forwarding cost), executes with exclusive per-context locks
  acquired top-down, and releases everything at commit (no chain
  release, no read-only sharing, no asynchronous method calls — the
  three mechanisms the paper credits for AEON's advantage);
* migration support is coarse: :meth:`EventWaveRuntime.halt` stalls
  *all* event admission while contexts move (the paper: "halting all
  executions during migration").
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..core.errors import AeonError
from ..core.events import CallSpec, Event
from ..core.runtime import Branch, ClientHandle, RuntimeBase
from ..sim.cluster import Server
from ..sim.kernel import Signal
from ..sim.queues import Notifier, Resource

__all__ = ["EventWaveRuntime", "SingleOwnershipError"]


class SingleOwnershipError(AeonError):
    """EventWave contexts form a tree: a second owner is illegal."""


class EventWaveRuntime(RuntimeBase):
    """Tree of contexts with a total order imposed at the root."""

    system_name = "eventwave"
    supports_async = False
    supports_readonly = False

    def __init__(self, *args: object, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)
        self._sequencer: Optional[Resource] = None
        self._ticket = 0
        self._halted = False
        self._halt_gate = Notifier(self.sim, "eventwave-halt")
        # The tree root, recomputed only when contexts change (it is
        # consulted on every event).
        self._root_cache: Optional[str] = None

    # ------------------------------------------------------------------
    # Tree enforcement
    # ------------------------------------------------------------------
    def ownership_link(self, owner_cid: str, child_cid: str) -> None:
        existing = self.ownership.parents(child_cid)
        if existing and owner_cid not in existing:
            raise SingleOwnershipError(
                f"EventWave context {child_cid!r} already has an owner "
                f"({sorted(existing)[0]!r}); trees do not allow sharing"
            )
        super().ownership_link(owner_cid, child_cid)

    def create_context(self, *args: object, **kwargs: object):  # type: ignore[override]
        owners = kwargs.get("owners") or (args[1] if len(args) > 1 else ())
        if owners is not None and len(list(owners)) > 1:
            raise SingleOwnershipError("EventWave contexts accept a single owner")
        self._root_cache = None
        return super().create_context(*args, **kwargs)

    def root_context(self) -> str:
        """The unique tree root every event is sequenced at."""
        cached = self._root_cache
        if (
            cached is not None
            and cached in self.ownership
            and not self.ownership.parents(cached)
        ):
            return cached
        roots = [
            cid for cid in self.ownership.roots() if not self.ownership.is_virtual(cid)
        ]
        if len(roots) != 1:
            raise AeonError(
                f"EventWave requires exactly one root context, found {sorted(roots)}"
            )
        self._root_cache = roots[0]
        return roots[0]

    # ------------------------------------------------------------------
    # Migration halting (the paper's coarse elasticity)
    # ------------------------------------------------------------------
    def halt(self) -> None:
        """Stall admission of new events (during migration)."""
        self._halted = True

    def resume(self) -> None:
        """Resume event admission after a migration."""
        self._halted = False
        self._halt_gate.notify_all()

    # ------------------------------------------------------------------
    # Event lifecycle
    # ------------------------------------------------------------------
    def _event_process(self, event: Event, client: ClientHandle) -> Generator:
        costs = self.costs
        spec = event.spec
        root = self.root_context()
        root_server = self.server_of(root)
        # Clients always submit through the root (it orders everything).
        yield self.network.delay_ms(client.name, root_server.name, costs.client_msg_bytes)
        if self._halted:
            yield self._halt_gate.wait_for(lambda: not self._halted)
        # Serial sequencing at the root: the global bottleneck.
        sequencer = self._root_sequencer()
        grant = sequencer.request()
        yield grant
        branch = Branch(event)
        try:
            yield self._charge(root_server, costs.eventwave_root_cpu_ms)
            self._ticket += 1
            event.started_ms = self.sim.now
            event.dom = root
            # Reserve the target's execution-queue position while serial:
            # per-context order equals ticket order.
            target_reserved = self._reserve(event, branch, spec.target)
        finally:
            sequencer.release(grant)

        # Route down the tree, paying a forwarding cost per context hop.
        path = self.ownership.find_path(root, spec.target)
        current = root_server
        for cid in path[1:]:
            nxt = self.server_of(cid)
            if nxt.name != current.name:
                yield self._charge(current, costs.net_cpu_ms)
                event.hops += 1
                yield self.network.delay_ms(current.name, nxt.name, costs.proto_msg_bytes)
                current = nxt
            yield self._charge(nxt, costs.eventwave_forward_cpu_ms)

        target_server = self.server_of(spec.target)
        if current.name != target_server.name:
            yield self._charge(current, costs.net_cpu_ms)
            event.hops += 1
            yield self.network.delay_ms(
                current.name, target_server.name, costs.proto_msg_bytes
            )
        yield self._charge(target_server, costs.lock_cpu_ms)
        yield target_reserved
        try:
            event.result = yield from self._drive_body(event, spec, branch)
        finally:
            # Strict hold-till-commit: everything released at the end.
            yield None
            self._release_branch_locks(event, branch, self.server_of(spec.target))
            self._branch_closed(event)
        event.committed_ms = self.sim.now
        reply_from = self.server_of(spec.target)
        yield self._charge(reply_from, costs.net_cpu_ms)
        event.hops += 1
        yield self.network.delay_ms(reply_from.name, client.name, costs.client_msg_bytes)

    def _root_sequencer(self) -> Resource:
        if self._sequencer is None:
            self._sequencer = Resource(self.sim, capacity=1, name="eventwave-root-seq")
        return self._sequencer

    # ------------------------------------------------------------------
    # Nested calls: reserve-then-claim down the tree, no early release
    # ------------------------------------------------------------------
    def _sync_call(
        self,
        event: Event,
        spec: CallSpec,
        branch: Branch,
        caller_server: Server,
        caller_cid: str,
    ) -> Generator:
        reserved = self._reserve_path(event, branch, caller_cid, spec.target)
        if reserved:
            current = yield from self._claim_reserved(event, reserved, caller_server)
        else:
            current = caller_server
        callee_server = self.server_of(spec.target)
        if current.name != callee_server.name:
            yield self._charge(current, self.costs.net_cpu_ms)
            event.hops += 1
            yield self.network.delay_ms(
                current.name, callee_server.name, self.costs.proto_msg_bytes
            )
        yield self._charge(callee_server, self.costs.route_cpu_ms)
        result = yield from self._drive_body(event, spec, branch)
        landed = self.server_of(spec.target)
        if landed.name != caller_server.name:
            yield self._charge(landed, self.costs.net_cpu_ms)
            event.hops += 1
            yield self.network.delay_ms(
                landed.name, caller_server.name, self.costs.proto_msg_bytes
            )
        return result

    def _spawn_async(
        self, event: Event, spec: CallSpec, caller_server: Server, caller_cid: str
    ) -> None:  # pragma: no cover - supports_async is False
        raise AeonError("EventWave has no asynchronous method calls")
