"""Orleans runtime model (Bykov et al., SoCC'11), as characterized in §2.1.

Execution discipline reproduced:

* contexts are **grains**: single-threaded, non-reentrant actors.  A
  grain processes one request at a time; a request holds the grain busy
  until its method (including awaited nested calls) returns;
* **no cross-grain atomicity**: a nested call takes only the *callee*
  grain's turn lock for the duration of that call — there is no
  two-phase locking, no dominator, no transactional guarantee (the
  open-source Orleans the paper measured dropped transactions);
* **deadlock on call cycles**: a synchronous call back into a grain the
  current request already occupies can never be served (non-reentrant
  single-threading).  The model detects this and raises
  :class:`OrleansDeadlockError` — the hazard §2.1 calls out;
* **no placement affinity**: grains are hash-placed across servers (the
  paper's §6.1.1 point 2: Orleans lacks AEON's co-location rules), and
  all CPU work pays the managed-runtime overhead factor (point 1);
* asynchronous calls model ``Task``-based fan-out: the request joins
  all of them before completing (``Task.WhenAll``).

The paper's two Orleans variants are *application wirings*, not runtime
changes: "Orleans" routes item access through the Room/tree grain for
mutual exclusion (strictly serializable, slow), "Orleans*" lets callers
hit shared grains directly (fast, non-serializable).
"""

from __future__ import annotations

from typing import Generator, Optional

from ..core.errors import AeonError
from ..core.events import CallSpec, Event
from ..core.runtime import Branch, ClientHandle, RuntimeBase
from ..sim.cluster import Server
from ..sim.network import DeliveryError

__all__ = ["OrleansRuntime", "OrleansDeadlockError"]


class OrleansDeadlockError(AeonError):
    """A synchronous call cycle re-entered a busy, non-reentrant grain."""


class OrleansRuntime(RuntimeBase):
    """Single-threaded grains with per-call turn locks."""

    system_name = "orleans"
    supports_async = True
    supports_readonly = False
    enforce_ownership = False  # grains are unordered (§2.1 table)

    def __init__(self, *args: object, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)
        self.cpu_factor = self.costs.orleans_overhead
        self._placement_counter = 0

    # ------------------------------------------------------------------
    # Placement: hash/round-robin, no co-location rules
    # ------------------------------------------------------------------
    def _default_server(self) -> Server:
        alive = sorted(self.cluster.alive_servers().values(), key=lambda s: s.name)
        if not alive:
            raise AeonError("no alive servers to place a grain on")
        self._placement_counter += 1
        return alive[self._placement_counter % len(alive)]

    # ------------------------------------------------------------------
    # Event lifecycle: one turn on the target grain
    # ------------------------------------------------------------------
    def _event_process(self, event: Event, client: ClientHandle) -> Generator:
        costs = self.costs
        spec = event.spec
        cached_name = client.locate(spec.target)
        try:
            yield self.network.delay_ms(
                client.name, cached_name, costs.client_msg_bytes
            )
        except DeliveryError:
            # Cached server unreachable: forget the entry so a retry
            # re-resolves (see ClientHandle), then surface the failure.
            client.forget(spec.target)
            raise
        grain_server = self.server_of(spec.target)
        if cached_name != grain_server.name:
            stale_server = self.cluster.servers.get(cached_name)
            if stale_server is not None:
                yield self._charge(stale_server, costs.net_cpu_ms)
                event.hops += 1
                yield self.network.delay_ms(
                    stale_server.name, grain_server.name, costs.client_msg_bytes
                )
            else:
                yield self.network.delay_ms(
                    cached_name, grain_server.name, costs.client_msg_bytes
                )
            client.learn(spec.target, grain_server.name)
        yield self._charge(grain_server, costs.route_cpu_ms)
        event.started_ms = self.sim.now
        branch = Branch(event)
        # Take the grain's turn (FIFO mailbox admission).
        grant = self._reserve(event, branch, spec.target)
        yield grant
        try:
            event.result = yield from self._drive_body(event, spec, branch)
            # Task.WhenAll: the request completes when its async fan-out
            # does; the grain stays busy meanwhile (non-reentrant).
            self._branch_closed(event)
            if event.open_branches > 0:
                yield from self._await_quiescence(event)
        finally:
            if event.open_branches > 0:
                self._branch_closed(event)
            self._release_branch_locks(event, branch, self.server_of(spec.target))
        event.committed_ms = self.sim.now
        reply_from = self.server_of(spec.target)
        yield self._charge(reply_from, costs.net_cpu_ms)
        event.hops += 1
        yield self.network.delay_ms(reply_from.name, client.name, costs.client_msg_bytes)

    # ------------------------------------------------------------------
    # Nested calls: per-call turn on the callee grain only
    # ------------------------------------------------------------------
    def _sync_call(
        self,
        event: Event,
        spec: CallSpec,
        branch: Branch,
        caller_server: Server,
        caller_cid: str,
    ) -> Generator:
        if spec.target == caller_cid or spec.target in (event.held or ()):
            raise OrleansDeadlockError(
                f"request {event.eid} synchronously re-entered busy grain "
                f"{spec.target!r} (non-reentrant call cycle)"
            )
        callee_server = self.server_of(spec.target)
        if callee_server.name != caller_server.name:
            yield self._charge(caller_server, self.costs.net_cpu_ms)
            event.hops += 1
            yield self.network.delay_ms(
                caller_server.name, callee_server.name, self.costs.proto_msg_bytes
            )
        call_branch = Branch(event)
        grant = self._reserve(event, call_branch, spec.target)
        yield self._charge(callee_server, self.costs.route_cpu_ms)
        yield grant
        try:
            result = yield from self._drive_body(event, spec, call_branch)
        finally:
            # Turn over: the callee grain frees as soon as the call
            # returns (no two-phase locking — hence no atomicity).
            yield None
            self._release_branch_locks(event, call_branch, self.server_of(spec.target))
        landed = self.server_of(spec.target)
        if landed.name != caller_server.name:
            yield self._charge(landed, self.costs.net_cpu_ms)
            event.hops += 1
            yield self.network.delay_ms(
                landed.name, caller_server.name, self.costs.proto_msg_bytes
            )
        return result

    def _spawn_async(
        self, event: Event, spec: CallSpec, caller_server: Server, caller_cid: str
    ) -> None:
        self._branch_opened(event)

        def runner() -> Generator:
            landed: Optional[Server] = caller_server
            try:
                yield from self._sync_call(event, spec, Branch(event), caller_server, caller_cid)
                landed = self.server_of(spec.target)
            except Exception as exc:  # noqa: BLE001 - surfaced on the event
                if event.error is None:
                    event.error = exc
            finally:
                _ = landed
                self._branch_closed(event)

        self.sim.process(runner(), name="event-task")
