"""repro: a reproduction of "Programming Scalable Cloud Services with AEON".

Subpackages
-----------
``repro.sim``
    Deterministic discrete-event simulation substrate (servers, network).
``repro.core``
    The AEON programming model and execution protocol.
``repro.elasticity``
    The eManager: context mapping, elasticity policies, migration.
``repro.baselines``
    EventWave and Orleans runtime models used as comparison baselines.
``repro.faults``
    Fault injection, failure detection and crash-recovery drivers.
``repro.apps``
    The game application and the TPC-C benchmark.
``repro.workloads``
    Client/workload generators and SLA accounting.
``repro.harness``
    Experiment drivers regenerating every table and figure of the paper.
"""

__version__ = "1.0.0"
