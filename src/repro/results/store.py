"""The on-disk result store: content-addressed keys, atomic persistence.

Layout (one directory, default ``.repro_results/``)::

    .repro_results/
        FORMAT            # the store/kernel version tag; mismatch wipes
        manifest.jsonl    # one JSON line per persisted entry (append-only)
        objects/
            <sha256>.pkl  # one zlib-compressed pickled value per key

Key derivation: :func:`cell_key` canonicalizes the cell's payload —
its ``"module:function"`` body path plus every kwarg, with frozen spec
dataclasses expanded field by field — into deterministic JSON, prefixes
the :data:`STORE_TAG` (store format + kernel version), and SHA-256
hashes the result.  Anything that could change a cell's value (spec
fields, scale, seed, ``--set`` overrides, fault/fencing knobs, the
kernel generation) therefore lands in the key, so a stale hit is
impossible; anything absent from the payload (``--jobs``, wall-clock,
host) cannot affect the key, so results are shared across invocations
and processes.

Failure handling is deliberately boring: object files are written
temp-then-:func:`os.replace` (readers never see a partial write, a
killed writer leaves only a stray ``*.tmp*`` swept by ``gc``/``clear``),
unreadable or truncated entries are logged and treated as cache misses
(recompute and overwrite — never crash a sweep), and a
:data:`FORMAT_VERSION`/:data:`KERNEL_TAG` bump invalidates the whole
store on open rather than silently mixing formats.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import pickle
import threading
import time
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = [
    "FORMAT_VERSION",
    "KERNEL_TAG",
    "STORE_TAG",
    "DEFAULT_DIR",
    "DIR_ENV",
    "MODE_ENV",
    "MISS",
    "canonical",
    "cell_key",
    "ResultStore",
    "resolve_dir",
    "resolve_mode",
    "open_store",
]

log = logging.getLogger("repro.results")

#: Store layout generation: bump when the on-disk format changes.
#: 2: object files are zlib-compressed pickles (v1 stores wipe on open).
FORMAT_VERSION = 2

#: Kernel/result generation: bump whenever simulation semantics change
#: (anything that would regenerate tests/data/figures_quick_seed0.json).
#: Every key embeds this tag, and the whole store is invalidated on open
#: when it moves — old results never mix with a new kernel.
KERNEL_TAG = "golden-quick-seed0-pr5"

#: The full version tag written to ``FORMAT`` and hashed into every key.
STORE_TAG = f"repro-results/{FORMAT_VERSION} kernel={KERNEL_TAG}"

#: Default store directory (relative to the invocation's CWD).
DEFAULT_DIR = ".repro_results"

#: Environment overrides honored by :func:`resolve_dir`/:func:`resolve_mode`.
DIR_ENV = "REPRO_RESULTS_DIR"
MODE_ENV = "REPRO_CACHE"

#: Sentinel returned by :meth:`ResultStore.load` when there is no usable
#: entry (distinct from ``None``, which is a legal cached value).
MISS = object()


# ----------------------------------------------------------------------
# Content-addressed keys
# ----------------------------------------------------------------------
def canonical(value: Any) -> Any:
    """A deterministic, JSON-encodable form of a cell payload value.

    Frozen spec dataclasses expand to ``["dataclass", qualname,
    {field: ...}]`` so *every* field lands in the key; tuples and lists
    collapse to tagged sequences; dict/set iteration order is sorted
    away (per the determinism contract, nothing may depend on hash
    order).  Unknown objects fall back to ``repr`` — stable for the
    value-like objects cells carry.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        fields = {
            f.name: canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return ["dataclass", f"{cls.__module__}.{cls.__qualname__}", fields]
    if isinstance(value, dict):
        return ["dict", sorted((repr(k), canonical(v)) for k, v in value.items())]
    if isinstance(value, (list, tuple)):
        return ["seq", [canonical(v) for v in value]]
    if isinstance(value, (set, frozenset)):
        return [
            "set",
            sorted(json.dumps(canonical(v), sort_keys=True) for v in value),
        ]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return ["repr", repr(value)]


def cell_key(cell: Any) -> str:
    """The content hash addressing ``cell``'s persisted result.

    ``cell`` is anything with the :class:`~repro.harness.runner.Cell`
    shape (``fn`` dotted path + ``kwargs``).  The cell's assembly ``key``
    is deliberately **excluded** — it is presentation, not content: the
    identical elastic setups fig7 and table1 share hash to one entry.
    """
    payload = json.dumps(
        ["cell", STORE_TAG, cell.fn, canonical(dict(cell.kwargs))],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _scenario_of(cell: Any) -> str:
    """Best-effort scenario label for the manifest (spec name or body path)."""
    spec = cell.kwargs.get("spec") if isinstance(cell.kwargs, dict) else None
    name = getattr(spec, "name", None)
    return name if isinstance(name, str) and name else cell.fn


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write-temp-then-rename: readers never observe a partial file."""
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class ResultStore:
    """A local content-addressed store of persisted cell results.

    Args: ``root`` the store directory (created on demand); ``refresh``
    makes every :meth:`load` a miss while :meth:`put` still overwrites —
    the ``--refresh`` recompute-and-repopulate mode.

    Thread safety: :meth:`put` may be called from executor completion
    callbacks (several threads of one parent process); writes are
    serialized by an internal lock and object files are atomic, so
    concurrent *processes* sharing a store directory at worst redo a
    cell and replace an entry with the identical bytes.

    ``hits``/``misses`` count this instance's :meth:`load` outcomes —
    the CLI summary and the CI 100%-warm-hits assertion read them.
    """

    def __init__(self, root: Any, refresh: bool = False) -> None:
        self.root = Path(root)
        self.refresh = bool(refresh)
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._objects = self.root / "objects"
        self._manifest = self.root / "manifest.jsonl"
        self._format = self.root / "FORMAT"
        self._open()

    # -- lifecycle ------------------------------------------------------
    def _open(self) -> None:
        """Create the layout; wipe any entries from another store version."""
        self._objects.mkdir(parents=True, exist_ok=True)
        try:
            tag = self._format.read_text(encoding="utf-8").strip()
        except OSError:
            tag = None
        if tag != STORE_TAG:
            if any(self._objects.iterdir()) or self._manifest.exists():
                log.warning(
                    "result store %s is %s (want %s): invalidating all entries",
                    self.root,
                    f"tagged {tag!r}" if tag else "untagged",
                    STORE_TAG,
                )
                self._wipe()
            _atomic_write_bytes(self._format, STORE_TAG.encode("utf-8"))

    def _wipe(self) -> None:
        for path in self._objects.iterdir():
            try:
                path.unlink()
            except OSError:
                pass
        try:
            self._manifest.unlink()
        except OSError:
            pass

    def _path(self, key: str) -> Path:
        return self._objects / f"{key}.pkl"

    # -- the cache protocol --------------------------------------------
    def load(self, cell: Any) -> Any:
        """The persisted value for ``cell``, or :data:`MISS`.

        A corrupted or truncated entry (bad pickle, partial write from a
        killed process) is logged and reported as a miss — the caller
        recomputes and :meth:`put` overwrites it atomically.
        """
        if self.refresh:
            with self._lock:
                self.misses += 1
            return MISS
        key = cell_key(cell)
        try:
            with open(self._path(key), "rb") as handle:
                value = pickle.loads(zlib.decompress(handle.read()))
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return MISS
        except Exception as error:  # corrupt/truncated entry -> recompute
            log.warning(
                "result store: unreadable entry %s… (%s: %s); recomputing",
                key[:12],
                type(error).__name__,
                error,
            )
            with self._lock:
                self.misses += 1
            return MISS
        with self._lock:
            self.hits += 1
        return value

    # -- the result-bus protocol (the repro.exec queue backend) --------
    # These read/write by *raw key* and bypass the hit/miss counters:
    # the queue coordinator polls the store as its result bus, and bus
    # traffic must not inflate the cache accounting the CLI summary and
    # the CI warm-pass gate report.
    def contains(self, key: str) -> bool:
        """Whether an object for ``key`` is on disk (one stat, no read)."""
        return self._path(key).exists()

    def fetch(self, key: str) -> Any:
        """The value stored under raw ``key``, or :data:`MISS`.

        Unlike :meth:`load` this ignores ``refresh`` and the counters —
        it is the queue coordinator's collection read, not a cache
        consult.  Corrupt entries degrade to :data:`MISS` as usual.
        """
        try:
            with open(self._path(key), "rb") as handle:
                return pickle.loads(zlib.decompress(handle.read()))
        except FileNotFoundError:
            return MISS
        except Exception as error:
            log.warning(
                "result store: unreadable entry %s… (%s: %s)",
                key[:12], type(error).__name__, error,
            )
            return MISS

    def discard(self, key: str) -> bool:
        """Drop the object stored under raw ``key`` (manifest untouched;
        :meth:`entries` joins on the object file, so the entry vanishes).
        Used by ``--refresh`` queue runs to stop a stale bus entry from
        short-circuiting the recompute."""
        try:
            self._path(key).unlink()
        except OSError:
            return False
        return True

    def note(self, record: Dict[str, Any]) -> None:
        """Append an *event* record (lease reclaim, speculative dispatch)
        to the manifest.  Event records carry an ``event`` field and no
        ``key``, so :meth:`entries` skips them; :meth:`events` reads
        them back for accounting."""
        entry = dict(record)
        entry.setdefault("at", time.time())
        entry.pop("key", None)  # never collide with object entries
        with self._lock:
            with open(self._manifest, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")

    def events(self) -> List[Dict[str, Any]]:
        """All event records :meth:`note` appended, in manifest order."""
        try:
            lines = self._manifest.read_text(encoding="utf-8").splitlines()
        except OSError:
            return []
        out: List[Dict[str, Any]] = []
        for line in lines:
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn append from a killed process
            if isinstance(entry, dict) and "event" in entry:
                out.append(entry)
        return out

    def put(
        self, cell: Any, value: Any, wall_ms: float = 0.0, status: str = "ok"
    ) -> str:
        """Persist ``cell``'s ``value``; returns the content key.

        The object file lands via write-temp-then-rename *before* the
        manifest line is appended, so a crash between the two leaves a
        valid (merely unlisted) entry, never a listed-but-broken one.
        """
        key = cell_key(cell)
        raw = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        blob = zlib.compress(raw)
        entry = {
            "key": key,
            "scenario": _scenario_of(cell),
            "cell": repr(tuple(cell.key)),
            "fn": cell.fn,
            "wall_ms": round(float(wall_ms), 3),
            "created_at": time.time(),
            "bytes": len(blob),
            "raw_bytes": len(raw),
            "status": status,
        }
        with self._lock:
            _atomic_write_bytes(self._path(key), blob)
            with open(self._manifest, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
        return key

    # -- maintenance (the ``python -m repro.results`` surface) ---------
    def entries(self) -> List[Dict[str, Any]]:
        """One dict per object on disk, joined with its manifest line.

        The manifest is append-only (overwrites append a fresh line;
        last one wins) and may contain torn lines from a killed process
        — both are handled here.  Objects persisted without a manifest
        line (killed between write and append) appear with ``scenario
        "?"`` and mtime-derived ``created_at``.
        """
        by_key: Dict[str, Dict[str, Any]] = {}
        try:
            lines = self._manifest.read_text(encoding="utf-8").splitlines()
        except OSError:
            lines = []
        for line in lines:
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn append from a killed process
            if isinstance(entry, dict) and "key" in entry:
                by_key[entry["key"]] = entry
        out: List[Dict[str, Any]] = []
        for path in sorted(self._objects.glob("*.pkl")):
            try:
                stat = path.stat()
            except OSError:
                continue
            entry = dict(
                by_key.get(
                    path.stem,
                    {
                        "key": path.stem,
                        "scenario": "?",
                        "cell": "?",
                        "fn": "?",
                        "wall_ms": 0.0,
                        "created_at": stat.st_mtime,
                        "status": "ok",
                    },
                )
            )
            entry["bytes"] = stat.st_size
            out.append(entry)
        out.sort(key=lambda e: (e.get("created_at", 0.0), e["key"]))
        return out

    def stats(self) -> Dict[str, Any]:
        """Aggregate counts for ``stats``: totals plus a per-scenario split."""
        entries = self.entries()
        per: Dict[str, Dict[str, float]] = {}
        for entry in entries:
            row = per.setdefault(
                entry["scenario"], {"entries": 0, "bytes": 0, "wall_ms": 0.0}
            )
            row["entries"] += 1
            row["bytes"] += entry["bytes"]
            row["wall_ms"] += entry.get("wall_ms", 0.0)
        return {
            "dir": str(self.root),
            "format": STORE_TAG,
            "entries": len(entries),
            "bytes": sum(e["bytes"] for e in entries),
            "wall_ms_saved_per_warm_run": round(
                sum(e.get("wall_ms", 0.0) for e in entries), 3
            ),
            "oldest": min((e["created_at"] for e in entries), default=None),
            "newest": max((e["created_at"] for e in entries), default=None),
            "scenarios": {name: per[name] for name in sorted(per)},
        }

    def _sweep_tmp(self) -> int:
        """Remove stray ``*.tmp*`` files a killed writer left behind."""
        removed = 0
        for path in self._objects.glob("*.tmp*"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def _rewrite_manifest(self, keep: List[Dict[str, Any]]) -> None:
        blob = "".join(json.dumps(e, sort_keys=True) + "\n" for e in keep)
        _atomic_write_bytes(self._manifest, blob.encode("utf-8"))

    def gc(
        self,
        older_than_s: Optional[float] = None,
        max_bytes: Optional[int] = None,
    ) -> int:
        """Drop entries by age and/or shrink the store to a byte budget.

        ``older_than_s`` removes entries older than that many seconds;
        ``max_bytes`` then evicts the *oldest* surviving entries until
        the remaining on-disk bytes fit the budget (``entries()`` sorts
        oldest-first, so eviction order is deterministic).  Either
        criterion may be used alone.  Returns the number removed.
        """
        now = time.time()
        kept: List[Dict[str, Any]] = []
        removed = 0
        for entry in self.entries():
            if (
                older_than_s is not None
                and now - float(entry.get("created_at", 0.0)) > older_than_s
            ):
                try:
                    self._path(entry["key"]).unlink()
                except OSError:
                    pass
                removed += 1
            else:
                kept.append(entry)
        if max_bytes is not None:
            total = sum(int(entry["bytes"]) for entry in kept)
            survivors: List[Dict[str, Any]] = []
            for entry in kept:
                if total > max_bytes:
                    try:
                        self._path(entry["key"]).unlink()
                    except OSError:
                        pass
                    total -= int(entry["bytes"])
                    removed += 1
                else:
                    survivors.append(entry)
            kept = survivors
        self._rewrite_manifest(kept)
        self._sweep_tmp()
        return removed

    def clear(self) -> int:
        """Drop every entry (the ``FORMAT`` tag stays); returns the count."""
        removed = len(self.entries())
        self._wipe()
        self._sweep_tmp()
        return removed


# ----------------------------------------------------------------------
# Mode/dir plumbing shared by run_scenario and the CLIs
# ----------------------------------------------------------------------
def resolve_dir(cache_dir: Optional[Any] = None) -> Path:
    """The store directory: explicit arg > ``REPRO_RESULTS_DIR`` > default."""
    if cache_dir:
        return Path(cache_dir)
    return Path(os.environ.get(DIR_ENV) or DEFAULT_DIR)


def resolve_mode(
    no_cache: bool = False,
    refresh: bool = False,
    explicit_dir: Optional[Any] = None,
    default: str = "auto",
) -> str:
    """Fold CLI flags and the ``REPRO_CACHE`` env var into a cache mode.

    Precedence: ``--no-cache`` > ``--refresh`` > an explicit
    ``--cache-dir`` (implies ``auto``) > ``REPRO_CACHE`` > ``default``.
    """
    if no_cache:
        return "off"
    if refresh:
        return "refresh"
    if explicit_dir:
        return "auto"
    mode = (os.environ.get(MODE_ENV) or default).strip().lower()
    if mode not in ("auto", "off", "refresh"):
        raise ValueError(
            f"invalid {MODE_ENV}={mode!r}; pick auto, off or refresh"
        )
    return mode


def open_store(
    mode: Optional[str] = "auto", cache_dir: Optional[Any] = None
) -> Optional[ResultStore]:
    """A :class:`ResultStore` for ``mode``, or ``None`` when caching is off."""
    if mode in (None, "off"):
        return None
    if mode not in ("auto", "refresh"):
        raise ValueError(f"invalid cache mode {mode!r}; pick auto, off or refresh")
    return ResultStore(resolve_dir(cache_dir), refresh=(mode == "refresh"))
