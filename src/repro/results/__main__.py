"""Maintenance CLI for the persistent result store::

    python -m repro.results ls                  # list persisted entries
    python -m repro.results stats               # totals + per-scenario split
    python -m repro.results gc --older-than 7d  # drop entries older than AGE
    python -m repro.results gc --max-bytes 256M # shrink to a byte budget
    python -m repro.results clear               # drop every entry

``--dir PATH`` (or ``REPRO_RESULTS_DIR``) selects the store; the
default is ``.repro_results/`` in the current directory.  ``AGE``
accepts ``30s``, ``45m``, ``12h``, ``7d`` or plain seconds; ``SIZE``
accepts ``512K``, ``256M``, ``2G`` or plain bytes.  ``gc`` needs at
least one criterion; with both, the age filter runs first, then the
oldest surviving entries are evicted until the budget fits.  See
docs/ARCHITECTURE.md § Result store.
"""

from __future__ import annotations

import argparse
import time
from typing import List, Optional

from .store import ResultStore, resolve_dir

_AGE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}

_SIZE_UNITS = {"k": 1024, "m": 1024**2, "g": 1024**3}


def parse_size(text: str) -> int:
    """``"512K"/"256M"/"2G"`` (or bare bytes) -> bytes."""
    text = text.strip().lower().rstrip("b")
    unit = 1
    if text and text[-1] in _SIZE_UNITS:
        unit = _SIZE_UNITS[text[-1]]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid size {text!r}; use e.g. 512K, 256M, 2G or bytes"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError("size must be >= 0")
    return int(value * unit)


def parse_age(text: str) -> float:
    """``"30s"/"45m"/"12h"/"7d"`` (or bare seconds) -> seconds."""
    text = text.strip().lower()
    unit = 1.0
    if text and text[-1] in _AGE_UNITS:
        unit = _AGE_UNITS[text[-1]]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid age {text!r}; use e.g. 30s, 45m, 12h, 7d or seconds"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError("age must be >= 0")
    return value * unit


def _when(timestamp: Optional[float]) -> str:
    if not timestamp:
        return "-"
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(timestamp))


def _human_bytes(count: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(count) < 1024.0 or unit == "GB":
            return f"{count:.1f} {unit}" if unit != "B" else f"{int(count)} B"
        count /= 1024.0
    return f"{count:.1f} GB"  # pragma: no cover (loop always returns)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.results", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--dir",
        default=None,
        metavar="PATH",
        help="store directory (default: $REPRO_RESULTS_DIR or .repro_results)",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("ls", help="list persisted entries")
    commands.add_parser("stats", help="entry/byte totals and per-scenario split")
    gc = commands.add_parser(
        "gc", help="drop entries by age and/or shrink to a byte budget"
    )
    gc.add_argument(
        "--older-than",
        type=parse_age,
        default=None,
        metavar="AGE",
        help="drop entries older than AGE (30s, 45m, 12h, 7d or seconds)",
    )
    gc.add_argument(
        "--max-bytes",
        type=parse_size,
        default=None,
        metavar="SIZE",
        help="evict oldest entries until the store fits SIZE "
        "(512K, 256M, 2G or bytes)",
    )
    commands.add_parser("clear", help="drop every entry")
    args = parser.parse_args(argv)

    store = ResultStore(resolve_dir(args.dir))
    if args.command == "ls":
        entries = store.entries()
        for entry in entries:
            print(
                f"{_when(entry.get('created_at'))}  "
                f"{entry['key'][:12]}  "
                f"{entry['scenario']:<20}  "
                f"{entry.get('wall_ms', 0.0):>9.1f} ms  "
                f"{_human_bytes(entry['bytes']):>10}  "
                f"{entry.get('cell', '?')}"
            )
        print(f"{len(entries)} entr{'y' if len(entries) == 1 else 'ies'} in {store.root}")
    elif args.command == "stats":
        stats = store.stats()
        print(f"store:    {stats['dir']}")
        print(f"format:   {stats['format']}")
        print(f"entries:  {stats['entries']}")
        print(f"bytes:    {_human_bytes(stats['bytes'])}")
        print(f"saved/warm run: {stats['wall_ms_saved_per_warm_run'] / 1000.0:.1f} s")
        print(f"oldest:   {_when(stats['oldest'])}")
        print(f"newest:   {_when(stats['newest'])}")
        for name, row in stats["scenarios"].items():
            print(
                f"  {name:<24} {row['entries']:>4} entries  "
                f"{_human_bytes(row['bytes']):>10}  "
                f"{row['wall_ms'] / 1000.0:>7.1f} s"
            )
    elif args.command == "gc":
        if args.older_than is None and args.max_bytes is None:
            parser.error("gc needs --older-than and/or --max-bytes")
        removed = store.gc(args.older_than, max_bytes=args.max_bytes)
        print(f"gc: removed {removed} entr{'y' if removed == 1 else 'ies'} from {store.root}")
    elif args.command == "clear":
        removed = store.clear()
        print(f"clear: removed {removed} entr{'y' if removed == 1 else 'ies'} from {store.root}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
