"""Persistent result store: content-addressed cell caching and resumable sweeps.

Every experiment cell in this repository is a pure function of its
payload — the expanded :class:`~repro.harness.runner.Cell` carries a
dotted body path plus picklable kwargs (spec fields, scale, seed,
resolved overrides), and the determinism contract guarantees the same
payload computes the same value in any process at any time.  That makes
cell results *content-addressable*: hash the payload into a key, persist
the value under it, and any later invocation that expands to the same
cell can skip the simulation entirely.

This package owns that store (see docs/ARCHITECTURE.md § Result store):

* :func:`cell_key` — the stable content hash over ``(store/kernel
  version tag, cell.fn, canonicalized kwargs)``;
* :class:`ResultStore` — the on-disk store (default ``.repro_results/``,
  overridable via ``--cache-dir`` / ``REPRO_RESULTS_DIR``): atomic
  write-temp-then-rename object files plus an append-only JSONL
  manifest; corrupted or truncated entries are treated as cache misses
  and recomputed, never crashing a sweep;
* :func:`open_store` / :func:`resolve_mode` / :func:`resolve_dir` —
  the ``"auto" | "off" | "refresh"`` mode plumbing shared by
  :func:`~repro.harness.scenarios.run_scenario` and the experiments CLI;
* ``python -m repro.results`` — the maintenance CLI (``ls``, ``stats``,
  ``gc --older-than AGE``, ``clear``).

The execution layer (:mod:`repro.harness.runner`) consults the store
before dispatching cells and persists each result on completion, so an
interrupted ``--all`` resumes where it died and an edited sweep reuses
every untouched cell.  This package depends only on the standard
library; the harness calls down into it.
"""

from .store import (
    DEFAULT_DIR,
    DIR_ENV,
    FORMAT_VERSION,
    KERNEL_TAG,
    MISS,
    MODE_ENV,
    STORE_TAG,
    ResultStore,
    canonical,
    cell_key,
    open_store,
    resolve_dir,
    resolve_mode,
)

__all__ = [
    "DEFAULT_DIR",
    "DIR_ENV",
    "FORMAT_VERSION",
    "KERNEL_TAG",
    "MISS",
    "MODE_ENV",
    "STORE_TAG",
    "ResultStore",
    "canonical",
    "cell_key",
    "open_store",
    "resolve_dir",
    "resolve_mode",
]
