"""Columnar context state: the struct-of-arrays :class:`ContextTable`.

A simulated deployment used to keep per-context bookkeeping spread over
three plain dicts on the runtime (``instances``, ``placement``,
``locks``) plus an ``_aeon_version`` attribute on every instance.  That
layout caps scale: a million contexts means a million object graphs and
four hash lookups per dispatch.

The table flips the layout to struct-of-arrays.  Every context id is
*interned* once into a dense integer slot, and each piece of per-context
state is a parallel column indexed by that slot:

* ``cids[slot]``     — the interned string cid (``None`` = free slot);
* ``instance[slot]`` — the live :class:`~repro.core.context.ContextClass`
  object, or ``None`` (not yet materialized / unregistered);
* ``owner[slot]``    — the hosting server's name (placement);
* ``lock[slot]``     — the per-context :class:`~repro.core.locking.ContextLock`;
* ``version[slot]``  — the write-version counter (``_aeon_version``);
* ``parent[slot]``   — slot of the single ownership parent, ``-1`` if
  none/multiple (a structural hint, not the ownership source of truth).

Instances carry their slot as ``_aeon_slot`` so hot paths (version
bumps, lock grabs, server lookups) are one list index instead of a dict
probe per hop.

**Determinism contract.**  The legacy dicts were iterated by product
code (e.g. the eManager's scale-in scan walks ``placement.items()``),
so iteration order is observable in traces.  Slot order is *not*
insertion order once free slots are recycled, so the mapping facade
:class:`ContextColumnView` keeps a per-view insertion-order dict of
keys (values stay in the columns).  A view therefore behaves exactly
like the dict it replaced — same iteration order, same semantics on
overwrite (position kept) and re-insert after delete (moves to the
end) — and the columns stay dense for the hot paths.

A slot is freed only when all three views have released it (instance,
owner and lock columns all ``None``); ``compact()`` squeezes out free
slots in cid-sorted live order and re-stamps ``_aeon_slot`` on live
instances.
"""

from __future__ import annotations

from array import array
from collections.abc import MutableMapping
from typing import Dict, Iterator, List, Optional

__all__ = ["ContextTable", "ContextColumnView"]


class ContextTable:
    """Dense struct-of-arrays storage for per-context runtime state."""

    __slots__ = ("index", "cids", "instance", "owner", "lock", "version",
                 "parent", "_free")

    def __init__(self) -> None:
        #: cid -> slot intern map (the only string-keyed lookup left).
        self.index: Dict[str, int] = {}
        self.cids: List[Optional[str]] = []
        self.instance: List[object] = []
        self.owner: List[Optional[str]] = []
        self.lock: List[object] = []
        self.version = array("q")
        self.parent = array("q")
        self._free: List[int] = []

    def __len__(self) -> int:
        """Number of live (interned, not freed) rows."""
        return len(self.index)

    @property
    def capacity(self) -> int:
        """Total rows including free slots (the physical column length)."""
        return len(self.cids)

    def intern(self, cid: str) -> int:
        """Return ``cid``'s slot, allocating (or recycling) a row if new."""
        slot = self.index.get(cid)
        if slot is not None:
            return slot
        free = self._free
        if free:
            slot = free.pop()
            self.cids[slot] = cid
            self.version[slot] = 0
            self.parent[slot] = -1
        else:
            slot = len(self.cids)
            self.cids.append(cid)
            self.instance.append(None)
            self.owner.append(None)
            self.lock.append(None)
            self.version.append(0)
            self.parent.append(-1)
        self.index[cid] = slot
        return slot

    def slot(self, cid: str) -> int:
        """Slot of an interned cid; raises ``KeyError`` if unknown."""
        return self.index[cid]

    def grow(self, count: int) -> int:
        """Append ``count`` fresh unnamed rows; returns the first slot.

        Used by bulk context creation: the caller interns the cids into
        the contiguous range afterwards.  Never recycles free slots, so
        the returned range ``[start, start + count)`` is contiguous.
        """
        start = len(self.cids)
        self.cids.extend([None] * count)
        self.instance.extend([None] * count)
        self.owner.extend([None] * count)
        self.lock.extend([None] * count)
        self.version.extend([0] * count)
        self.parent.extend([-1] * count)
        return start

    def _maybe_free(self, slot: int) -> None:
        """Recycle ``slot`` once no column holds state for it."""
        if (self.instance[slot] is None and self.owner[slot] is None
                and self.lock[slot] is None):
            cid = self.cids[slot]
            if cid is not None:
                del self.index[cid]
                self.cids[slot] = None
                self._free.append(slot)

    def compact(self) -> Dict[int, int]:
        """Squeeze out free slots; returns the old-slot -> new-slot map.

        Live rows are laid out in sorted-cid order (a total order — no
        dependence on historical allocation), columns are rebuilt *in
        place* (views and the runtime hold references to the column
        objects), ``parent`` links are remapped, and every live
        instance gets its ``_aeon_slot`` re-stamped.
        """
        order = sorted(self.index)
        remap = {self.index[cid]: new for new, cid in enumerate(order)}
        old_parent = self.parent
        new_parent = array("q", (
            remap.get(old_parent[self.index[cid]], -1) for cid in order))
        for column in (self.instance, self.owner, self.lock):
            column[:] = [column[self.index[cid]] for cid in order]
        self.version = array("q", (self.version[self.index[cid]] for cid in order))
        self.parent = new_parent
        self.cids[:] = order
        self.index = {cid: slot for slot, cid in enumerate(order)}
        self._free = []
        for slot, instance in enumerate(self.instance):
            if instance is not None:
                object.__setattr__(instance, "_aeon_slot", slot)
        return remap


class ContextColumnView(MutableMapping):
    """A dict-shaped view over one :class:`ContextTable` column.

    Replicates plain-dict semantics exactly — including insertion-order
    iteration, which product code observes (the eManager scale-in scan
    walks ``placement.items()`` unsorted) — while the values live in the
    dense column.  ``None`` is the absent sentinel: columns never hold
    ``None`` for a present key.
    """

    __slots__ = ("_table", "_column", "_order")

    def __init__(self, table: ContextTable, column) -> None:
        self._table = table
        self._column = column
        # Insertion-order key registry (values always None); bulk
        # creation appends here directly to skip per-key intern calls.
        self._order: Dict[str, None] = {}

    def __getitem__(self, cid: str):
        slot = self._table.index.get(cid)
        if slot is None:
            raise KeyError(cid)
        value = self._column[slot]
        if value is None:
            raise KeyError(cid)
        return value

    def get(self, cid: str, default=None):
        slot = self._table.index.get(cid)
        if slot is None:
            return default
        value = self._column[slot]
        return default if value is None else value

    def __contains__(self, cid: object) -> bool:
        slot = self._table.index.get(cid)
        return slot is not None and self._column[slot] is not None

    def __setitem__(self, cid: str, value) -> None:
        if value is None:
            raise ValueError("None is the absent sentinel; cannot store it")
        self._column[self._table.intern(cid)] = value
        self._order[cid] = None  # appends if new, keeps position if present

    def __delitem__(self, cid: str) -> None:
        table = self._table
        slot = table.index.get(cid)
        if slot is None or self._column[slot] is None:
            raise KeyError(cid)
        self._column[slot] = None
        del self._order[cid]
        table._maybe_free(slot)

    def __iter__(self) -> Iterator[str]:
        return iter(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({dict(self.items())!r})"
