"""The ownership network: a context DAG completed into a join semi-lattice.

This module implements §3 of the paper:

* contexts form a DAG under the *directly-owned* relation (a context C is
  directly owned by C' if a field of C' references C);
* ``desc(G, C)`` — the descendants of C, **including C itself**;
* ``share(G, C)`` — the two-clause definition from the paper:

  1. contexts C' whose *direct children* intersect the proper
     descendants of C ("contexts which might be an owner of C and
     moreover share a common child with C" — e.g. the Kings Room shares
     the Treasure child with Player1, and a TPC-C District shares Order
     children with its Customers);
  2. contexts C' incomparable with C whose descendant sets intersect
     (e.g. Player2 shares the Treasure with Player1).

* ``dom(G, C) = lub(G, share(G, C) ∪ {C})`` — the context at which every
  event targeting C is sequenced by the execution protocol.

When the least upper bound is not unique (multiple maxima sharing common
descendants) the paper adds "unnamed contexts"; here
:meth:`OwnershipNetwork.dominator` creates a *virtual root* joining the
offending maxima, which completes the DAG into a join semi-lattice.

Caching
-------
``desc``, ``share`` and ``dom`` are cached.  The common dynamic mutation —
adding a fresh leaf context (TPC-C creates an Order context on every
NewOrder transaction) — is handled incrementally: descendant sets of the
ancestors gain the leaf, new sharing pairs are derived from the parents'
ancestor sets, and only dominators whose share set actually changed are
invalidated.  Any other mutation (edges between existing contexts,
removals) conservatively clears all caches.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .errors import FencedError, OwnershipCycleError, UnknownContextError

__all__ = ["FencingTable", "OwnershipNetwork", "VIRTUAL_PREFIX"]

VIRTUAL_PREFIX = "~vroot:"
"""Prefix of automatically created virtual (unnamed) join contexts."""


class FencingTable:
    """Per-subtree fencing epochs for honest failure handling.

    Each checkpoint root carries a monotonically increasing *fencing
    epoch*.  When the failure detector **declares** a server dead the
    recovery manager bumps the epoch of every subtree hosted there
    (:meth:`fence`) — from that instant, writes anywhere in the fenced
    subtree raise :class:`FencedError` until a new holder is granted the
    fresh epoch (:meth:`grant`).  The table never consults cluster
    ground truth: it is driven purely by declarations and grants, so a
    live-but-partitioned owner is fenced exactly like a dead one.

    A separate *manager epoch* fences the eManager itself: a recovered
    successor bumps it, and the predecessor's migration-WAL appends are
    rejected as stale (see ``MigrationCoordinator._log``).

    All state is mirrored to cloud storage by the eManager so that a
    successor rebuilds the same table after a failover.
    """

    def __init__(self) -> None:
        self._epochs: Dict[str, int] = {}
        self._fenced: Set[str] = set()
        self._holders: Dict[str, Optional[str]] = {}
        self._root_of: Dict[str, str] = {}
        self.manager_epoch = 0
        #: Writes rejected by :meth:`check_write` (stale-owner attempts).
        self.rejected = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def track(self, root: str, members: Iterable[str], holder: Optional[str]) -> None:
        """Register ``root`` (and its member cids) as a fenceable subtree."""
        self._epochs.setdefault(root, 0)
        self._holders.setdefault(root, holder)
        for member in members:
            self._root_of[member] = root

    def roots(self) -> List[str]:
        """All tracked subtree roots, sorted."""
        return sorted(self._epochs)

    def root_of(self, cid: str) -> Optional[str]:
        """The tracked subtree root covering ``cid`` (None if untracked)."""
        return self._root_of.get(cid)

    # ------------------------------------------------------------------
    # Epoch protocol
    # ------------------------------------------------------------------
    def epoch(self, root: str) -> int:
        """Current fencing epoch of ``root`` (0 if never fenced)."""
        return self._epochs.get(root, 0)

    def holder(self, root: str) -> Optional[str]:
        """Server currently granted ``root`` (None while fenced)."""
        return self._holders.get(root)

    def is_fenced(self, root: str) -> bool:
        """Whether ``root`` is fenced (declared, handoff still pending)."""
        return root in self._fenced

    def fence(self, root: str) -> int:
        """Bump ``root``'s epoch and reject writes until a new grant.

        Idempotent while already fenced (a lease re-declaration must not
        bump again, or the eventual grant would race the re-declaration).
        Returns the new epoch.
        """
        if root not in self._fenced:
            self._epochs[root] = self._epochs.get(root, 0) + 1
            self._fenced.add(root)
            self._holders[root] = None
        return self._epochs[root]

    def grant(self, root: str, holder: str) -> int:
        """Hand ``root`` to ``holder`` at the current epoch; lifts the fence."""
        self._fenced.discard(root)
        self._holders[root] = holder
        return self._epochs.get(root, 0)

    def check_write(self, cid: str) -> None:
        """Raise :class:`FencedError` if ``cid`` sits in a fenced subtree.

        O(1); called on the write path only when fencing is enabled.
        """
        root = self._root_of.get(cid)
        if root is not None and root in self._fenced:
            self.rejected += 1
            raise FencedError(
                f"write to {cid!r} rejected: subtree {root!r} is fenced at "
                f"epoch {self._epochs.get(root, 0)} pending handoff"
            )

    def adopt_epoch(self, root: str, epoch: int) -> None:
        """Adopt a durably persisted epoch for ``root``.

        Failover path: a successor rebuilding the table from cloud
        storage takes the stored epoch when it is ahead of the local one
        — epochs only ever move forward.
        """
        if int(epoch) > self._epochs.get(root, 0):
            self._epochs[root] = int(epoch)

    def bump_manager(self) -> int:
        """Bump the eManager fencing epoch (successor takeover)."""
        self.manager_epoch += 1
        return self.manager_epoch

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """A serializable copy of the whole table (for cloud storage)."""
        return {
            "manager_epoch": self.manager_epoch,
            "epochs": dict(self._epochs),
            "fenced": sorted(self._fenced),
            "holders": dict(self._holders),
        }

    def restore(self, payload: Dict[str, object]) -> None:
        """Overwrite epoch state from a :meth:`snapshot` payload.

        Membership (``track``) is re-derived by the caller from the
        ownership network; only epochs, fences and holders persist.
        """
        self.manager_epoch = int(payload.get("manager_epoch", 0))
        self._epochs.update(payload.get("epochs", {}))  # type: ignore[arg-type]
        self._fenced.update(payload.get("fenced", ()))  # type: ignore[arg-type]
        self._holders.update(payload.get("holders", {}))  # type: ignore[arg-type]


class OwnershipNetwork:
    """A mutable DAG of context ids with dominator computation."""

    def __init__(self) -> None:
        self._parents: Dict[str, Set[str]] = {}
        self._children: Dict[str, Set[str]] = {}
        self._desc_cache: Dict[str, Set[str]] = {}
        self._share_cache: Dict[str, Set[str]] = {}
        self._dom_cache: Dict[str, str] = {}
        # (src, dst) -> path; valid across leaf additions (a childless
        # leaf can't appear on, or shorten, a path between existing
        # nodes), cleared on every other structural mutation.
        self._path_cache: Dict[Tuple[str, str], List[str]] = {}
        self._vroot_counter = 0
        # Structural epoch, bumped on every mutation; lets long-lived
        # consumers (e.g. client-side location caches) detect staleness.
        self.epoch = 0

    # ------------------------------------------------------------------
    # Structure mutation
    # ------------------------------------------------------------------
    def add_context(self, cid: str, parents: Iterable[str] = ()) -> None:
        """Add a fresh (childless) context, optionally under parents.

        This is the fast path: a new leaf cannot lower any least upper
        bound, so caches are patched incrementally rather than cleared.
        """
        if cid in self._parents:
            raise ValueError(f"context {cid!r} already exists")
        parent_list = sorted(set(parents))
        for parent in parent_list:
            self._require(parent)
        self._parents[cid] = set(parent_list)
        self._children[cid] = set()
        for parent in parent_list:
            self._children[parent].add(cid)
        self.epoch += 1
        self._desc_cache[cid] = {cid}
        self._share_cache[cid] = set()
        self._patch_caches_for_leaf(cid, parent_list)

    def _patch_caches_for_leaf(self, leaf: str, parent_list: List[str]) -> None:
        """Incrementally account for a fresh leaf under ``parent_list``."""
        ancestor_sets = [self._ancestors_of(parent) for parent in parent_list]
        all_ancestors: Set[str] = set().union(*ancestor_sets) if ancestor_sets else set()
        for ancestor in all_ancestors:
            cached = self._desc_cache.get(ancestor)
            if cached is not None:
                cached.add(leaf)
        if len(parent_list) <= 1:
            return
        # New sharing pairs arise only between ancestors of different
        # parents of the leaf (the leaf is their new common descendant).
        for i, left_parent in enumerate(parent_list):
            for j, right_parent in enumerate(parent_list):
                if i >= j:
                    continue
                for left in ancestor_sets[i]:
                    for right in ancestor_sets[j]:
                        if left == right:
                            continue
                        self._record_new_sharing(left, right, left_parent, right_parent)

    def _record_new_sharing(
        self, left: str, right: str, left_parent: str, right_parent: str
    ) -> None:
        """Register that ``left``/``right`` now share the new leaf."""
        left_desc = self.descendants(left)
        right_desc = self.descendants(right)
        incomparable = left not in right_desc and right not in left_desc
        # Clause 1: a direct parent of the leaf appears in the share set
        # of every other ancestor (the leaf is a shared child) — unless
        # it is that ancestor's descendant (lub-irrelevant, see
        # _compute_share).
        if left == left_parent and left not in right_desc:
            self._share_add(right, left)
        if right == right_parent and right not in left_desc:
            self._share_add(left, right)
        # Clause 2: incomparable contexts with intersecting descendants.
        if incomparable:
            self._share_add(left, right)
            self._share_add(right, left)

    def _share_add(self, owner: str, member: str) -> None:
        cached = self._share_cache.get(owner)
        if cached is not None and member not in cached:
            cached.add(member)
            self._dom_cache.pop(owner, None)

    def remove_context(self, cid: str) -> None:
        """Remove a context and all its ownership edges."""
        self._require(cid)
        for parent in list(self._parents[cid]):
            self._children[parent].discard(cid)
        for child in list(self._children[cid]):
            self._parents[child].discard(cid)
        del self._parents[cid]
        del self._children[cid]
        self._invalidate()

    def add_edge(self, parent: str, child: str) -> None:
        """Record that ``parent`` directly owns ``child``.

        Raises :class:`OwnershipCycleError` if the edge would create a
        cycle — the runtime check the paper requires for inductive
        (self-recursive) contextclass structures.
        """
        self._require(parent)
        self._require(child)
        if child in self._children[parent]:
            return
        self._check_no_cycle(parent, child)
        self._children[parent].add(child)
        self._parents[child].add(parent)
        self._invalidate()

    def remove_edge(self, parent: str, child: str) -> None:
        """Remove a direct-ownership edge (no-op if absent)."""
        self._require(parent)
        self._require(child)
        if child not in self._children[parent]:
            return
        self._children[parent].discard(child)
        self._parents[child].discard(parent)
        self._invalidate()

    def _check_no_cycle(self, parent: str, child: str) -> None:
        if parent == child or parent in self._reachable_from(child):
            raise OwnershipCycleError(
                f"edge {parent!r} -> {child!r} would create an ownership cycle"
            )

    def _invalidate(self) -> None:
        self._desc_cache.clear()
        self._share_cache.clear()
        self._dom_cache.clear()
        self._path_cache.clear()
        self.epoch += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, cid: str) -> bool:
        return cid in self._parents

    def __len__(self) -> int:
        return len(self._parents)

    def contexts(self) -> List[str]:
        """All context ids, including virtual join contexts."""
        return list(self._parents)

    def parents(self, cid: str) -> Set[str]:
        """Direct owners of ``cid``."""
        self._require(cid)
        return set(self._parents[cid])

    def children(self, cid: str) -> Set[str]:
        """Contexts directly owned by ``cid``."""
        self._require(cid)
        return set(self._children[cid])

    def is_virtual(self, cid: str) -> bool:
        """Whether ``cid`` is an automatically added join context."""
        return cid.startswith(VIRTUAL_PREFIX)

    def descendants(self, cid: str) -> Set[str]:
        """``desc(G, C)``: all contexts reachable from ``cid``, inclusive.

        The returned set is the live cache entry; callers must not
        mutate it.
        """
        self._require(cid)
        cached = self._desc_cache.get(cid)
        if cached is None:
            cached = self._reachable_from(cid)
            self._desc_cache[cid] = cached
        return cached

    def ancestors(self, cid: str) -> FrozenSet[str]:
        """All contexts that transitively own ``cid``, inclusive."""
        self._require(cid)
        return frozenset(self._ancestors_of(cid))

    def roots(self) -> List[str]:
        """Contexts with no owners (maximal elements)."""
        return [cid for cid, parents in self._parents.items() if not parents]

    def owns(self, owner: str, owned: str) -> bool:
        """Whether ``owner`` transitively owns ``owned`` (or equals it)."""
        return owned in self.descendants(owner)

    def _reachable_from(self, cid: str) -> Set[str]:
        seen = {cid}
        frontier = deque([cid])
        while frontier:
            node = frontier.popleft()
            for child in self._children.get(node, ()):
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        return seen

    def _ancestors_of(self, cid: str) -> Set[str]:
        seen = {cid}
        frontier = deque([cid])
        while frontier:
            node = frontier.popleft()
            for parent in self._parents.get(node, ()):
                if parent not in seen:
                    seen.add(parent)
                    frontier.append(parent)
        return seen

    # ------------------------------------------------------------------
    # share / dominator (§3 of the paper)
    # ------------------------------------------------------------------
    def share(self, cid: str) -> Set[str]:
        """Contexts that might conflict with events targeting ``cid``.

        Returns a copy; the internal cache is maintained incrementally
        for leaf additions and recomputed from scratch otherwise.
        """
        self._require(cid)
        cached = self._share_cache.get(cid)
        if cached is None:
            cached = self._compute_share(cid)
            self._share_cache[cid] = cached
        return set(cached)

    def _compute_share(self, cid: str) -> Set[str]:
        mine = self.descendants(cid)
        mine_proper = mine - {cid}
        my_ancestors = self._ancestors_of(cid)
        sharing: Set[str] = set()
        for other in self._parents:
            # Descendants of C never affect lub(share ∪ {C}) (every
            # ancestor of C is an ancestor of its descendants), so they
            # are excluded for both clauses.
            if other == cid or other in mine:
                continue
            # Clause 1: other's direct children intersect my proper
            # descendants (shared child with a (potential) owner).
            if not self._children[other].isdisjoint(mine_proper):
                sharing.add(other)
                continue
            # Clause 2: incomparable with intersecting descendant sets.
            if other in my_ancestors:
                continue
            if not mine.isdisjoint(self.descendants(other)):
                sharing.add(other)
        return sharing

    def dominator(self, cid: str) -> str:
        """``dom(G, C)``: the sequencing context for events targeting C.

        Computed as the least upper bound of ``share(C) ∪ {C}``.  If the
        bound does not exist or is not unique, a virtual join context is
        created over the relevant maxima (the semi-lattice completion)
        and becomes the dominator.  Cached until invalidated.
        """
        self._require(cid)
        cached = self._dom_cache.get(cid)
        if cached is not None and cached in self._parents:
            return cached
        group = self.share(cid) | {cid}
        dominator = self._lub(group)
        self._dom_cache[cid] = dominator
        return dominator

    def _lub(self, group: Set[str]) -> str:
        if len(group) == 1:
            return next(iter(group))
        common: Optional[Set[str]] = None
        for member in group:
            member_ancestors = self._ancestors_of(member)
            common = member_ancestors if common is None else (common & member_ancestors)
        assert common is not None
        if common:
            minimal = self._minimal_of(common)
            if len(minimal) == 1:
                return minimal[0]
            join_over = minimal
        else:
            # Disjoint maxima sharing descendants: join their roots.
            join_over = sorted(
                {root for member in group for root in self._roots_above(member)}
            )
        return self._virtual_join(join_over)

    def _minimal_of(self, candidates: Set[str]) -> List[str]:
        """Elements of ``candidates`` with no *descendant* also in the set."""
        minimal = []
        for candidate in sorted(candidates):
            below = self.descendants(candidate) - {candidate}
            if below.isdisjoint(candidates):
                minimal.append(candidate)
        return minimal

    def _roots_above(self, cid: str) -> List[str]:
        return [a for a in self._ancestors_of(cid) if not self._parents[a]]

    def _virtual_join(self, members: List[str]) -> str:
        """Find or create the virtual context owning all of ``members``."""
        key = set(members)
        for candidate in self._parents:
            if self.is_virtual(candidate) and self._children[candidate] >= key:
                return candidate
        self._vroot_counter += 1
        vroot = f"{VIRTUAL_PREFIX}{self._vroot_counter}"
        self._parents[vroot] = set()
        self._children[vroot] = set()
        for member in members:
            self._children[vroot].add(member)
            self._parents[member].add(vroot)
        self._invalidate()
        return vroot

    # ------------------------------------------------------------------
    # Paths (Algorithm 2, ``findPath``)
    # ------------------------------------------------------------------
    def find_path(self, src: str, dst: str) -> List[str]:
        """A shortest ownership path from ``src`` down to ``dst``, inclusive.

        Deterministic (children explored in sorted order).  Raises
        :class:`UnknownContextError` if either endpoint is missing and
        ``ValueError`` if ``dst`` is not a descendant of ``src``.
        """
        self._require(src)
        self._require(dst)
        if src == dst:
            return [src]
        cached = self._path_cache.get((src, dst))
        if cached is not None:
            return list(cached)
        # Walk upward from dst: ancestor sets are shallow even when the
        # graph holds many sibling leaves (TPC-C Orders), so this is far
        # cheaper than a downward BFS over the whole descendant set.
        back: Dict[str, str] = {}
        frontier = deque([dst])
        while frontier:
            node = frontier.popleft()
            for parent in sorted(self._parents[node]):
                if parent in back or parent == dst:
                    continue
                back[parent] = node
                if parent == src:
                    path = [src]
                    while path[-1] != dst:
                        path.append(back[path[-1]])
                    self._path_cache[(src, dst)] = path
                    return list(path)
                frontier.append(parent)
        raise ValueError(f"{dst!r} is not a descendant of {src!r}")

    def _require(self, cid: str) -> None:
        if cid not in self._parents:
            raise UnknownContextError(f"unknown context {cid!r}")

    # ------------------------------------------------------------------
    # Validation / export
    # ------------------------------------------------------------------
    def is_acyclic(self) -> bool:
        """Verify the whole network is a DAG (used by tests and checks)."""
        in_degree = {cid: len(parents) for cid, parents in self._parents.items()}
        frontier = deque([cid for cid, deg in in_degree.items() if deg == 0])
        visited = 0
        while frontier:
            node = frontier.popleft()
            visited += 1
            for child in self._children[node]:
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    frontier.append(child)
        return visited == len(self._parents)

    def edges(self) -> List[Tuple[str, str]]:
        """All (parent, child) ownership edges."""
        return [
            (parent, child)
            for parent, kids in self._children.items()
            for child in kids
        ]

    def snapshot(self) -> Dict[str, List[str]]:
        """A serializable copy of the adjacency (parent -> children)."""
        return {cid: sorted(kids) for cid, kids in self._children.items()}
