"""Type-based enforcement of DAG ownership (§3, "Type-based enforcement").

The paper runs a single pass over contextclass declarations collecting,
for each contextclass ``C0`` that can reference ``C1``, the constraint
``C1 <= C0``, and rejects programs whose constraint graph is cyclic —
except for reflexive edges (``C <= C``), which are allowed to support
inductive data structures (linked lists, trees) at the price of a runtime
DAG check on every ownership mutation.

Here the declarations are Python classes with :class:`~repro.core.context.Ref`
/ :class:`~repro.core.context.RefSet` descriptors; registration collects
the same constraints and :meth:`StaticAnalysis.check` enforces acyclicity.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .errors import StaticAnalysisError

__all__ = ["StaticAnalysis"]


class StaticAnalysis:
    """Collects and checks the contextclass constraint graph."""

    def __init__(self) -> None:
        # owner type -> set of referenced (owned) types
        self._refs: Dict[str, Set[str]] = {}
        self._checked_epoch = -1
        self._epoch = 0

    def register(self, owner_type: str, referenced_types: Set[str]) -> None:
        """Record that ``owner_type`` declares refs to ``referenced_types``."""
        known = self._refs.setdefault(owner_type, set())
        if not referenced_types <= known:
            known |= referenced_types
            self._epoch += 1

    def registered_types(self) -> List[str]:
        """All contextclass type names seen so far."""
        return sorted(self._refs)

    def recursive_types(self) -> Set[str]:
        """Types with a reflexive constraint (inductive structures).

        These are legal but force runtime cycle checks on ownership
        mutations (which :class:`repro.core.ownership.OwnershipNetwork`
        performs unconditionally in this implementation).
        """
        return {t for t, refs in self._refs.items() if t in refs}

    def check(self) -> None:
        """Verify the constraint graph is acyclic modulo self-loops.

        Raises :class:`StaticAnalysisError` naming the offending cycle.
        Results are memoized per registration epoch.
        """
        if self._checked_epoch == self._epoch:
            return
        cycle = self._find_cycle()
        if cycle is not None:
            raise StaticAnalysisError(
                "contextclass ownership constraints are cyclic: "
                + " <= ".join(reversed(cycle))
            )
        self._checked_epoch = self._epoch

    def _find_cycle(self) -> "List[str] | None":
        """Return a non-reflexive cycle in the type graph, if any."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {t: WHITE for t in self._refs}
        stack: List[str] = []

        def visit(node: str) -> "List[str] | None":
            color[node] = GRAY
            stack.append(node)
            for nxt in sorted(self._refs.get(node, ())):
                if nxt == node:
                    continue  # reflexive edges are allowed
                if nxt not in color:
                    color[nxt] = WHITE
                if color[nxt] == GRAY:
                    return stack[stack.index(nxt):] + [nxt]
                if color[nxt] == WHITE:
                    found = visit(nxt)
                    if found is not None:
                        return found
            stack.pop()
            color[node] = BLACK
            return None

        for start in sorted(self._refs):
            if color.get(start, 0) == WHITE:
                found = visit(start)
                if found is not None:
                    return found
        return None
