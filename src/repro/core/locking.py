"""Per-context lock state: Algorithm 1's queues and activated set.

Every context carries (Algorithm 1):

* ``toActivateQueue`` — FIFO of events waiting to lock the context;
* ``activatedSet`` — events currently holding the context (several
  read-only events, or exactly one exclusive event).

:class:`ContextLock` implements the admission rule of Algorithm 2's
``dispatchEvent`` task: the head of the queue is admitted when it is
read-only and no exclusive holder is active, or when the activated set is
empty.  Strict FIFO admission (only the head may enter) is what provides
the paper's starvation freedom — a stream of read-only events cannot
overtake a queued exclusive event forever.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..sim.kernel import Signal, Simulator
from .events import AccessMode, Event

__all__ = ["ContextLock"]


class ContextLock:
    """Read/write lock with FIFO admission for one context."""

    def __init__(self, sim: Simulator, cid: str) -> None:
        self.sim = sim
        self.cid = cid
        # eid -> mode of events currently holding the context.
        self.activated: Dict[int, AccessMode] = {}
        self._queue: Deque[Tuple[Event, Signal]] = deque()
        self._pending: Dict[int, Signal] = {}
        # Counters exposed to tests and the elasticity manager.
        self.total_acquisitions = 0
        # Precomputed so the hot request() path never formats a name.
        self._grant_name = f"lock:{cid}"
        # Number of exclusive holders in ``activated`` (0 or 1),
        # maintained incrementally so _pump never scans the set.
        self._exclusive_active = 0
        # One immortal triggered signal serves every synchronous grant
        # (direct admission, re-entrant request): waiters only ever read
        # ``triggered``/``value``/``exc`` from it, so sharing is safe
        # and saves an allocation per uncontended lock request.
        self._ready = Signal(sim, self._grant_name).succeed(None)

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------
    def request(self, event: Event) -> Tuple[Signal, bool]:
        """Enqueue ``event`` for activation (reserve a FIFO position).

        Returns ``(grant, owned)``: ``grant`` fires when the event is
        admitted; ``owned`` is True only for the call that created the
        hold/reservation — exactly one branch of an event owns (and
        therefore releases) each lock.  Re-requesting while held or
        queued returns the existing grant with ``owned=False``, so
        re-entrant calls within one event never self-deadlock.
        """
        eid = event.eid
        if eid in self.activated:
            return self._ready, False
        pending = self._pending.get(eid)
        if pending is not None:
            return pending, False
        mode = event.mode
        if not self._queue and (
            not self._exclusive_active
            if mode is AccessMode.RO
            else not self.activated
        ):
            # Uncontended: admit directly, skipping the queue round trip
            # (same outcome as append + _pump + _admit).
            self.activated[eid] = mode
            if mode is not AccessMode.RO:
                self._exclusive_active += 1
            self.total_acquisitions += 1
            return self._ready, True
        grant = Signal(self.sim, self._grant_name)
        self._pending[eid] = grant
        self._queue.append((event, grant))
        self._pump()
        return grant, True

    def release(self, event: Event) -> None:
        """Release ``event``'s hold (or cancel its reservation).

        Admits successors.  Double release is tolerated: branch cleanup
        paths may overlap on error.
        """
        if event.eid in self.activated:
            mode = self.activated.pop(event.eid)
            if mode is AccessMode.EX:
                self._exclusive_active -= 1
            if self._queue:
                self._pump()
            return
        if event.eid in self._pending:
            # The event reserved a position but never claimed it
            # (error/abort path): cancel the reservation.
            del self._pending[event.eid]
            self._queue = deque(
                (queued, grant)
                for queued, grant in self._queue
                if queued.eid != event.eid
            )
            self._pump()

    def _pump(self) -> None:
        queue = self._queue
        while queue:
            head_event, _grant = queue[0]
            if head_event.mode is AccessMode.RO:
                if self._exclusive_active:
                    return
            elif self.activated:
                return
            self._admit()

    def _admit(self) -> None:
        event, grant = self._queue.popleft()
        del self._pending[event.eid]
        mode = event.mode
        self.activated[event.eid] = mode
        if mode is AccessMode.EX:
            self._exclusive_active += 1
        self.total_acquisitions += 1
        grant.succeed(None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def holders(self) -> List[int]:
        """Event ids currently holding the context."""
        return list(self.activated)

    def is_held(self) -> bool:
        """Whether any event currently holds the context."""
        return bool(self.activated)

    @property
    def queue_length(self) -> int:
        """Number of events waiting in the toActivateQueue."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ContextLock {self.cid} held_by={sorted(self.activated)} "
            f"queue={self.queue_length}>"
        )
