"""Calibration constants shared by every runtime.

One cost model is used for all systems so that the figures compare
protocol structure, not tuning.  The only per-system knobs are the ones
the paper itself names: EventWave's root sequencing work, Orleans'
managed-runtime overhead (C# vs C++, §6.1.1 point 1), and Orleans' lack
of placement rules (§6.1.1 point 2 — modeled as hash placement instead of
AEON's co-location).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CostModel", "DEFAULT_COSTS"]


@dataclass(frozen=True)
class CostModel:
    """CPU / message-size constants (CPU in unit-work ms; see Server)."""

    #: Handling an incoming request/message on a server (dispatch, decode).
    route_cpu_ms: float = 0.015
    #: Lock bookkeeping per context activation (ACT handling).
    lock_cpu_ms: float = 0.004
    #: Sender-side work per cross-server message (serialization etc.);
    #: this is what makes AEON's co-location placement pay off (§6.1.1).
    net_cpu_ms: float = 0.25
    #: Default method-body execution work (unless ``@cost`` overrides).
    method_cpu_ms: float = 0.040
    #: Client request / reply message size.
    client_msg_bytes: int = 512
    #: Protocol message (ACT / EXEC / release) size.
    proto_msg_bytes: int = 128
    #: EventWave: sequencing work at the root per event (the bottleneck).
    eventwave_root_cpu_ms: float = 0.450
    #: EventWave: forwarding work per tree hop while routing to the target.
    eventwave_forward_cpu_ms: float = 0.010
    #: Orleans: managed-runtime multiplier applied to all CPU work.
    orleans_overhead: float = 1.40
    #: AEON: release lock at target/dominator as soon as only async
    #: continuations remain (chain release; §6.1.2 "releases the
    #: Warehouse context").  Disable for the ablation benchmark.
    early_release: bool = True

    def with_(self, **changes: object) -> "CostModel":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


DEFAULT_COSTS = CostModel()
