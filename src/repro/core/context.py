"""Contextclasses: the unit of data encapsulation and distribution.

A *contextclass* is declared by subclassing :class:`ContextClass`.
Context-typed fields are declared with the :class:`Ref` and
:class:`RefSet` descriptors — the equivalent of the paper's rule that
context types may only appear in contextclass declarations.  Assigning a
ref updates the runtime's ownership network (the *directly-owned*
relation), with the runtime cycle check rejecting mutations that would
break the DAG.

Methods are plain Python functions or generators (see
:mod:`repro.core.events` for the yield protocol).  ``@readonly`` marks a
method as read-only (the paper's ``ro`` modifier) and ``@cost(ms)``
overrides the default CPU work charged for executing it.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Iterator, List, Optional, Set, Type, Union

from .errors import AeonError
from .events import CallSpec

__all__ = [
    "ContextClass",
    "ContextRef",
    "Ref",
    "RefSet",
    "readonly",
    "cost",
    "is_readonly",
    "method_cost",
]


def readonly(method: Callable) -> Callable:
    """Mark a context method as read-only (``ro`` in the paper).

    Read-only events take read locks and run concurrently with each
    other; the runtime rejects state-modifying calls made from them.
    """
    method._aeon_readonly = True  # type: ignore[attr-defined]
    return method


def cost(work_ms: float) -> Callable[[Callable], Callable]:
    """Set the CPU unit-work charged when the method executes."""

    def wrap(method: Callable) -> Callable:
        method._aeon_cost = float(work_ms)  # type: ignore[attr-defined]
        return method

    return wrap


def is_readonly(method: Callable) -> bool:
    """Whether ``method`` was marked with :func:`readonly`."""
    return bool(getattr(method, "_aeon_readonly", False))


def method_cost(method: Callable, default_ms: float) -> float:
    """CPU unit-work for ``method`` (``@cost`` override or default)."""
    return float(getattr(method, "_aeon_cost", default_ms))


class ContextRef:
    """A location-transparent handle to a context.

    Attribute access builds :class:`CallSpec` descriptors::

        spec = player_ref.get_gold(50)   # a CallSpec, not an execution
        result = yield spec              # synchronous call inside a body
    """

    __slots__ = ("cid", "type_name", "_proxies")

    def __init__(self, cid: str, type_name: str) -> None:
        self.cid = cid
        self.type_name = type_name

    def __getattr__(self, name: str) -> Callable[..., CallSpec]:
        if name.startswith("_"):
            raise AttributeError(name)
        # Cache one builder per method name: bodies call the same few
        # methods on long-lived refs, and a fresh closure per nested
        # call is measurable.  The cache dict itself is lazy, so plain
        # refs stay two-slot cheap.
        try:
            proxies = self._proxies
        except AttributeError:
            proxies = {}
            self._proxies = proxies
        build = proxies.get(name)
        if build is None:
            cid = self.cid

            def build(*args: Any, **kwargs: Any) -> CallSpec:
                return CallSpec(cid, name, args, kwargs)

            build.__name__ = name
            proxies[name] = build
        return build

    def call(self, method: str, *args: Any, **kwargs: Any) -> CallSpec:
        """Explicit CallSpec constructor (useful for dynamic method names)."""
        return CallSpec(self.cid, method, args, kwargs)

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, ContextRef) and other.cid == self.cid

    def __hash__(self) -> int:
        return hash(self.cid)

    def __repr__(self) -> str:
        return f"<ref {self.type_name}:{self.cid}>"


class Ref:
    """A single-context reference field on a contextclass.

    Assignment replaces the ownership edge: the previously referenced
    child (if any) loses this owner, the new one gains it.
    """

    def __init__(self, target_type: Union[str, Type["ContextClass"]]) -> None:
        self.target_type = _type_name(target_type)
        self.name = ""

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name

    def __get__(self, obj: "ContextClass", objtype: type = None) -> Optional[ContextRef]:
        if obj is None:
            return self  # type: ignore[return-value]
        refs = obj.__dict__.get("_aeon_refs")
        return refs.get(self.name) if refs is not None else None

    def __set__(self, obj: "ContextClass", value: Optional[ContextRef]) -> None:
        if value is not None and not isinstance(value, ContextRef):
            raise TypeError(f"field {self.name!r} requires a ContextRef or None")
        previous = obj._aeon_refs.get(self.name)
        if previous is not None and obj._aeon_bound:
            obj._aeon_runtime.ownership_unlink(obj.cid, previous.cid)
        obj._aeon_refs[self.name] = value
        if value is not None and obj._aeon_bound:
            obj._aeon_runtime.ownership_link(obj.cid, value.cid)


class RefSet:
    """A set-of-contexts field on a contextclass (``set<T>`` in the paper)."""

    def __init__(self, target_type: Union[str, Type["ContextClass"]]) -> None:
        self.target_type = _type_name(target_type)
        self.name = ""

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name

    def __get__(self, obj: "ContextClass", objtype: type = None) -> "RefSetView":
        if obj is None:
            return self  # type: ignore[return-value]
        view = obj._aeon_refsets.get(self.name)
        if view is None:
            view = RefSetView(obj, self.name)
            obj._aeon_refsets[self.name] = view
        return view

    def __set__(self, obj: "ContextClass", value: Any) -> None:
        raise AeonError(
            f"RefSet field {self.name!r} cannot be assigned; use .add()/.discard()"
        )


class RefSetView:
    """The per-instance, ownership-maintaining view behind a RefSet field."""

    __slots__ = ("_owner", "_name", "_refs")

    def __init__(self, owner: "ContextClass", name: str) -> None:
        self._owner = owner
        self._name = name
        self._refs: Dict[str, ContextRef] = {}

    def add(self, ref: ContextRef) -> None:
        """Add a child reference (creates an ownership edge)."""
        if not isinstance(ref, ContextRef):
            raise TypeError("RefSet.add requires a ContextRef")
        if ref.cid in self._refs:
            return
        self._refs[ref.cid] = ref
        if self._owner._aeon_bound:
            self._owner._aeon_runtime.ownership_link(self._owner.cid, ref.cid)

    def discard(self, ref: ContextRef) -> None:
        """Remove a child reference (drops the ownership edge)."""
        if ref.cid not in self._refs:
            return
        del self._refs[ref.cid]
        if self._owner._aeon_bound:
            self._owner._aeon_runtime.ownership_unlink(self._owner.cid, ref.cid)

    def __iter__(self) -> Iterator[ContextRef]:
        return iter(sorted(self._refs.values(), key=lambda r: r.cid))

    def __len__(self) -> int:
        return len(self._refs)

    def __contains__(self, ref: ContextRef) -> bool:
        return isinstance(ref, ContextRef) and ref.cid in self._refs

    def refs(self) -> List[ContextRef]:
        """A sorted list of the contained references."""
        return list(self)


class _VersionField:
    """Data descriptor routing ``_aeon_version`` into the columnar table.

    Once a context occupies a table slot (``_aeon_slot >= 0``) its write
    version lives in the runtime's dense ``table.version`` column — the
    hot path (the body driver) indexes the column directly, and every
    other reader/writer (snapshots, restores, recovery accounting) goes
    through this descriptor.  Detached instances (unit tests, direct
    construction, rolled-back creations) fall back to a per-instance
    ``_aeon_local_version`` dict entry, preserving the legacy behavior.
    """

    __slots__ = ()

    def __get__(self, obj: "ContextClass", objtype: type = None):
        if obj is None:
            return self
        slot = obj._aeon_slot
        if slot >= 0:
            return obj._aeon_runtime.table.version[slot]
        return obj.__dict__.get("_aeon_local_version", 0)

    def __set__(self, obj: "ContextClass", value: int) -> None:
        slot = obj._aeon_slot
        if slot >= 0:
            obj._aeon_runtime.table.version[slot] = value
        else:
            obj.__dict__["_aeon_local_version"] = value


class _LazyDictField:
    """Non-data descriptor: install ``{}`` in the instance dict on first use.

    Ref/RefSet bookkeeping used to be allocated eagerly for every
    instance in ``__new__``/``_aeon_new``; most contexts (and all
    massive-tier bulk contexts) never touch a ref field, so the two
    dicts per instance were pure overhead.  The installed dict shadows
    the descriptor, so the second access is a plain attribute hit.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __get__(self, obj: "ContextClass", objtype: type = None) -> Dict[str, Any]:
        if obj is None:
            return self  # type: ignore[return-value]
        value: Dict[str, Any] = {}
        obj.__dict__[self.name] = value
        return value


class ContextClass:
    """Base class for all contextclasses.

    Instances are created through a runtime's ``create_context`` (never
    directly), which binds the instance to a context id, a hosting server
    and the ownership network before ``__init__`` runs, so that ref-field
    assignments inside ``__init__`` already maintain ownership edges.
    """

    #: Approximate serialized size used for migration/snapshot costs.
    size_bytes: int = 1024

    # These are assigned by the runtime in ``bind`` before __init__.
    _aeon_runtime: Any = None
    _aeon_cid: str = ""
    #: Row index in the runtime's columnar ContextTable; -1 = detached
    #: (unit tests, direct construction), where per-instance fallbacks
    #: apply.
    _aeon_slot: int = -1
    #: True after the hosting server crashed with crash realism enabled:
    #: the volatile state is gone and method execution must fail until a
    #: restore/rehydration repopulates it (class default keeps the flag
    #: off the per-instance dict, so the common case costs nothing).
    _aeon_state_dropped: bool = False
    #: Write-version counter, routed into the table's version column for
    #: bound instances (see _VersionField).
    _aeon_version = _VersionField()
    # Ref/RefSet bookkeeping, allocated lazily on first use.
    _aeon_refs = _LazyDictField("_aeon_refs")
    _aeon_refsets = _LazyDictField("_aeon_refsets")

    def __init__(self) -> None:  # subclasses may override freely
        pass

    # ------------------------------------------------------------------
    # Runtime binding
    # ------------------------------------------------------------------
    @classmethod
    def _aeon_new(cls, runtime: Any, cid: str) -> "ContextClass":
        """Allocate and bind an instance without running ``__init__``."""
        instance = cls.__new__(cls)
        object.__setattr__(instance, "_aeon_runtime", runtime)
        object.__setattr__(instance, "_aeon_cid", cid)
        return instance

    @property
    def _aeon_bound(self) -> bool:
        return self._aeon_runtime is not None

    @property
    def cid(self) -> str:
        """This context's unique id."""
        return self._aeon_cid

    @property
    def ref(self) -> ContextRef:
        """A location-transparent reference to this context."""
        return ContextRef(self._aeon_cid, type(self).__name__)

    # ------------------------------------------------------------------
    # Introspection used by runtimes and the static analysis
    # ------------------------------------------------------------------
    @classmethod
    def declared_ref_types(cls) -> Set[str]:
        """Contextclass type names referenced by declared Ref/RefSet fields."""
        found: Set[str] = set()
        for attr in vars(cls).values():
            if isinstance(attr, (Ref, RefSet)):
                found.add(attr.target_type)
        for base in cls.__bases__:
            if issubclass(base, ContextClass) and base is not ContextClass:
                found |= base.declared_ref_types()
        return found

    def children_of_type(self, type_name: str) -> List[ContextRef]:
        """Directly owned contexts of the given type (Listing 1's
        ``children[Room]`` query), sorted by context id."""
        runtime = self._aeon_runtime
        if runtime is None:
            return []
        refs = []
        for child_cid in runtime.ownership.children(self._aeon_cid):
            child = runtime.instances.get(child_cid)
            if child is not None and type(child).__name__ == type_name:
                refs.append(child.ref)
        return sorted(refs, key=lambda r: r.cid)

    def state_snapshot(self) -> Dict[str, Any]:
        """The context's persistent state, for snapshots and migration.

        Override to return ``None`` to exclude a context from snapshots
        (the paper's checkpoint-skipping hook).
        """
        state = {
            key: value
            for key, value in self.__dict__.items()
            if not key.startswith("_aeon")
        }
        refs = self.__dict__.get("_aeon_refs") or {}
        refsets = self.__dict__.get("_aeon_refsets") or {}
        state["__refs__"] = {
            name: (ref.cid if ref else None) for name, ref in refs.items()
        }
        state["__refsets__"] = {
            name: [ref.cid for ref in view] for name, view in refsets.items()
        }
        state["__version__"] = self._aeon_version
        return state

    def state_restore(
        self,
        state: Dict[str, Any],
        *,
        restore_version: bool = False,
        restore_structure: bool = False,
    ) -> int:
        """Reset the plain persistent fields from a snapshot bundle entry.

        The crash-recovery path (§5.3): the context's volatile state is
        rolled back to the checkpoint.  By default Ref/RefSet wiring is
        left alone — ownership edges and the context mapping live in the
        runtime and cloud storage, not on the crashed server — and the
        version counter is bumped so later readers observe the rollback
        as a write.  Values are deep-copied in: the same durable bundle
        may restore this context again after a second crash, so the live
        instance must never share mutables with it.

        With ``restore_version`` (the honest-recovery path) the version
        counter is instead reset to the snapshot's ``__version__``, and
        the return value is the number of committed writes the rollback
        discarded (0 when the snapshot is at least as new as the live
        state).  With ``restore_structure`` the Ref/RefSet wiring is
        additionally rebuilt from the snapshot's ``__refs__``/
        ``__refsets__`` entries, re-maintaining ownership edges through
        the normal descriptors — delta-restored subtrees rebuild their
        wiring without a full re-base.

        Either way the instance is live again afterwards: a crash-time
        state drop (see :meth:`drop_volatile_state`) is cleared.
        """
        for key, value in state.items():
            if key in ("__refs__", "__refsets__", "__version__"):
                continue
            setattr(self, key, copy.deepcopy(value))
        if restore_structure:
            self._restore_wiring(state)
        rolled_back = 0
        if restore_version and "__version__" in state:
            restored = int(state["__version__"])
            rolled_back = max(0, self._aeon_version - restored)
            self._aeon_version = restored
        else:
            self._aeon_version += 1
        if self._aeon_state_dropped:
            del self._aeon_state_dropped  # fall back to the class default
        return rolled_back

    def _restore_wiring(self, state: Dict[str, Any]) -> None:
        """Rebuild Ref/RefSet fields from a snapshot's structure entries."""
        runtime = self._aeon_runtime

        def make_ref(cid: str) -> ContextRef:
            target = runtime.instances.get(cid) if runtime is not None else None
            type_name = type(target).__name__ if target is not None else "?"
            return ContextRef(cid, type_name)

        for name, cid in sorted((state.get("__refs__") or {}).items()):
            current = self._aeon_refs.get(name)
            if (current.cid if current else None) == cid:
                continue
            setattr(self, name, make_ref(cid) if cid else None)
        for name, cids in sorted((state.get("__refsets__") or {}).items()):
            view = getattr(self, name)
            wanted = set(cids)
            for ref in list(view):
                if ref.cid not in wanted:
                    view.discard(ref)
            for cid in sorted(wanted):
                if ContextRef(cid, "?") not in view:
                    view.add(make_ref(cid))

    def drop_volatile_state(self) -> int:
        """Mark the in-memory state as lost (the host crashed).

        Honest fail-stop semantics: the attribute values stay around
        only as simulator bookkeeping (so recovery can quantify the
        rolled-back work), but any method execution fails until a
        checkpoint restore repopulates the context.  Returns the version
        at the moment of the crash — the high-water mark of committed
        writes the crash made volatile.
        """
        self._aeon_state_dropped = True
        return self._aeon_version

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self._aeon_cid}>"


def _type_name(target_type: Union[str, Type[ContextClass]]) -> str:
    if isinstance(target_type, str):
        return target_type
    if isinstance(target_type, type) and issubclass(target_type, ContextClass):
        return target_type.__name__
    raise TypeError(f"Ref target must be a contextclass or name, got {target_type!r}")
