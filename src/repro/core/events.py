"""Events, call descriptors and the yield protocol for method bodies.

AEON method bodies are written as Python generators.  A body interacts
with the runtime by yielding:

* a :class:`CallSpec` (obtained by calling a method on a
  :class:`~repro.core.context.ContextRef`) — a **synchronous** remote
  method call; the yield evaluates to the call's return value;
* :func:`async_` wrapping a CallSpec — an **asynchronous** call (the
  paper's ``async`` decoration); the event joins all asynchronous calls
  before completing;
* :func:`dispatch` wrapping a CallSpec — a **sub-event** (the paper's
  ``event`` decoration inside an event); it executes as a fresh event
  after the creator event finishes;
* :func:`compute` — occupy the hosting server's CPU for the given
  amount of unit work (models application compute);
* :func:`sleep` — wall-clock delay without occupying the CPU.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "AccessMode",
    "CallSpec",
    "AsyncCall",
    "SubEvent",
    "Compute",
    "Sleep",
    "Event",
    "async_",
    "dispatch",
    "compute",
    "sleep",
]


class AccessMode(enum.Enum):
    """Event access mode: read-only events share locks (read locks)."""

    RO = "ro"
    EX = "ex"


class CallSpec:
    """A method call on a context: target cid, method name, arguments.

    A plain slots class rather than a (frozen) dataclass: one CallSpec
    is built for every client operation and every nested call, and a
    frozen dataclass pays ``object.__setattr__`` per field.
    """

    __slots__ = ("target", "method", "args", "kwargs")

    def __init__(
        self,
        target: str,
        method: str,
        args: Tuple[Any, ...] = (),
        kwargs: Optional["Dict[str, Any]"] = None,
    ) -> None:
        self.target = target
        self.method = method
        self.args = args
        self.kwargs = kwargs if kwargs is not None else {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.target}.{self.method}(...)"


class AsyncCall:
    """Marker: execute ``spec`` asynchronously within the current event."""

    __slots__ = ("spec",)

    def __init__(self, spec: CallSpec) -> None:
        self.spec = spec


class SubEvent:
    """Marker: dispatch ``spec`` as a new event after the creator ends."""

    __slots__ = ("spec",)

    def __init__(self, spec: CallSpec) -> None:
        self.spec = spec


class Compute:
    """Marker: occupy the hosting server's CPU for ``work_ms`` unit work."""

    __slots__ = ("work_ms",)

    def __init__(self, work_ms: float) -> None:
        self.work_ms = work_ms


class Sleep:
    """Marker: wait ``delay_ms`` of wall-clock time without using CPU."""

    __slots__ = ("delay_ms",)

    def __init__(self, delay_ms: float) -> None:
        self.delay_ms = delay_ms


def async_(spec: CallSpec) -> AsyncCall:
    """Decorate a call as asynchronous (the paper's ``async x.g(...)``)."""
    if not isinstance(spec, CallSpec):
        raise TypeError(f"async_ expects a CallSpec, got {spec!r}")
    return AsyncCall(spec)


def dispatch(spec: CallSpec) -> SubEvent:
    """Dispatch a sub-event (the paper's ``event x.g(...)`` inside events)."""
    if not isinstance(spec, CallSpec):
        raise TypeError(f"dispatch expects a CallSpec, got {spec!r}")
    return SubEvent(spec)


def compute(work_ms: float) -> Compute:
    """Consume ``work_ms`` of unit CPU work on the hosting server."""
    return Compute(float(work_ms))


def sleep(delay_ms: float) -> Sleep:
    """Wait ``delay_ms`` without occupying a CPU core."""
    return Sleep(float(delay_ms))


class Event:
    """One client request being executed by a runtime.

    Mirrors the paper's Algorithm 1 data structure (eid, dominator,
    target, access mode) plus the bookkeeping this implementation needs:
    per-branch lock lists (for chain release), pending asynchronous call
    processes, deferred sub-events, and read/write sets for the
    serializability checker.
    """

    __slots__ = (
        "eid",
        "spec",
        "mode",
        "client",
        "tag",
        "dom",
        "submitted_ms",
        "started_ms",
        "committed_ms",
        "result",
        "error",
        "reads",
        "writes",
        "sub_events",
        "hops",
        "held",
        "open_branches",
        "quiescent",
        "deferred_locks",
        "release_horizon",
    )

    def __init__(
        self,
        eid: int,
        spec: CallSpec,
        mode: AccessMode,
        client: str,
        submitted_ms: float,
        tag: str = "",
    ) -> None:
        self.eid = eid
        self.spec = spec
        self.mode = mode
        self.client = client
        self.tag = tag
        self.dom: Optional[str] = None
        self.submitted_ms = submitted_ms
        self.started_ms: Optional[float] = None
        self.committed_ms: Optional[float] = None
        self.result: Any = None
        self.error: Optional[BaseException] = None
        # cid -> version observed / produced (for the history checker).
        self.reads: Dict[str, int] = {}
        self.writes: Dict[str, int] = {}
        self.sub_events: List[CallSpec] = []
        self.hops = 0
        # Runtime lock bookkeeping, owned by RuntimeBase: the set of
        # held/reserved cids (None once the event finished), the count
        # of open branches, the quiescence signal and locks deferred to
        # commit.  Attributes here instead of eid-keyed dicts on the
        # runtime: they are touched on every lock operation.
        self.held: Optional[set] = set()
        self.open_branches = 1  # the root branch
        self.quiescent: Any = None
        self.deferred_locks: List[str] = []
        # Latest simulated time at which a lock release scheduled by this
        # event fires.  The runtime's event pool refuses to recycle an
        # event until this horizon is strictly in the past, so a pooled
        # record is never aliased by a still-pending release callback.
        self.release_horizon = -1.0

    def reinit(
        self,
        eid: int,
        spec: CallSpec,
        mode: AccessMode,
        client: str,
        submitted_ms: float,
        tag: str = "",
    ) -> None:
        """Reset a recycled event record as if freshly constructed.

        Mirrors ``__init__`` field by field; the read/write/sub-event
        containers are cleared in place (cleared dicts restart their
        insertion order, so history commits are byte-identical to a
        fresh event's).
        """
        self.eid = eid
        self.spec = spec
        self.mode = mode
        self.client = client
        self.tag = tag
        self.dom = None
        self.submitted_ms = submitted_ms
        self.started_ms = None
        self.committed_ms = None
        self.result = None
        self.error = None
        self.reads.clear()
        self.writes.clear()
        self.sub_events.clear()
        self.hops = 0
        self.held = set()
        self.open_branches = 1
        self.quiescent = None
        self.deferred_locks = []
        self.release_horizon = -1.0

    @property
    def target(self) -> str:
        """The context the event lands on."""
        return self.spec.target

    @property
    def readonly(self) -> bool:
        """Whether this is a read-only event."""
        return self.mode is AccessMode.RO

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Event {self.eid} {self.mode.value} {self.spec!r}>"
