"""AEON core: the programming model and the execution protocol.

Public surface:

* declare contextclasses by subclassing :class:`ContextClass`, with
  :class:`Ref`/:class:`RefSet` fields, ``@readonly`` and ``@cost``;
* write method bodies as generators yielding :class:`CallSpec` objects
  (synchronous calls), :func:`async_` (asynchronous calls),
  :func:`dispatch` (sub-events), :func:`compute` and :func:`sleep`;
* run them on :class:`AeonRuntime` over a simulated cluster.
"""

from .analysis import StaticAnalysis
from .context import (
    ContextClass,
    ContextRef,
    Ref,
    RefSet,
    cost,
    is_readonly,
    method_cost,
    readonly,
)
from .costs import CostModel, DEFAULT_COSTS
from .errors import (
    AeonError,
    MigrationError,
    OwnershipCycleError,
    OwnershipViolationError,
    ReadOnlyViolationError,
    RetryableError,
    StaticAnalysisError,
    UnknownContextError,
    is_retryable,
)
from .events import (
    AccessMode,
    AsyncCall,
    CallSpec,
    Compute,
    Event,
    Sleep,
    SubEvent,
    async_,
    compute,
    dispatch,
    sleep,
)
from .history import CommittedEvent, HistoryRecorder, SerializabilityViolation
from .locking import ContextLock
from .ownership import OwnershipNetwork, VIRTUAL_PREFIX
from .protocol import AeonRuntime
from .runtime import Branch, ClientHandle, RuntimeBase

__all__ = [
    "AccessMode",
    "AeonError",
    "AeonRuntime",
    "AsyncCall",
    "Branch",
    "CallSpec",
    "ClientHandle",
    "CommittedEvent",
    "Compute",
    "ContextClass",
    "ContextLock",
    "ContextRef",
    "CostModel",
    "DEFAULT_COSTS",
    "Event",
    "HistoryRecorder",
    "MigrationError",
    "OwnershipCycleError",
    "OwnershipNetwork",
    "OwnershipViolationError",
    "ReadOnlyViolationError",
    "Ref",
    "RefSet",
    "RetryableError",
    "RuntimeBase",
    "SerializabilityViolation",
    "Sleep",
    "StaticAnalysis",
    "StaticAnalysisError",
    "SubEvent",
    "UnknownContextError",
    "VIRTUAL_PREFIX",
    "async_",
    "compute",
    "cost",
    "dispatch",
    "is_readonly",
    "is_retryable",
    "method_cost",
    "readonly",
    "sleep",
]
