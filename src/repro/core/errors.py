"""Exception taxonomy for the AEON core."""

from __future__ import annotations

__all__ = [
    "AeonError",
    "OwnershipCycleError",
    "StaticAnalysisError",
    "UnknownContextError",
    "OwnershipViolationError",
    "ReadOnlyViolationError",
    "MigrationError",
    "FencedError",
    "RetryableError",
    "is_retryable",
]


class AeonError(Exception):
    """Base class for all AEON-specific errors."""

    #: Transient errors (delivery failures during a crash or partition)
    #: set this True; clients may resubmit the event once the fault
    #: heals.  Programming errors (ownership violations etc.) stay False.
    retryable = False


class RetryableError(AeonError):
    """A transient failure: resubmitting the operation may succeed."""

    retryable = True


def is_retryable(exc: BaseException) -> bool:
    """Whether ``exc`` marks a transient, retry-worthy failure.

    Duck typed on a ``retryable`` attribute so that
    :class:`repro.sim.network.DeliveryError` (a sim-layer class the core
    cannot import without inverting the layering) participates.
    """
    return bool(getattr(exc, "retryable", False))


class OwnershipCycleError(AeonError):
    """Adding an ownership edge would create a cycle in the context DAG."""


class StaticAnalysisError(AeonError):
    """The contextclass constraint graph (C1 <= C0) contains a cycle."""


class UnknownContextError(AeonError):
    """An operation referenced a context id that does not exist."""


class OwnershipViolationError(AeonError):
    """A method call targeted a context the caller does not (transitively) own."""


class ReadOnlyViolationError(AeonError):
    """A readonly method attempted a state-modifying operation."""


class MigrationError(AeonError):
    """A context migration could not be carried out consistently."""


class FencedError(AeonError):
    """An actor with a stale fencing epoch attempted a write.

    Raised when fencing is enabled and a server (or an eManager acting
    on its behalf) whose subtree epoch predates the current fencing
    epoch tries to mutate context state or append to the migration WAL.
    Retryable from the *client's* point of view — resubmitting re-routes
    the operation to the new owner once the handoff completes (the
    stale node itself must never retry in place).
    """

    retryable = True
