"""Exception taxonomy for the AEON core."""

from __future__ import annotations

__all__ = [
    "AeonError",
    "OwnershipCycleError",
    "StaticAnalysisError",
    "UnknownContextError",
    "OwnershipViolationError",
    "ReadOnlyViolationError",
    "MigrationError",
]


class AeonError(Exception):
    """Base class for all AEON-specific errors."""


class OwnershipCycleError(AeonError):
    """Adding an ownership edge would create a cycle in the context DAG."""


class StaticAnalysisError(AeonError):
    """The contextclass constraint graph (C1 <= C0) contains a cycle."""


class UnknownContextError(AeonError):
    """An operation referenced a context id that does not exist."""


class OwnershipViolationError(AeonError):
    """A method call targeted a context the caller does not (transitively) own."""


class ReadOnlyViolationError(AeonError):
    """A readonly method attempted a state-modifying operation."""


class MigrationError(AeonError):
    """A context migration could not be carried out consistently."""
