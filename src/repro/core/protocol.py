"""The AEON execution protocol (§4, Algorithms 1 and 2).

Event lifecycle implemented by :class:`AeonRuntime`:

1. The client ships the event to the server hosting the target context
   (stale location caches cost a forward hop).
2. The target's server computes the target's **dominator** in the
   ownership network and sends an ACT message to it; the event queues in
   the dominator's ``toActivateQueue`` and is admitted FIFO — exclusively
   for update events, shared for read-only events (Algorithm 2,
   ``dispatchEvent``).
3. The dominator EXECs the event back to the target; the EXEC is
   enqueued in the target's ``toExecuteQueue`` *in dominator order*
   (modeled as a reserve-then-claim lock acquisition: FIFO positions on
   every context of a call path are reserved synchronously while the
   caller's locks are still held, then hops/queueing are paid).
4. Nested synchronous calls travel down the ownership DAG, activating
   every context along the path from the calling context to the callee
   top-down (``scheduleNext`` + ``activatePath``).
5. Asynchronous calls spawn new *branches* whose lock positions are
   likewise reserved at spawn time; the event completes when all
   branches are quiescent; sub-events dispatched inside the event run
   after it.
6. Locks are released in reverse acquisition order.  With *chain
   release* (the default, matching §6.1.2's "releases the Warehouse
   context"), each branch releases its locks as soon as its body and
   synchronous work are done — safe because every continuation already
   reserved its queue positions, so successors admitted by the release
   order strictly behind it everywhere.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from ..sim.cluster import Server
from ..sim.kernel import Signal
from ..sim.network import DeliveryError
from .events import CallSpec, Event
from .runtime import Branch, ClientHandle, RuntimeBase

__all__ = ["AeonRuntime"]


class AeonRuntime(RuntimeBase):
    """The AEON runtime: dominator sequencing + DAG path locking."""

    system_name = "aeon"

    # ------------------------------------------------------------------
    # Event lifecycle (Algorithm 2)
    # ------------------------------------------------------------------
    def _event_process(self, event: Event, client: ClientHandle) -> Generator:
        spec = event.spec
        costs = self.costs
        # Client -> (cached) server hop; stale caches pay a forward hop.
        cached_name = client.locate(spec.target)
        try:
            yield self.network.delay_ms(
                client.name, cached_name, costs.client_msg_bytes
            )
        except DeliveryError:
            # The cached server did not answer (crash/partition): drop
            # the entry so a retry re-resolves instead of re-failing on
            # the same dead endpoint, then surface the failure.
            client.forget(spec.target)
            raise
        target_server = self.server_of(spec.target)
        if cached_name != target_server.name:
            # Stale client cache: the wrong server forwards the event.
            stale_server = self.cluster.servers.get(cached_name)
            if stale_server is not None:
                yield self._charge(stale_server, costs.net_cpu_ms)
                event.hops += 1
                yield self.network.delay_ms(
                    stale_server.name, target_server.name, costs.client_msg_bytes
                )
            else:
                yield self.network.delay_ms(
                    cached_name, target_server.name, costs.client_msg_bytes
                )
            client.learn(spec.target, target_server.name)
        yield self._charge(target_server, costs.route_cpu_ms)

        # Lines 1-4: locate the dominator and send ACT to it.
        dominator = self.ownership.dominator(spec.target)
        event.dom = dominator
        branch = Branch(event)
        if dominator != spec.target:
            dom_server = self.server_of(dominator)
            if dom_server.name != target_server.name:
                yield self._charge(target_server, costs.net_cpu_ms)
                event.hops += 1
                yield self.network.delay_ms(
                    target_server.name, dom_server.name, costs.proto_msg_bytes
                )
            yield self._charge(dom_server, costs.lock_cpu_ms)
            yield self._reserve(event, branch, dominator)
            # The EXEC back to the target is enqueued in dominator order:
            # reserve the target's position before traveling (line 16-18).
            target_reserved = self._reserve(event, branch, spec.target)
            if dom_server.name != target_server.name:
                yield self._charge(dom_server, costs.net_cpu_ms)
                event.hops += 1
                yield self.network.delay_ms(
                    dom_server.name, target_server.name, costs.proto_msg_bytes
                )
        else:
            target_reserved = self._reserve(event, branch, spec.target)

        # activatePath at the target (lines 22-24; path is [target]).
        yield self._charge(target_server, costs.lock_cpu_ms)
        yield target_reserved
        event.started_ms = self.sim.now

        # Execute the body; the branch is closed even on error so the
        # dominator is never wedged.
        try:
            event.result = yield from self._drive_body(event, spec, branch)
        finally:
            yield from self._close_branch(event, branch, self.server_of(spec.target))
        if event.open_branches > 0:
            yield from self._await_quiescence(event)
        event.committed_ms = self.sim.now
        self._release_deferred(event)
        # Reply to the client.
        reply_from = self.server_of(spec.target)
        yield self._charge(reply_from, costs.net_cpu_ms)
        event.hops += 1
        yield self.network.delay_ms(reply_from.name, client.name, costs.client_msg_bytes)

    # ------------------------------------------------------------------
    # Synchronous nested calls (scheduleNext + activatePath)
    # ------------------------------------------------------------------
    def _sync_call(
        self,
        event: Event,
        spec: CallSpec,
        branch: Branch,
        caller_server: Server,
        caller_cid: str,
    ) -> Generator:
        reserved = self._reserve_path(event, branch, caller_cid, spec.target)
        if reserved:
            current = yield from self._claim_reserved(event, reserved, caller_server)
        else:
            current = caller_server
        callee_server = self.server_of(spec.target)
        if current.name != callee_server.name:
            yield self._charge(current, self.costs.net_cpu_ms)
            event.hops += 1
            yield self.network.delay_ms(
                current.name, callee_server.name, self.costs.proto_msg_bytes
            )
        yield self._charge(callee_server, self.costs.route_cpu_ms)
        result = yield from self._drive_body(event, spec, branch)
        # Synchronous call: control (and the result) returns to the caller.
        landed = self.server_of(spec.target)
        if landed.name != caller_server.name:
            yield self._charge(landed, self.costs.net_cpu_ms)
            event.hops += 1
            yield self.network.delay_ms(
                landed.name, caller_server.name, self.costs.proto_msg_bytes
            )
        return result

    # ------------------------------------------------------------------
    # Asynchronous calls (new branches)
    # ------------------------------------------------------------------
    def _spawn_async(
        self, event: Event, spec: CallSpec, caller_server: Server, caller_cid: str
    ) -> None:
        self._branch_opened(event)
        child = Branch(event)
        # Reserve the continuation's lock positions *now*, while the
        # caller's locks are held: the continuation is ordered before
        # anything admitted by a later release.
        reserved = self._reserve_path(event, child, caller_cid, spec.target)

        def runner() -> Generator:
            landed: Optional[Server] = caller_server
            try:
                if reserved:
                    current = yield from self._claim_reserved(
                        event, reserved, caller_server
                    )
                else:
                    current = caller_server
                callee_server = self.server_of(spec.target)
                if current.name != callee_server.name:
                    yield self._charge(current, self.costs.net_cpu_ms)
                    event.hops += 1
                    yield self.network.delay_ms(
                        current.name, callee_server.name, self.costs.proto_msg_bytes
                    )
                yield self._charge(callee_server, self.costs.route_cpu_ms)
                yield from self._drive_body(event, spec, child)
                landed = self.server_of(spec.target)
            except Exception as exc:  # noqa: BLE001 - surfaced on the event
                if event.error is None:
                    event.error = exc
            finally:
                yield from self._close_branch(event, child, landed or caller_server)

        self.sim.process(runner(), name="event-async")

    # ------------------------------------------------------------------
    # Lock release
    # ------------------------------------------------------------------
    def _close_branch(self, event: Event, branch: Branch, at_server: Server) -> Generator:
        """Close a branch: flush spawned continuations, release locks.

        The single scheduler hop (``yield None``) lets continuations
        spawned in the final body step take their first step before the
        release admits competitors (their positions are already
        reserved, this is belt-and-braces).
        """
        yield None
        if self.costs.early_release:
            self._release_branch_locks(event, branch, at_server)
        else:
            event.deferred_locks.extend(branch.locks)
            branch.locks = []
        self._branch_closed(event)
