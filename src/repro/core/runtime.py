"""Shared runtime machinery for every system in the repository.

:class:`RuntimeBase` owns what all three runtimes (AEON, EventWave,
Orleans) have in common:

* context creation/placement and the ownership network bookkeeping,
* client registration with cached (possibly stale) context→server maps,
* event submission, metrics and history recording,
* the *body driver* that executes a context method written as a plain
  function or a generator yielding :class:`~repro.core.events.CallSpec`,
  ``async_``/``dispatch`` markers, ``compute`` and ``sleep``.

Subclasses implement the protocol-specific pieces: how an event reaches
its target (:meth:`RuntimeBase._event_process`), how a synchronous nested
call is arbitrated (:meth:`RuntimeBase._sync_call`) and how asynchronous
calls are spawned (:meth:`RuntimeBase._spawn_async`).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Sequence, Set, Tuple, Type

from ..sim.cluster import Cluster, Server
from ..sim.kernel import CpuCharge, Process, Signal, SimulationError, Simulator
from ..sim.metrics import LatencyRecorder, ThroughputRecorder
from ..sim.network import LatencyModel, Network
from .analysis import StaticAnalysis
from .context import ContextClass, ContextRef, is_readonly, method_cost
from .costs import CostModel, DEFAULT_COSTS
from .errors import (
    AeonError,
    OwnershipCycleError,
    OwnershipViolationError,
    ReadOnlyViolationError,
    RetryableError,
    UnknownContextError,
)
from .events import (
    AccessMode,
    AsyncCall,
    CallSpec,
    Compute,
    Event,
    Sleep,
    SubEvent,
)
from .history import HistoryRecorder
from .locking import ContextLock
from .ownership import FencingTable, OwnershipNetwork
from .table import ContextColumnView, ContextTable

__all__ = ["RuntimeBase", "ClientHandle", "Branch", "FAILED_TAG"]

#: Latency-recorder tag replacing the event's own tag when it completes
#: with an error; availability experiments use it to separate goodput
#: (successful completions) from failed/lost work.
FAILED_TAG = "!failed"


class Branch:
    """One execution strand of an event (the root body or an async call).

    Each branch keeps the ordered list of locks it acquired; with chain
    release enabled, a branch releases its locks as soon as its body and
    synchronous sub-calls are done and its asynchronous continuations are
    already in flight.
    """

    __slots__ = ("event", "locks")

    def __init__(self, event: Event) -> None:
        self.event = event
        self.locks: List[str] = []


class ClientHandle:
    """A client endpoint with a cached context→server mapping.

    The cache models the paper's §5.1: clients cache the most recent
    mapping and learn corrections lazily (a stale entry costs a forward
    hop, it never costs correctness).  Corrections arrive three ways:

    * ``learn`` — the right server answers and the client remembers it;
    * ``forget`` — the client itself observed a delivery failure and
      drops the entry (the next lookup re-resolves);
    * ``invalidate_server`` — a *push* invalidation: the failure
      detector declared the server dead (or the eManager decommissioned
      it), so every entry pointing there is dropped at once, shortening
      the outage tail instead of paying one failed event per entry.
    """

    def __init__(self, runtime: "RuntimeBase", name: str) -> None:
        self.runtime = runtime
        self.name = name
        self._cache: Dict[str, str] = {}
        #: Cache entries dropped by push invalidations (metrics).
        self.invalidated = 0

    def locate(self, cid: str) -> str:
        """Best-known server name for ``cid`` (cache, else authoritative).

        The cache is trusted as-is — a real client cannot peek at
        cluster ground truth.  Entries pointing at dead servers are
        removed by push invalidation / ``forget``; entries pointing at
        live-but-wrong servers cost the forward hop (§5.1).
        """
        cached = self._cache.get(cid)
        if cached is not None:
            return cached
        actual = self.runtime.placement[cid]
        self._cache[cid] = actual
        return actual

    def learn(self, cid: str, server_name: str) -> None:
        """Update the cached location of ``cid``."""
        self._cache[cid] = server_name

    def forget(self, cid: str) -> None:
        """Drop the cached location of ``cid`` (observed delivery failure)."""
        self._cache.pop(cid, None)

    def invalidate_server(self, server_name: str) -> int:
        """Drop every cached entry pointing at ``server_name``.

        Returns how many entries were dropped (push-invalidation
        accounting).
        """
        stale = [cid for cid, host in self._cache.items() if host == server_name]
        for cid in stale:
            del self._cache[cid]
        self.invalidated += len(stale)
        return len(stale)

    def submit(self, spec: CallSpec, tag: str = "") -> Signal:
        """Submit an event through this client."""
        return self.runtime.submit(self, spec, tag=tag)


class RuntimeBase:
    """Common engine: contexts, clients, events, the method-body driver."""

    system_name = "base"
    #: Multiplier on all CPU work (Orleans' managed-runtime overhead).
    cpu_factor = 1.0
    #: Whether ``async`` call decorations run asynchronously (EventWave
    #: lacks asynchronous method calls inside events; they run inline).
    supports_async = True
    #: Whether read-only events share locks (single-threaded grains and
    #: EventWave treat everything as exclusive).
    supports_readonly = True
    #: Whether nested calls are restricted to transitively owned
    #: contexts (Orleans grains are unordered).
    enforce_ownership = True

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        cluster: Cluster,
        costs: CostModel = DEFAULT_COSTS,
        record_history: bool = False,
    ) -> None:
        self.sim = sim
        self.network = network
        self.cluster = cluster
        self.costs = costs
        self.ownership = OwnershipNetwork()
        self.analysis = StaticAnalysis()
        # Columnar per-context state (repro.core.table): one dense
        # struct-of-arrays table plus three dict-shaped views keeping
        # the legacy mapping API — including its observable
        # insertion-order iteration — over the instance/owner/lock
        # columns.  Hot paths index the columns by slot directly.
        self.table = ContextTable()
        self.instances = ContextColumnView(self.table, self.table.instance)
        self.placement = ContextColumnView(self.table, self.table.owner)
        self.locks = ContextColumnView(self.table, self.table.lock)
        #: Bulk-created context ranges (start slot, end slot, class):
        #: their instances materialize lazily on first touch.
        self._bulk_ranges: List[Tuple[int, int, Type[ContextClass]]] = []
        #: Finished Event records available for reuse (see recycle_event).
        self._event_pool: List[Event] = []
        self.latency = LatencyRecorder()
        self.throughput = ThroughputRecorder()
        self.history: Optional[HistoryRecorder] = HistoryRecorder() if record_history else None
        self._eid_counter = 0
        self._cid_counters: Dict[str, int] = {}
        # (context class, method name) -> (bound-call function, readonly
        # flag, cpu cost): the body driver resolves method metadata once
        # per class instead of two getattrs per call.
        self._method_meta: Dict[Tuple[type, str], Tuple[Any, bool, float]] = {}
        self._clients: Dict[str, ClientHandle] = {}
        self._registered_classes: Set[str] = set()
        self.events_inflight = 0
        self.events_completed = 0
        self.events_failed = 0
        #: Honest failure semantics (all off by default, enabled by the
        #: eManager's fault-tolerance wiring): a fencing table rejects
        #: writes into declared-dead subtrees, crashed servers drop their
        #: contexts' volatile state, and restores account the committed
        #: writes a rollback discarded.
        self.fencing: Optional[FencingTable] = None
        self.writes_rolled_back = 0
        self._honest = False
        self._charge_obj = CpuCharge(None, 0.0)  # reused; see _charge
        # Per-event lock bookkeeping (held set, open branch count,
        # quiescence signal, deferred lock list) lives on the Event
        # object itself — see repro.core.events.Event.
        for server in cluster.servers.values():
            self.attach_server(server)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def attach_server(self, server: Server) -> None:
        """Register a (possibly newly provisioned) server with the fabric."""
        if not self.network.is_registered(server.name):
            self.network.register(server.name, server.mailbox, server.itype)

    def server_of(self, cid: str) -> Server:
        """The server currently hosting context ``cid``."""
        table = self.table
        slot = table.index.get(cid)
        owner = table.owner[slot] if slot is not None else None
        if owner is None:
            self._ensure_placed(cid)
            owner = self.placement[cid]
        return self.cluster.servers[owner]

    def _ensure_placed(self, cid: str) -> None:
        if cid in self.placement:
            return
        if not self.ownership.is_virtual(cid):
            raise UnknownContextError(f"context {cid!r} has no placement")
        # Virtual join contexts carry no state; host them with their
        # first placed member so dominator hops stay short.
        for child in sorted(self.ownership.children(cid)):
            if child in self.placement:
                self.placement[cid] = self.placement[child]
                return
        raise UnknownContextError(f"virtual context {cid!r} has no placed member")

    def _exec(self, server: Server, work_ms: float) -> Generator:
        """Occupy ``server``'s CPU for scaled ``work_ms`` of unit work.

        Generator form (``yield from self._exec(...)``); hot paths use
        :meth:`_charge` instead, which the kernel interprets without a
        generator.  The instance-speed scaling is open-coded
        (= ``itype.cpu_ms``).
        """
        return server.cpu.use(work_ms * self.cpu_factor / server.itype.speed)

    def _charge(self, server: Server, work_ms: float) -> CpuCharge:
        """A kernel-interpreted CPU charge: ``yield self._charge(...)``.

        Semantically identical to ``yield from self._exec(...)`` — the
        process trampoline runs the acquire/hold/release sequence
        directly, so no generator is allocated or walked per charge.
        One mutable CpuCharge is reused for every call: the kernel
        consumes it synchronously within the same send (a yielded
        charge reaches the trampoline before any other code runs), so
        it is never live twice.
        """
        charge = self._charge_obj
        charge.resource = server.cpu
        charge.delay = work_ms * self.cpu_factor / server.itype.speed
        return charge

    def _hop(
        self, event: Event, src_server: Server, dst_name: str, size_bytes: int
    ) -> Generator:
        """Send a message from ``src_server`` to endpoint ``dst_name``.

        Cross-server messages charge sender-side CPU (serialization,
        syscalls) before traversing the network; same-server delivery is
        (nearly) free.  This asymmetry is what rewards AEON's placement
        co-location and penalizes Orleans' hash placement.
        """
        if src_server.name != dst_name:
            yield self._charge(src_server, self.costs.net_cpu_ms)
            event.hops += 1
        yield self.network.delay_ms(src_server.name, dst_name, size_bytes)

    def lock_of(self, cid: str) -> ContextLock:
        """The lock object for ``cid`` (created lazily for virtual joins)."""
        lock = self.locks.get(cid)
        if lock is None:
            lock = ContextLock(self.sim, cid)
            self.locks[cid] = lock
        return lock

    # ------------------------------------------------------------------
    # Context lifecycle
    # ------------------------------------------------------------------
    def create_context(
        self,
        cls: Type[ContextClass],
        owners: Sequence[ContextRef] = (),
        server: Optional[Server] = None,
        name: Optional[str] = None,
        args: Sequence[Any] = (),
        kwargs: Optional[Dict[str, Any]] = None,
    ) -> ContextRef:
        """Create a context of ``cls`` owned by ``owners`` on ``server``.

        Runs the static analysis for newly seen contextclasses, registers
        the context in the ownership network (cycle-checked), places it
        and then runs ``__init__`` (whose ref-field assignments create
        further ownership edges).
        """
        if not (isinstance(cls, type) and issubclass(cls, ContextClass)):
            raise TypeError(f"create_context requires a ContextClass, got {cls!r}")
        self._register_class(cls)
        count = self._cid_counters.get(cls.__name__, 0) + 1
        self._cid_counters[cls.__name__] = count
        cid = name or f"{cls.__name__.lower()}-{count}"
        if cid in self.instances:
            raise ValueError(f"duplicate context id {cid!r}")
        owner_cids = [owner.cid for owner in owners]
        host = server or self._default_server()
        instance = cls._aeon_new(self, cid)
        self.instances[cid] = instance
        self.ownership.add_context(cid, parents=owner_cids)
        self.placement[cid] = host.name
        host.context_count += 1
        self.locks[cid] = ContextLock(self.sim, cid)
        table = self.table
        slot = table.index[cid]
        object.__setattr__(instance, "_aeon_slot", slot)
        if len(owner_cids) == 1:
            parent_slot = table.index.get(owner_cids[0])
            if parent_slot is not None:
                table.parent[slot] = parent_slot
        try:
            instance.__init__(*args, **(kwargs or {}))
        except Exception:
            # Roll back a half-created context so the network stays sane.
            del self.instances[cid]
            self.ownership.remove_context(cid)
            del self.placement[cid]
            host.context_count -= 1
            del self.locks[cid]
            object.__setattr__(instance, "_aeon_slot", -1)
            raise
        return instance.ref

    def _register_class(self, cls: Type[ContextClass]) -> None:
        if cls.__name__ in self._registered_classes:
            return
        self._registered_classes.add(cls.__name__)
        self.analysis.register(cls.__name__, cls.declared_ref_types())
        if self.enforce_ownership:
            # Orleans grains are unordered; only DAG-disciplined
            # runtimes reject cyclic contextclass constraints.
            self.analysis.check()

    def _default_server(self) -> Server:
        alive = self.cluster.alive_servers()
        if not alive:
            raise AeonError("no alive servers to place a context on")
        return min(alive.values(), key=lambda s: (s.context_count, s.name))

    def instance_of(self, ref_or_cid: Any) -> ContextClass:
        """The live instance behind a ref or context id."""
        cid = ref_or_cid.cid if isinstance(ref_or_cid, ContextRef) else ref_or_cid
        table = self.table
        slot = table.index.get(cid)
        if slot is not None:
            instance = table.instance[slot]
            if instance is not None:
                return instance
            if self._bulk_ranges:
                instance = self._materialize(cid, slot)
                if instance is not None:
                    return instance
        raise UnknownContextError(f"unknown context {cid!r}")

    def create_contexts_bulk(
        self,
        cls: Type[ContextClass],
        cids: Sequence[str],
        servers: Sequence[Server],
        parents: Optional[Sequence[Optional[ContextRef]]] = None,
    ) -> None:
        """Register a large population of contexts without instantiating them.

        The massive-tier fast path: every context gets a table row
        (interned cid, round-robin placement over ``servers``, parent
        link and ownership registration), but the Python instance — and
        its lock — materialize lazily on first touch, so a million
        registered players cost columns and ownership bookkeeping, not a
        million object graphs.  Requirements: ``cls.__init__`` must be
        callable with no arguments, and ``parents`` (if given) is
        aligned with ``cids``.  Lock/instance creation order — hence the
        trace — is driven entirely by deterministic event order.
        """
        if not (isinstance(cls, type) and issubclass(cls, ContextClass)):
            raise TypeError(f"create_contexts_bulk requires a ContextClass, got {cls!r}")
        if not servers:
            raise AeonError("create_contexts_bulk needs at least one server")
        self._register_class(cls)
        table = self.table
        index = table.index
        for cid in cids:
            if cid in index:
                raise ValueError(f"duplicate context id {cid!r}")
        start = table.grow(len(cids))
        cid_col, owner_col, parent_col = table.cids, table.owner, table.parent
        placement_order = self.placement._order
        ownership_add = self.ownership.add_context
        n_servers = len(servers)
        for i, cid in enumerate(cids):
            slot = start + i
            cid_col[slot] = cid
            index[cid] = slot
            owner_col[slot] = servers[i % n_servers].name
            placement_order[cid] = None
            parent = parents[i] if parents is not None else None
            if parent is not None:
                ownership_add(cid, parents=[parent.cid])
                parent_slot = index.get(parent.cid)
                if parent_slot is not None:
                    parent_col[slot] = parent_slot
            else:
                ownership_add(cid, parents=[])
        count = len(cids)
        for i, server in enumerate(servers):
            server.context_count += count // n_servers + (1 if i < count % n_servers else 0)
        self._bulk_ranges.append((start, start + count, cls))

    def _materialize(self, cid: str, slot: int) -> Optional[ContextClass]:
        """Build the lazy instance behind a bulk-created context row."""
        for range_start, range_end, cls in self._bulk_ranges:
            if range_start <= slot < range_end:
                instance = cls._aeon_new(self, cid)
                object.__setattr__(instance, "_aeon_slot", slot)
                self.table.instance[slot] = instance
                self.instances._order[cid] = None
                instance.__init__()
                return instance
        return None

    # Ownership hooks used by the Ref/RefSet descriptors.
    def ownership_link(self, owner_cid: str, child_cid: str) -> None:
        """Record a direct-ownership edge (ref-field assignment).

        Runtimes without an ownership discipline (Orleans) keep the ref
        but tolerate reference cycles: the edge is simply not recorded
        in the (acyclic) network.
        """
        if self.enforce_ownership:
            self.ownership.add_edge(owner_cid, child_cid)
            return
        try:
            self.ownership.add_edge(owner_cid, child_cid)
        except OwnershipCycleError:
            pass

    def ownership_unlink(self, owner_cid: str, child_cid: str) -> None:
        """Drop a direct-ownership edge (ref-field clearing)."""
        self.ownership.remove_edge(owner_cid, child_cid)

    # ------------------------------------------------------------------
    # Clients and event submission
    # ------------------------------------------------------------------
    def register_client(self, name: str) -> ClientHandle:
        """Register a client endpoint on the network fabric."""
        if name in self._clients:
            return self._clients[name]
        handle = ClientHandle(self, name)
        self._clients[name] = handle
        if not self.network.is_registered(name):
            self.network.register(name)
        return handle

    def enable_honest_failures(self, fencing: Optional[FencingTable] = None) -> None:
        """Turn on honest failure semantics for this runtime.

        Installs the (optional) fencing table on the write path and
        activates the dropped-state check in the body driver.  Called by
        the eManager's fault-tolerance wiring; never on the default path,
        so golden-pinned runs execute byte-identically.
        """
        self._honest = True
        if fencing is not None:
            self.fencing = fencing

    def drop_server_state(self, server_name: str) -> int:
        """Crash realism: drop the volatile state of a server's contexts.

        Called from the server's crash hook.  Every context currently
        placed on ``server_name`` loses its in-memory state (methods fail
        until a restore rehydrates it); the pre-crash version survives as
        bookkeeping so recovery can count the rolled-back writes.
        Returns the number of contexts dropped.
        """
        dropped = 0
        for cid in sorted(self.placement):
            if self.placement[cid] != server_name:
                continue
            instance = self.instances.get(cid)
            if instance is not None:
                instance.drop_volatile_state()
                dropped += 1
        return dropped

    def invalidate_cached_locations(self, server_name: str) -> int:
        """Push-invalidate every client cache entry pointing at a server.

        Driven by the failure detector's declarations (via the eManager)
        and by scale-in decommissions: instead of each client discovering
        the stale entry one failed event at a time, the whole population
        drops its entries at once.  Returns the number of entries
        dropped.  Deterministic: clients are visited in sorted order.
        """
        total = 0
        for name in sorted(self._clients):
            total += self._clients[name].invalidate_server(server_name)
        return total

    def submit(self, client: ClientHandle, spec: CallSpec, tag: str = "") -> Signal:
        """Submit ``spec`` as an event; returns a signal with the Event.

        The signal always *succeeds* (with the Event object); application
        errors are surfaced via ``event.error`` so that lock cleanup and
        metrics stay uniform.
        """
        instance = self.instance_of(spec.target)
        _func, ro_method, _cost = self._method_meta_for(instance, spec.method)
        ro_allowed = self.supports_readonly and ro_method
        mode = AccessMode.RO if ro_allowed else AccessMode.EX
        self._eid_counter += 1
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.reinit(self._eid_counter, spec, mode, client.name, self.sim.now, tag)
        else:
            event = Event(self._eid_counter, spec, mode, client.name, self.sim.now, tag)
        completion = Signal(self.sim, "event")
        self.events_inflight += 1
        _EventProcess(self, event, completion, self._event_process(event, client))
        return completion

    def recycle_event(self, event: Optional[Event]) -> None:
        """Return a finished event record to the allocation pool.

        Safe only once the runtime can no longer reference the record:
        it finished (``held`` is ``None``) and every lock release it
        scheduled has fired (``release_horizon`` strictly in the past —
        simulated time is monotonic, so the check holds forever after).
        Ineligible events are left to the garbage collector, so callers
        may hand back every event they observe.
        """
        if (
            event is not None
            and event.held is None
            and event.release_horizon < self.sim.now
            and len(self._event_pool) < 2048
        ):
            self._event_pool.append(event)

    def _finish_event(self, event: Event, completion: Signal) -> None:
        if event.committed_ms is None:
            event.committed_ms = self.sim.now
        # Safety net: release anything still held (error paths); a None
        # held-set marks the event finished for late branch cleanup.
        held, event.held = event.held, None
        if held:
            for cid in list(held):
                self.lock_of(cid).release(event)
        event.quiescent = None
        event.deferred_locks = []
        self.events_inflight -= 1
        self.events_completed += 1
        # Errored events (including delivery failures during a crash or
        # partition — surfaced on event.error as retryable) are recorded
        # under FAILED_TAG so availability analyses can separate goodput
        # from lost work without a second recorder on this hot path.
        if event.error is None:
            self.latency.record(event.submitted_ms, self.sim.now, tag=event.tag)
        else:
            self.events_failed += 1
            self.latency.record(event.submitted_ms, self.sim.now, tag=FAILED_TAG)
        self.throughput.record(self.sim.now)
        if self.history is not None and event.error is None:
            self.history.commit(
                event.eid,
                event.tag,
                event.submitted_ms,
                event.committed_ms,
                event.reads,
                event.writes,
            )
        # The paper: sub-events dispatched within an event execute after
        # their creator finishes.
        client = self._clients[event.client]
        for sub_spec in event.sub_events:
            self.submit(client, sub_spec, tag=event.tag + "/sub" if event.tag else "sub")
        completion.succeed(event)

    # ------------------------------------------------------------------
    # Branch bookkeeping
    # ------------------------------------------------------------------
    def _branch_opened(self, event: Event) -> None:
        event.open_branches += 1

    def _branch_closed(self, event: Event) -> None:
        event.open_branches -= 1
        if event.open_branches <= 0:
            waiter = event.quiescent
            if waiter is not None and not waiter.triggered:
                waiter.succeed(None)

    def _await_quiescence(self, event: Event) -> Generator:
        """Wait until all branches (root + asyncs) of ``event`` are done.

        Callers guard with ``if event.open_branches > 0`` to skip the
        generator entirely in the common no-async case.
        """
        if event.open_branches > 0:
            waiter = Signal(self.sim, "quiescent")
            event.quiescent = waiter
            yield waiter

    # ------------------------------------------------------------------
    # Method-body driver (shared by all runtimes)
    # ------------------------------------------------------------------
    def _method_meta_for(self, instance: ContextClass, name: str) -> Tuple[Any, bool, float]:
        """Resolve ``(callable, readonly, cpu_ms)`` for a method, cached.

        The cache key is the context *class*: plain functions (the
        normal case) are stored unbound and called with the instance,
        so one entry serves every context of the class.  Non-function
        callables (rare) are resolved per call via getattr.
        """
        cls = instance.__class__
        key = (cls, name)
        meta = self._method_meta.get(key)
        if meta is None:
            method = getattr(instance, name, None)
            if method is None or not callable(method):
                raise AeonError(f"{cls.__name__} has no method {name!r}")
            func = getattr(method, "__func__", None)
            if func is None or getattr(cls, name, None) is not func:
                func = None  # instance-level or exotic callable: no cache
            meta = (
                func,
                is_readonly(method),
                method_cost(method, self.costs.method_cpu_ms),
            )
            self._method_meta[key] = meta
        return meta

    def _drive_body(self, event: Event, spec: CallSpec, branch: Branch) -> Generator:
        """Execute one method call at the context's current server.

        Charges the method's CPU cost, tracks read/write versions, then
        interprets the generator yield protocol in place (one frame for
        both the call and its yield loop — every ``yield from`` level
        is walked on every resume, so the driver stays flat).  Returns
        the method's return value.
        """
        target = spec.target
        table = self.table
        slot = table.index.get(target)
        instance = table.instance[slot] if slot is not None else None
        if instance is None:
            instance = self.instance_of(target)  # materializes bulk rows
            slot = instance._aeon_slot
        owner = table.owner[slot]
        if owner is not None:
            server = self.cluster.servers[owner]
        else:
            server = self.server_of(target)
        meta = self._method_meta.get((instance.__class__, spec.method))
        if meta is None:
            meta = self._method_meta_for(instance, spec.method)
        func, ro_method, cost_ms = meta
        if event.mode is AccessMode.RO and not ro_method:
            raise ReadOnlyViolationError(
                f"read-only event {event.eid} called non-readonly "
                f"{type(instance).__name__}.{spec.method}"
            )
        # Honest failure semantics (off on the default fast path): a
        # context whose host crashed has no state until rehydrated, and
        # writes into a fenced (declared-dead) subtree are rejected
        # before they can mutate anything.
        if self._honest:
            if instance._aeon_state_dropped:
                raise RetryableError(
                    f"context {instance.cid!r} lost its volatile state in a "
                    f"crash; retry after checkpoint rehydration"
                )
            if not ro_method and self.fencing is not None:
                self.fencing.check_write(instance.cid)
        # Version tracking (_record_access, inlined: once per call); the
        # counter lives in the table's version column, indexed by slot.
        cid = instance._aeon_cid
        writes = event.writes
        version = table.version
        if ro_method:
            if cid not in writes:
                event.reads[cid] = version[slot]
        else:
            if cid not in writes:
                version[slot] += 1
            writes[cid] = version[slot]
        yield self._charge(server, cost_ms)
        if func is not None:
            outcome = func(instance, *spec.args, **spec.kwargs)
        else:
            outcome = getattr(instance, spec.method)(*spec.args, **spec.kwargs)
        if not _is_generator(outcome):
            return outcome

        body = outcome
        send_value: Any = None
        thrown: Optional[BaseException] = None
        while True:
            try:
                if thrown is not None:
                    exc, thrown = thrown, None
                    item = body.throw(exc)
                else:
                    item = body.send(send_value)
            except StopIteration as stop:
                return stop.value
            send_value = None
            try:
                if isinstance(item, CallSpec):
                    self._check_ownership_discipline(target, item.target)
                    send_value = yield from self._sync_call(
                        event, item, branch, server, target
                    )
                elif isinstance(item, AsyncCall):
                    self._check_ownership_discipline(target, item.spec.target)
                    if self.supports_async:
                        self._spawn_async(event, item.spec, server, target)
                    else:
                        # EventWave has no async method calls inside
                        # events; the call degrades to synchronous.
                        yield from self._sync_call(
                            event, item.spec, branch, server, target
                        )
                elif isinstance(item, SubEvent):
                    event.sub_events.append(item.spec)
                elif isinstance(item, Compute):
                    yield self._charge(server, item.work_ms)
                elif isinstance(item, Sleep):
                    yield float(item.delay_ms)
                else:
                    raise AeonError(
                        f"method {spec.method!r} yielded unsupported {item!r}"
                    )
            except Exception as exc:  # noqa: BLE001 - give the body a chance
                thrown = exc

    def _check_ownership_discipline(self, caller_cid: str, callee_cid: str) -> None:
        """Callers may only call into contexts they transitively own."""
        if not self.enforce_ownership:
            return
        if callee_cid == caller_cid:
            return
        if not self.ownership.owns(caller_cid, callee_cid):
            raise OwnershipViolationError(
                f"context {caller_cid!r} does not own {callee_cid!r}"
            )

    # ------------------------------------------------------------------
    # Lock reservation and release (shared by AEON and EventWave)
    # ------------------------------------------------------------------
    def _reserve(self, event: Event, branch: Branch, cid: str) -> Signal:
        """Reserve a FIFO position on ``cid``'s lock for ``event``.

        Performed synchronously (no simulated delay) at call-initiation
        time, while the caller's locks are still held — this is what
        makes the per-context execution order inherit the sequencer
        (dominator / root) order, and what keeps chain release safe.
        """
        table = self.table
        slot = table.index.get(cid)
        lock = table.lock[slot] if slot is not None else None
        if lock is None:
            lock = self.lock_of(cid)
        grant, owned = lock.request(event)
        event.held.add(cid)
        if owned:
            branch.locks.append(cid)
        return grant

    def _reserve_path(
        self, event: Event, branch: Branch, caller_cid: str, callee: str
    ) -> List[Tuple[str, Signal]]:
        """Reserve positions along ``findPath(caller, callee)`` top-down.

        Contexts already held (or reserved) by the event are skipped.
        Returns the ``(cid, grant)`` pairs to claim, in path order.
        """
        held = event.held
        path = self.ownership.find_path(caller_cid, callee)
        reserved: List[Tuple[str, Signal]] = []
        for cid in path:
            if cid in held:
                continue
            reserved.append((cid, self._reserve(event, branch, cid)))
        return reserved

    def _claim_reserved(
        self,
        event: Event,
        reserved: List[Tuple[str, Signal]],
        current: Server,
    ) -> Generator:
        """Pay hops/CPU and wait for each reserved grant, top-down."""
        for cid, grant in reserved:
            lock_server = self.server_of(cid)
            if lock_server.name != current.name:
                yield self._charge(current, self.costs.net_cpu_ms)
                event.hops += 1
                yield self.network.delay_ms(
                    current.name, lock_server.name, self.costs.proto_msg_bytes
                )
                current = lock_server
            yield self._charge(lock_server, self.costs.lock_cpu_ms)
            yield grant
        return current

    def _release_branch_locks(self, event: Event, branch: Branch, at_server: Server) -> None:
        """Release a branch's locks in reverse acquisition order."""
        held = event.held
        locks = branch.locks
        if held is not None:
            for cid in locks:
                held.discard(cid)
        if len(locks) == 1:
            self._schedule_release(event, locks[0], at_server)
        elif locks:
            self._schedule_release_batch(event, locks[::-1], at_server)
        branch.locks = []

    def _release_deferred(self, event: Event) -> None:
        """Release locks deferred to commit (non-chain-release mode)."""
        deferred = event.deferred_locks
        held = event.held
        if not deferred:
            return
        release_from = self.server_of(event.target)
        if held is not None:
            for cid in deferred:
                held.discard(cid)
        if len(deferred) == 1:
            self._schedule_release(event, deferred[0], release_from)
        else:
            self._schedule_release_batch(event, deferred[::-1], release_from)
        event.deferred_locks = []

    def _release_delay(self, from_server: Server, cid: str) -> Optional[float]:
        """One-way release-message latency to ``cid``'s lock server.

        ``None`` means the context vanished mid-flight (crash/migration
        race) and the release must run synchronously.
        """
        try:
            lock_server_name = self.server_of(cid).name
        except Exception:  # pragma: no cover - context vanished mid-flight
            return None
        latency = self.network.latency
        if type(latency) is LatencyModel:  # open-coded default model
            return (
                latency.same_host_ms
                if from_server.name == lock_server_name
                else latency.lan_ms
            )
        return latency.latency_ms(from_server.name, lock_server_name)

    def _dispatch_release(self, lock: ContextLock, delay: float, event: Event) -> None:
        """Schedule one lock release ``delay`` ms out (0 = immediate queue)."""
        sim = self.sim
        at = sim.now + delay
        if at > event.release_horizon:
            event.release_horizon = at
        if delay == 0.0:  # zero-latency model: immediate queue, not timers
            sim.call_soon(lock.release, event)
        else:
            sim._sequence += 1
            sim._timers.push((at, sim._sequence, lock.release, (event,)))

    def _schedule_release(self, event: Event, cid: str, from_server: Server) -> None:
        """Release ``cid`` after the release message's one-way latency."""
        table = self.table
        slot = table.index.get(cid)
        lock = table.lock[slot] if slot is not None else None
        if lock is None:
            lock = self.lock_of(cid)
        delay = self._release_delay(from_server, cid)
        if delay is None:  # pragma: no cover - context vanished mid-flight
            lock.release(event)
            return
        self._dispatch_release(lock, delay, event)

    def _schedule_release_batch(
        self, event: Event, cids: List[str], from_server: Server
    ) -> None:
        """Schedule several same-timestamp lock releases, batched.

        All releases issued by one closing branch (or a commit) share the
        current timestamp; releases whose messages have the same one-way
        latency land at the same instant with *consecutive* sequence
        numbers, so the dispatch loop would run them back to back with
        nothing in between.  Batching them into a single queue entry per
        distinct latency preserves that exact order while paying one
        timer push (and one dispatch) per group instead of per lock.
        """
        sim = self.sim
        table = self.table
        lock_col = table.lock
        index = table.index
        groups: Dict[float, List[ContextLock]] = {}
        for cid in cids:
            slot = index.get(cid)
            lock = lock_col[slot] if slot is not None else None
            if lock is None:
                lock = self.lock_of(cid)
            delay = self._release_delay(from_server, cid)
            if delay is None:  # pragma: no cover - context vanished mid-flight
                lock.release(event)
                continue
            group = groups.get(delay)
            if group is None:
                groups[delay] = [lock]
            else:
                group.append(lock)
        for delay, locks in groups.items():
            if len(locks) == 1:
                self._dispatch_release(locks[0], delay, event)
                continue
            at = sim.now + delay
            if at > event.release_horizon:
                event.release_horizon = at
            if delay == 0.0:
                sim.call_soon(_release_lock_batch, sim, locks, event)
            else:
                sim._sequence += 1
                sim._timers.push(
                    (at, sim._sequence, _release_lock_batch, (sim, locks, event))
                )

    # ------------------------------------------------------------------
    # Protocol-specific hooks
    # ------------------------------------------------------------------
    def _event_process(self, event: Event, client: ClientHandle) -> Generator:
        """Drive one event end to end (subclass responsibility)."""
        raise NotImplementedError

    def _sync_call(
        self,
        event: Event,
        spec: CallSpec,
        branch: Branch,
        caller_server: Server,
        caller_cid: str,
    ) -> Generator:
        """Arbitrate and execute a synchronous nested call."""
        raise NotImplementedError

    def _spawn_async(
        self, event: Event, spec: CallSpec, caller_server: Server, caller_cid: str
    ) -> None:
        """Spawn an asynchronous nested call (joined before completion)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def context_count(self) -> int:
        """Number of live (non-virtual) contexts, including bulk rows
        whose instances have not materialized yet."""
        instance_col = self.table.instance
        lazy = 0
        for start, end, _cls in self._bulk_ranges:
            for slot in range(start, end):
                if instance_col[slot] is None:
                    lazy += 1
        return len(self.instances) + lazy

    def check_history(self) -> None:
        """Run the strict-serializability checker (requires history)."""
        if self.history is None:
            raise AeonError("runtime was created without record_history=True")
        self.history.check()


class _EventProcess(Process):
    """The simulator process driving one event end to end.

    Historically ``submit`` wrapped ``_event_process`` in a closure
    generator for the try/except/finally bookkeeping — one extra frame
    walked on *every* resume of *every* event.  This subclass hooks the
    process completion instead, at exactly the points where the wrapper
    ran: ``_finish_event`` fires synchronously inside the final step,
    application exceptions are surfaced on ``event.error`` and the
    process still *succeeds* (with the Event), so lock cleanup and
    metrics stay uniform.
    """

    __slots__ = ("_runtime", "_event", "_completion")

    def __init__(
        self,
        runtime: "RuntimeBase",
        event: Event,
        completion: Signal,
        generator: Generator,
    ) -> None:
        self._runtime = runtime
        self._event = event
        self._completion = completion
        super().__init__(runtime.sim, generator, name="event")

    def succeed(self, value: Any = None) -> Signal:
        self._runtime._finish_event(self._event, self._completion)
        return super().succeed(self._event)

    def fail(self, exc: BaseException) -> Signal:
        if isinstance(exc, Exception):
            # Application error: surfaced on the event, then a normal
            # finish (mirrors the old wrapper's `except Exception`).
            self._event.error = exc
            self._runtime._finish_event(self._event, self._completion)
            return super().succeed(self._event)
        self._runtime._finish_event(self._event, self._completion)
        return super().fail(exc)


def _is_generator(value: Any) -> bool:
    return hasattr(value, "send") and hasattr(value, "throw")


def _release_lock_batch(sim: Simulator, locks: List[ContextLock], event: Event) -> None:
    """Dispatch-loop callback running a batch of same-timestamp releases.

    The batch replaces what would have been one queue entry per lock
    with consecutive sequence numbers — nothing could have interleaved
    between them, so running them back to back here is order-identical.
    Under a ``max_steps`` budget the elided dispatches are still
    accounted, keeping step parity with the unbatched kernel.
    """
    for lock in locks:
        lock.release(event)
    if sim._max_steps is not None:
        sim._step_count += len(locks) - 1
        if sim._step_count > sim._max_steps:
            raise SimulationError(f"exceeded max_steps={sim._max_steps}")
