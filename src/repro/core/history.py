"""Execution recording and the strict-serializability checker.

Runtimes (when created with ``record_history=True``) record, for every
committed event, the versions it read and wrote per context.  The checker
then builds the conflict precedence graph:

* write→write / write→read / read→write orderings derived from context
  version counters,

and verifies

1. **Serializability** — the conflict graph is acyclic;
2. **Strictness (real-time order)** — no conflict edge points from an
   event to one that *committed before the first started* (a successor in
   the serial order that finished before its predecessor began would
   contradict the temporal ordering the paper guarantees).

The second check is the standard sound approximation for locking
protocols: any strict-serializability violation produced by mis-ordered
conflicting events shows up as such a backward edge.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["CommittedEvent", "HistoryRecorder", "SerializabilityViolation"]


class SerializabilityViolation(AssertionError):
    """Raised by :meth:`HistoryRecorder.check` on a detected violation."""


@dataclass(frozen=True)
class CommittedEvent:
    """An immutable record of one committed event."""

    eid: int
    tag: str
    submitted_ms: float
    committed_ms: float
    reads: Dict[str, int]
    writes: Dict[str, int]


class HistoryRecorder:
    """Accumulates committed events and checks strict serializability."""

    def __init__(self) -> None:
        self.events: List[CommittedEvent] = []

    def commit(
        self,
        eid: int,
        tag: str,
        submitted_ms: float,
        committed_ms: float,
        reads: Dict[str, int],
        writes: Dict[str, int],
    ) -> None:
        """Record one committed event (called by runtimes)."""
        self.events.append(
            CommittedEvent(eid, tag, submitted_ms, committed_ms, dict(reads), dict(writes))
        )

    # ------------------------------------------------------------------
    # Conflict graph construction
    # ------------------------------------------------------------------
    def conflict_edges(self) -> Set[Tuple[int, int]]:
        """Precedence edges (eid_a -> eid_b) implied by version conflicts.

        Per context: the writer of version v precedes the writer of any
        later version; a reader of version v follows its writer and
        precedes the writer of version v+1.
        """
        edges: Set[Tuple[int, int]] = set()
        writers: Dict[str, Dict[int, int]] = defaultdict(dict)  # cid -> version -> eid
        readers: Dict[str, Dict[int, List[int]]] = defaultdict(lambda: defaultdict(list))
        for event in self.events:
            for cid, version in event.writes.items():
                writers[cid][version] = event.eid
            for cid, version in event.reads.items():
                readers[cid][version].append(event.eid)
        for cid, by_version in writers.items():
            ordered_versions = sorted(by_version)
            for earlier, later in zip(ordered_versions, ordered_versions[1:]):
                if by_version[earlier] != by_version[later]:
                    edges.add((by_version[earlier], by_version[later]))
            for version, writer_eid in by_version.items():
                # Readers of version v-1 (the state before this write)
                # precede the writer; readers of v follow it.
                for reader_eid in readers[cid].get(version - 1, ()):
                    if reader_eid != writer_eid:
                        edges.add((reader_eid, writer_eid))
                for reader_eid in readers[cid].get(version, ()):
                    if reader_eid != writer_eid:
                        edges.add((writer_eid, reader_eid))
        return edges

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Raise :class:`SerializabilityViolation` if the history is bad."""
        edges = self.conflict_edges()
        cycle = _find_cycle(edges)
        if cycle is not None:
            raise SerializabilityViolation(
                f"conflict cycle among events: {cycle}"
            )
        started = {e.eid: e.submitted_ms for e in self.events}
        committed = {e.eid: e.committed_ms for e in self.events}
        for src, dst in edges:
            if src in committed and dst in started:
                if committed[dst] < started[src]:
                    raise SerializabilityViolation(
                        f"real-time order violated: event {src} precedes {dst} "
                        f"in the serial order but {dst} committed at "
                        f"{committed[dst]:.3f}ms before {src} started at "
                        f"{started[src]:.3f}ms"
                    )

    def is_strictly_serializable(self) -> bool:
        """Boolean form of :meth:`check`."""
        try:
            self.check()
        except SerializabilityViolation:
            return False
        return True

    def serial_order(self) -> Optional[List[int]]:
        """A topological order of the conflict graph (None if cyclic)."""
        edges = self.conflict_edges()
        nodes = {e.eid for e in self.events}
        out: Dict[int, Set[int]] = defaultdict(set)
        indeg: Dict[int, int] = {n: 0 for n in nodes}
        for src, dst in edges:
            if dst not in out[src]:
                out[src].add(dst)
                indeg[dst] = indeg.get(dst, 0) + 1
        # Prefer commit-time order among available nodes (deterministic
        # and consistent with strictness when the history is valid).
        commit_of = {e.eid: e.committed_ms for e in self.events}
        available = sorted(
            (n for n in nodes if indeg[n] == 0), key=lambda n: commit_of.get(n, 0.0)
        )
        order: List[int] = []
        import heapq

        heap = [(commit_of.get(n, 0.0), n) for n in available]
        heapq.heapify(heap)
        while heap:
            _, node = heapq.heappop(heap)
            order.append(node)
            for succ in sorted(out[node]):
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    heapq.heappush(heap, (commit_of.get(succ, 0.0), succ))
        if len(order) != len(nodes):
            return None
        return order


def _find_cycle(edges: Set[Tuple[int, int]]) -> Optional[List[int]]:
    """Return one cycle in the directed graph, or None (iterative DFS)."""
    out: Dict[int, List[int]] = defaultdict(list)
    nodes: Set[int] = set()
    for src, dst in edges:
        out[src].append(dst)
        nodes.add(src)
        nodes.add(dst)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {n: WHITE for n in nodes}
    parent: Dict[int, int] = {}
    for start in nodes:
        if color[start] != WHITE:
            continue
        stack: List[Tuple[int, int]] = [(start, 0)]
        color[start] = GRAY
        while stack:
            node, idx = stack[-1]
            if idx < len(out[node]):
                stack[-1] = (node, idx + 1)
                succ = out[node][idx]
                if color[succ] == GRAY:
                    cycle = [succ, node]
                    walker = node
                    while walker != succ and walker in parent:
                        walker = parent[walker]
                        cycle.append(walker)
                    cycle.reverse()
                    return cycle
                if color[succ] == WHITE:
                    color[succ] = GRAY
                    parent[succ] = node
                    stack.append((succ, 0))
            else:
                color[node] = BLACK
                stack.pop()
    return None
