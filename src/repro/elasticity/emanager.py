"""The elasticity manager (§5): mapping, policies, migrations, recovery.

The eManager is a *stateless* service: the authoritative context mapping
and the in-flight migration write-ahead records live in cloud storage.
Every ``report_interval_ms`` it:

1. collects per-server resource reports (CPU utilization, context
   counts) and recent client latency,
2. asks its :class:`~repro.elasticity.policies.ElasticityPolicy` for
   actions,
3. provisions/decommissions servers and launches migrations through the
   :class:`~repro.elasticity.migration.MigrationCoordinator` (bounded
   concurrency),
4. persists the mapping epoch.

``crash()`` kills the manager mid-flight; ``recover()`` builds a fresh
manager that reads the WAL from storage and completes unfinished
migrations — the §5.3 fault-tolerance story.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from ..core.runtime import RuntimeBase
from ..sim.cluster import InstanceType, Server
from ..sim.kernel import Signal
from ..sim.metrics import TimeSeries, mean, percentile
from .migration import MigrationCoordinator, MigrationRecord
from .policies import (
    Action,
    ClusterSnapshot,
    ElasticityPolicy,
    MigrateAction,
    ScaleInAction,
    ScaleOutAction,
    ServerReport,
)
from .storage import CloudStorage

__all__ = ["EManager"]


class EManager:
    """Periodic elasticity controller for one runtime."""

    def __init__(
        self,
        runtime: RuntimeBase,
        storage: CloudStorage,
        policy: ElasticityPolicy,
        instance_type: InstanceType,
        report_interval_ms: float = 1000.0,
        max_concurrent_migrations: int = 4,
        host: Optional[Server] = None,
    ) -> None:
        self.runtime = runtime
        self.storage = storage
        self.policy = policy
        self.instance_type = instance_type
        self.report_interval_ms = report_interval_ms
        self.max_concurrent_migrations = max_concurrent_migrations
        sim = runtime.sim
        self.host = host or Server(sim, "~emanager", instance_type)
        if not runtime.network.is_registered(self.host.name):
            runtime.network.register(self.host.name, self.host.mailbox, instance_type)
        self.coordinator = MigrationCoordinator(runtime, storage, self.host)
        self.crashed = False
        self.running = False
        self.migrations_started = 0
        self.server_count_series = TimeSeries()
        self._latency_mark = 0
        self._draining: Dict[str, bool] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the periodic report/decide/act loop."""
        if self.running:
            return
        self.running = True
        self.runtime.sim.process(self._loop(), name="emanager")

    def stop(self) -> None:
        """Stop the loop at the next tick."""
        self.running = False

    def crash(self) -> None:
        """Fail-stop the manager (in-flight migrations keep their WAL)."""
        self.crashed = True
        self.running = False
        self.coordinator.halted = True

    def recover(self) -> "EManager":
        """Elect a replacement manager that finishes WAL'd migrations."""
        successor = EManager(
            self.runtime,
            self.storage,
            self.policy,
            self.instance_type,
            self.report_interval_ms,
            self.max_concurrent_migrations,
        )
        for key in self.storage.keys_with_prefix("migration/"):
            payload = self.storage.peek(key)
            if not payload or payload.get("step") in (None, "done"):
                continue
            record = MigrationRecord(
                migration_id=payload["migration_id"],
                cid=payload["cid"],
                src=payload["src"],
                dst=payload["dst"],
                step=payload["step"],
                started_ms=self.runtime.sim.now,
            )
            instance = self.runtime.instances.get(record.cid)
            if instance is not None:
                record.size_bytes = int(getattr(instance, "size_bytes", 1024))
            successor.coordinator.resume(record)
        return successor

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------
    def _loop(self) -> Generator:
        while self.running and not self.crashed:
            yield self.runtime.sim.timeout(self.report_interval_ms)
            if not self.running or self.crashed:
                return
            snapshot = self.collect_snapshot()
            self.server_count_series.add(
                self.runtime.sim.now, len(snapshot.alive_reports())
            )
            actions = self.policy.decide(snapshot)
            yield from self._execute(actions, snapshot)
            # Persist the mapping epoch (the stateless-manager story).
            yield self.storage.write(
                "mapping/epoch", self.runtime.ownership.epoch, size_bytes=32
            )

    def collect_snapshot(self) -> ClusterSnapshot:
        """Assemble the cluster state the policy decides on."""
        runtime = self.runtime
        reports = [
            ServerReport(
                name=server.name,
                cpu_utilization=server.utilization_window(),
                context_count=server.context_count,
                alive=server.alive,
            )
            for server in runtime.cluster.servers.values()
        ]
        window_start = max(0.0, runtime.sim.now - self.report_interval_ms)
        latencies = runtime.latency.latencies(since_ms=window_start)
        contexts_by_server: Dict[str, List[str]] = {}
        for cid, server_name in runtime.placement.items():
            if runtime.ownership.is_virtual(cid):
                continue
            contexts_by_server.setdefault(server_name, []).append(cid)
        for listing in contexts_by_server.values():
            listing.sort(key=self._migration_preference)
        return ClusterSnapshot(
            now_ms=runtime.sim.now,
            servers=reports,
            mean_latency_ms=mean(latencies),
            p99_latency_ms=percentile(latencies, 99.0),
            completed_in_window=len(latencies),
            contexts_by_server=contexts_by_server,
        )

    def _migration_preference(self, cid: str) -> tuple:
        """Order contexts within a server for migration picking.

        Prefer contexts that are roots of larger subtrees (the paper
        migrates Rooms, not individual Items): fewer owners first, more
        children first.
        """
        ownership = self.runtime.ownership
        return (len(ownership.parents(cid)), -len(ownership.children(cid)), cid)

    def _execute(self, actions: List[Action], snapshot: ClusterSnapshot) -> Generator:
        pending: List[Signal] = []
        for action in actions:
            if isinstance(action, ScaleOutAction):
                for _ in range(action.count):
                    handle = self.runtime.cluster.provision(self.instance_type)
                    handle.ready.add_callback(
                        lambda _sig, server=handle.server: self._on_booted(server)
                    )
            elif isinstance(action, MigrateAction):
                dst = self.runtime.cluster.servers.get(action.dst_server)
                if dst is None or not dst.alive:
                    continue
                if self.runtime.placement.get(action.cid) == dst.name:
                    continue
                if len(self.coordinator.in_flight()) >= self.max_concurrent_migrations:
                    break
                # Move the context together with its co-located subtree
                # (the paper moves "Room and Player contexts"): migrating
                # a container without its members would leave the load
                # behind and add cross-server hops.
                for member in self._colocated_subtree(action.cid):
                    self.migrations_started += 1
                    pending.append(self.coordinator.migrate(member, dst))
            elif isinstance(action, ScaleInAction):
                yield from self._drain_and_remove(action.server)
        # Wait for this round's migrations (bounded, keeps rounds sane).
        for signal in pending:
            if not signal.triggered:
                yield signal

    def _colocated_subtree(self, cid: str) -> List[str]:
        """``cid`` plus its descendants hosted on the same server."""
        runtime = self.runtime
        home = runtime.placement.get(cid)
        members = [
            member
            for member in runtime.ownership.descendants(cid)
            if not runtime.ownership.is_virtual(member)
            and runtime.placement.get(member) == home
        ]
        # Containers first so arriving events find the parents settled.
        members.sort(key=lambda m: len(runtime.ownership.ancestors(m)))
        return members

    def _on_booted(self, server: Server) -> None:
        self.runtime.attach_server(server)

    def _drain_and_remove(self, server_name: str) -> Generator:
        """Move a server's contexts away, then decommission it."""
        runtime = self.runtime
        server = runtime.cluster.servers.get(server_name)
        if server is None or self._draining.get(server_name):
            return
        self._draining[server_name] = True
        victims = [
            cid
            for cid, host in runtime.placement.items()
            if host == server_name and not runtime.ownership.is_virtual(cid)
        ]
        targets = [
            s
            for s in runtime.cluster.alive_servers().values()
            if s.name != server_name
        ]
        if not targets:
            self._draining[server_name] = False
            return
        targets.sort(key=lambda s: (s.context_count, s.name))
        for index, cid in enumerate(victims):
            dst = targets[index % len(targets)]
            done = self.coordinator.migrate(cid, dst)
            self.migrations_started += 1
            yield done
        runtime.cluster.decommission(server_name)
        runtime.network.unregister(server_name)
        self._draining.pop(server_name, None)
