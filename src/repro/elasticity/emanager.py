"""The elasticity manager (§5): mapping, policies, migrations, recovery.

The eManager is a *stateless* service: the authoritative context mapping
and the in-flight migration write-ahead records live in cloud storage.
Every ``report_interval_ms`` it:

1. collects per-server resource reports (CPU utilization, context
   counts) and recent client latency,
2. asks its :class:`~repro.elasticity.policies.ElasticityPolicy` for
   actions,
3. provisions/decommissions servers and launches migrations through the
   :class:`~repro.elasticity.migration.MigrationCoordinator` (bounded
   concurrency),
4. persists the mapping epoch.

``crash()`` kills the manager mid-flight; ``recover()`` builds a fresh
manager that reads the WAL from storage and completes unfinished
migrations — the §5.3 fault-tolerance story.

:meth:`EManager.enable_fault_tolerance` extends §5.3 from manager
crashes to **server** crashes: a periodic checkpointing policy snapshots
configured context subtrees to cloud storage, and a failure detector's
declarations trigger re-placement of the lost contexts from their last
checkpoint through the migration coordinator's restore path.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Set

from ..core.errors import MigrationError
from ..core.ownership import FencingTable
from ..core.runtime import RuntimeBase
from ..sim.cluster import InstanceType, Server
from ..sim.kernel import Signal
from ..sim.metrics import TimeSeries, mean, percentile
from .migration import MigrationCoordinator, MigrationRecord
from .snapshot import (
    DeltaCheckpointer,
    fuzzy_snapshot,
    read_checkpoint,
    snapshot_context,
    subtree_members,
)
from .policies import (
    Action,
    ClusterSnapshot,
    ElasticityPolicy,
    MigrateAction,
    ScaleInAction,
    ScaleOutAction,
    ServerReport,
)
from .storage import CloudStorage

__all__ = ["EManager"]


class EManager:
    """Periodic elasticity controller for one runtime."""

    def __init__(
        self,
        runtime: RuntimeBase,
        storage: CloudStorage,
        policy: Optional[ElasticityPolicy],
        instance_type: InstanceType,
        report_interval_ms: float = 1000.0,
        max_concurrent_migrations: int = 4,
        host: Optional[Server] = None,
    ) -> None:
        self.runtime = runtime
        self.storage = storage
        self.policy = policy
        self.instance_type = instance_type
        self.report_interval_ms = report_interval_ms
        self.max_concurrent_migrations = max_concurrent_migrations
        sim = runtime.sim
        self.host = host or Server(sim, "~emanager", instance_type)
        if not runtime.network.is_registered(self.host.name):
            runtime.network.register(self.host.name, self.host.mailbox, instance_type)
        self.coordinator = MigrationCoordinator(runtime, storage, self.host)
        self.crashed = False
        self.running = False
        self.migrations_started = 0
        self.server_count_series = TimeSeries()
        self._latency_mark = 0
        self._draining: Dict[str, bool] = {}
        # Fault tolerance (enable_fault_tolerance): periodic checkpoints
        # and crash recovery driven by a failure detector.
        self.checkpoint_interval_ms: Optional[float] = None
        self.checkpoints_taken = 0
        self.checkpoints_skipped = 0
        self.contexts_recovered = 0
        self.contexts_restored_without_checkpoint = 0
        self.recoveries = 0
        self.false_detections = 0
        #: Client location-cache entries dropped by push invalidation
        #: (detector declarations and scale-in decommissions).
        self.cache_invalidations = 0
        self.recovery_log: List[Dict[str, Any]] = []
        self._checkpoint_roots: List[str] = []
        self._checkpointing = False
        self._consistent_checkpoints = True
        self._checkpoint_mode = "full"
        self._delta_checkpointers: Dict[str, DeltaCheckpointer] = {}
        self._recovering: Dict[str, bool] = {}
        # Names currently counted as false alarms: the detector
        # re-declares a silent suspect every lease, but one partition is
        # one false detection, counted on the suspicion transition only.
        self._false_suspects: Dict[str, bool] = {}
        # Honest failure semantics (enable_fault_tolerance knobs): when
        # fencing is on, recovery is driven by fencing epochs and durable
        # storage evidence instead of ground-truth aliveness peeks.
        self.fencing: Optional[FencingTable] = None
        self.fence_grace_ms = 300.0
        #: Restores served from a fenced owner's step-down flush (the
        #: zero-lost-updates path) rather than a periodic checkpoint.
        self.flush_restores = 0
        #: Contexts rebuilt in place after their host restarted (crash
        #: realism: restarts rehydrate from checkpoint, not from the
        #: ghost of pre-crash memory).
        self.rehydrations = 0
        self._fencing_enabled = False
        self._honest_recovery = False
        self._crash_drops_state = False
        self._detector: Any = None
        self._hooked_servers: Set[str] = set()
        # Half-done restores a crashed predecessor journaled; re-driven
        # once this (successor) manager is wired for fault tolerance.
        self._pending_restores: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the periodic report/decide/act loop."""
        if self.running:
            return
        self.running = True
        self.runtime.sim.process(self._loop(), name="emanager")

    def stop(self) -> None:
        """Stop the control (and checkpoint) loops at their next tick."""
        self.running = False
        self._checkpointing = False

    def crash(self) -> None:
        """Fail-stop the manager (in-flight migrations keep their WAL)."""
        self.crashed = True
        self.running = False
        self._checkpointing = False
        self.coordinator.halted = True

    def recover(self) -> "EManager":
        """Elect a replacement manager that finishes WAL'd migrations.

        With fencing enabled the successor first bumps the durable
        manager epoch: from the moment that write lands, the
        predecessor's WAL appends are rejected as stale
        (:class:`~repro.core.errors.FencedError`) even if it was merely
        partitioned, not dead — the split-brain-manager guard.

        Half-done *restores* found in the WAL are journaled onto the
        successor and re-driven once :meth:`enable_fault_tolerance`
        wires it (self-healing recovery), instead of stalling until the
        detector re-declares the still-silent server.  Their ids seed
        the migration counter alongside the migrate records, so a drain
        or recovery issued during the failover can never double-assign
        an id a half-done restore still holds.
        """
        successor = EManager(
            self.runtime,
            self.storage,
            self.policy,
            self.instance_type,
            self.report_interval_ms,
            self.max_concurrent_migrations,
        )
        fencing = self.runtime.fencing
        if self._fencing_enabled and fencing is not None:
            epoch = fencing.bump_manager()
            # Fire-and-forget durable CAS floor: once applied, the
            # predecessor's _log appends observe a newer epoch and fence.
            self.storage.write("fencing/manager", epoch, size_bytes=32)
            successor.coordinator.fenced = True
            successor.coordinator.acting_epoch = epoch
        successor.coordinator.honest = self.coordinator.honest
        max_walled_id = 0
        for key in self.storage.keys_with_prefix("migration/"):
            payload = self.storage.peek(key)
            if not payload:
                continue
            # Track every id the WAL has seen (resumed or not) so the
            # successor's counter can be seeded past all of them — see
            # MigrationCoordinator.ensure_counter_at_least.
            max_walled_id = max(max_walled_id, int(payload.get("migration_id", 0)))
            if payload.get("step") in (None, "done"):
                continue
            if payload.get("kind", "migrate") != "migrate":
                # Half-done restore: journal it for re-drive once the
                # successor is wired with enable_fault_tolerance — the
                # self-healing path (no waiting for re-detection).
                successor._pending_restores.append(dict(payload))
                continue
            record = MigrationRecord(
                migration_id=payload["migration_id"],
                cid=payload["cid"],
                src=payload["src"],
                dst=payload["dst"],
                step=payload["step"],
                started_ms=self.runtime.sim.now,
            )
            instance = self.runtime.instances.get(record.cid)
            if instance is not None:
                record.size_bytes = int(getattr(instance, "size_bytes", 1024))
            successor.coordinator.resume(record)
        successor.coordinator.ensure_counter_at_least(max_walled_id)
        return successor

    # ------------------------------------------------------------------
    # Server fault tolerance: checkpoints + crash recovery (§5.3)
    # ------------------------------------------------------------------
    @staticmethod
    def checkpoint_key(root_cid: str) -> str:
        """Stable storage key of a subtree's rolling checkpoint."""
        return f"checkpoint/{root_cid}"

    @property
    def checkpoint_bytes_written(self) -> int:
        """Bytes shipped to storage under ``checkpoint/`` so far.

        The headline storage cost the fig11 availability experiment
        compares between full and delta checkpoint modes.
        """
        return self.storage.bytes_written_for("checkpoint")

    def enable_fault_tolerance(
        self,
        detector: Any,
        checkpoint_interval_ms: float = 2000.0,
        roots: Optional[List[str]] = None,
        consistent_checkpoints: bool = True,
        checkpoint_mode: str = "full",
        max_delta_chain: int = 6,
        fencing: bool = False,
        honest_recovery: Optional[bool] = None,
        crash_drops_state: bool = False,
        fence_grace_ms: float = 300.0,
    ) -> None:
        """Checkpoint ``roots``' subtrees periodically; recover on crashes.

        ``detector`` is duck typed (``on_failure(callback)`` — a
        :class:`repro.faults.FailureDetector`); its declarations trigger
        re-placement of every context the dead server hosted, rolled
        back to its last checkpoint, via the coordinator's restore path.
        ``roots`` defaults to every non-virtual root of the ownership
        network at enable time (checkpoint the world).

        ``consistent_checkpoints=False`` switches to lock-free per-context
        capture (:func:`~repro.elasticity.snapshot.fuzzy_snapshot`) —
        required for runtimes whose locking has no global acquisition
        order (Orleans' per-call turn locks deadlock against a
        subtree-locking snapshot).

        ``checkpoint_mode`` selects what each interval uploads:

        * ``"full"`` — the whole subtree every time (one rolling bundle);
        * ``"delta"`` — a :class:`~repro.elasticity.snapshot.DeltaCheckpointer`
          per root: contexts whose ``_aeon_version`` has not moved are
          skipped, unchanged intervals write nothing, and after
          ``max_delta_chain`` deltas the subtree re-bases.  Orthogonal
          to ``consistent_checkpoints`` (capture discipline vs storage
          layout).

        The honest-failure knobs (all default **off**, preserving the
        legacy byte-identical behavior):

        * ``fencing`` — replace ground-truth aliveness with the fencing
          epoch protocol: a declaration fences the victim's subtrees
          (epoch bump, persisted under ``fencing/{root}``); a fenced
          owner gets ``fence_grace_ms`` to flush its live state through
          cloud storage before the manager restores from the freshest
          durable image.  Writes from a stale-epoch owner raise
          :class:`~repro.core.errors.FencedError`, and a predecessor
          eManager's WAL appends are fenced by the manager epoch.
        * ``honest_recovery`` — recovery never double-checks ground
          truth before restoring (defaults to ``fencing``).  With
          fencing off this deliberately re-introduces the window the
          paper's §5.3 glosses over: a falsely-declared live owner keeps
          serving while recovery rolls its subtree back — the lost
          updates the ``split_brain`` scenario quantifies.
        * ``crash_drops_state`` — crash realism: a server crash drops
          the volatile state of every context it hosted *at crash time*;
          a restart rehydrates from checkpoint + WAL instead of
          resurrecting pre-crash memory.
        """
        if checkpoint_mode not in ("full", "delta"):
            raise ValueError(f"unknown checkpoint_mode {checkpoint_mode!r}")
        self.checkpoint_interval_ms = checkpoint_interval_ms
        self._consistent_checkpoints = consistent_checkpoints
        self._checkpoint_mode = checkpoint_mode
        if roots is None:
            ownership = self.runtime.ownership
            roots = sorted(
                cid for cid in ownership.roots() if not ownership.is_virtual(cid)
            )
        self._checkpoint_roots = list(roots)
        if checkpoint_mode == "delta":
            self._delta_checkpointers = {
                root: DeltaCheckpointer(
                    self.runtime,
                    self.storage,
                    root,
                    key=self.checkpoint_key(root),
                    consistent=consistent_checkpoints,
                    max_chain=max_delta_chain,
                )
                for root in self._checkpoint_roots
            }
        self._detector = detector
        self._honest_recovery = fencing if honest_recovery is None else honest_recovery
        self._crash_drops_state = crash_drops_state
        self.fence_grace_ms = fence_grace_ms
        if fencing:
            self._fencing_enabled = True
            table = self.runtime.fencing or FencingTable()
            stored_manager = self.storage.peek("fencing/manager")
            if stored_manager is not None:
                table.manager_epoch = max(table.manager_epoch, int(stored_manager))
            for root in self._checkpoint_roots:
                table.track(
                    root,
                    subtree_members(self.runtime, root),
                    self.runtime.placement.get(root),
                )
                persisted = self.storage.peek(f"fencing/{root}")
                if persisted is not None:
                    # A predecessor fenced/granted this root before
                    # failing over: adopt the durable epoch (epochs only
                    # move forward).
                    table.adopt_epoch(root, int(persisted))
            self.fencing = table
            self.runtime.enable_honest_failures(table)
            self.coordinator.honest = True
            self.coordinator.fenced = True
            self.coordinator.acting_epoch = table.manager_epoch
        elif self._honest_recovery or crash_drops_state:
            # Honest semantics without epochs: dropped-state retries and
            # rolled-back-write accounting, but no write fencing.
            self.runtime.enable_honest_failures(None)
            self.coordinator.honest = True
        if crash_drops_state:
            for name in sorted(self.runtime.cluster.servers):
                self._hook_server(self.runtime.cluster.servers[name])
        detector.on_failure(self._on_server_failure)
        on_recovery = getattr(detector, "on_recovery", None)
        if on_recovery is not None:
            on_recovery(self._on_server_recovered)
        if self._pending_restores:
            self.runtime.sim.process(
                self._redrive_restores(), name="redrive-restores"
            )
        if checkpoint_interval_ms and not self._checkpointing:
            self._checkpointing = True
            self.runtime.sim.process(self._checkpoint_loop(), name="checkpointer")

    def _checkpoint_loop(self) -> Generator:
        runtime = self.runtime
        while self._checkpointing and not self.crashed:
            yield runtime.sim.timeout(self.checkpoint_interval_ms)
            if not self._checkpointing or self.crashed:
                return
            for root in self._checkpoint_roots:
                instance = runtime.instances.get(root)
                if instance is None:
                    continue
                if self._honest_mode:
                    # Honest capture guard — no ground-truth peeks: skip
                    # roots that are fenced (an ownership handoff is in
                    # flight) and members whose volatile state died in a
                    # crash; checkpointing ghost memory would mask the
                    # loss.
                    skip = self.fencing is not None and self.fencing.is_fenced(
                        root
                    )
                    if not skip:
                        for member in subtree_members(runtime, root):
                            peer = runtime.instances.get(member)
                            if peer is not None and peer._aeon_state_dropped:
                                skip = True
                                break
                    if skip:
                        continue
                else:
                    # A subtree with ANY member on a dead server keeps
                    # its previous checkpoint: capturing the ghost memory
                    # of a crashed host would mask exactly the state loss
                    # this machinery exists to model.
                    members_alive = True
                    for member in subtree_members(runtime, root):
                        if not self._ground_truth_alive(
                            runtime.placement.get(member, "")
                        ):
                            members_alive = False
                            break
                    if not members_alive:
                        continue
                checkpointer = self._delta_checkpointers.get(root)
                if checkpointer is not None:
                    done = checkpointer.checkpoint()
                elif self._consistent_checkpoints:
                    done = snapshot_context(
                        runtime, self.storage, instance.ref,
                        key=self.checkpoint_key(root),
                    )
                else:
                    done = fuzzy_snapshot(
                        runtime, self.storage, root, key=self.checkpoint_key(root)
                    )
                try:
                    outcome = yield done
                except Exception:  # noqa: BLE001 - keep checkpointing others
                    continue
                if outcome == "skip":
                    self.checkpoints_skipped += 1
                else:
                    self.checkpoints_taken += 1

    @property
    def _honest_mode(self) -> bool:
        """Whether any honest-failure knob is on (no ground-truth peeks)."""
        return (
            self._fencing_enabled
            or self._honest_recovery
            or self._crash_drops_state
        )

    def _ground_truth_alive(self, name: str) -> bool:
        """Simulator-omniscient liveness peek (legacy recovery only).

        The default (non-fencing) configuration decides recovery and
        checkpoint safety by peeking the simulator's ground truth — a
        cheat no distributed system can perform.  Every such peek routes
        through this one accessor so the honest configuration can prove
        it never consults it: tests monkeypatch this method to raise and
        run full fencing scenarios end to end.
        """
        server = self.runtime.cluster.servers.get(name)
        return server is not None and server.alive

    def _hook_server(self, server: Server) -> None:
        """Register crash-realism hooks on ``server`` (idempotent)."""
        if server.name in self._hooked_servers:
            return
        self._hooked_servers.add(server.name)
        server.on_crash.append(self._on_host_crash)
        server.on_restart.append(self._on_host_restart)

    def _on_host_crash(self, server: Server) -> None:
        # Crash realism: the volatile state of every hosted context dies
        # with the host, at crash time — not lazily at declaration.
        self.runtime.drop_server_state(server.name)

    def _on_host_restart(self, server: Server) -> None:
        if self.crashed:
            return  # a successor manager owns rehydration now
        self.runtime.sim.process(
            self._rehydrate(server), name=f"rehydrate-{server.name}"
        )

    def _rehydrate(self, server: Server) -> Generator:
        """Rebuild a restarted server's dropped state from checkpoints.

        Crash realism makes restarts honest: a context still mapped to
        the restarted host whose volatile state was dropped at crash
        time reloads its last checkpointed state, version rolled back to
        the checkpoint's — the gap is accounted as lost work.  Contexts
        the recovery path already restored elsewhere are no longer
        mapped here and are skipped; if a declared recovery for this
        server is still in flight, it owns the subtrees and rehydration
        stands down.
        """
        runtime = self.runtime
        if self.fencing is not None:
            # Re-admission at the current epochs: the restarting server
            # learns it may have been fenced while away (its heartbeats
            # advertise this epoch to the detector).
            server.fencing_epoch = max(
                (self.fencing.epoch(root) for root in self.fencing.roots()),
                default=0,
            )
        if self._recovering.get(server.name):
            return
        for root in self._checkpoint_roots:
            dropped = [
                member
                for member in sorted(subtree_members(runtime, root))
                if runtime.placement.get(member) == server.name
                and runtime.instances.get(member) is not None
                and runtime.instances[member]._aeon_state_dropped
            ]
            if not dropped:
                continue
            bundle = yield from read_checkpoint(
                self.storage, self.checkpoint_key(root), base_size_bytes=None
            )
            bundle = bundle or {}
            for member in dropped:
                instance = runtime.instances.get(member)
                if instance is None:
                    continue
                state = bundle.get(member)
                if state is None:
                    # Nothing durable covers it: the context restarts
                    # empty-handed; clearing the flag lets it serve.
                    instance._aeon_state_dropped = False
                    self.contexts_restored_without_checkpoint += 1
                    continue
                rolled = instance.state_restore(
                    state, restore_version=True, restore_structure=True
                )
                runtime.writes_rolled_back += rolled
                self.rehydrations += 1

    def _on_server_failure(self, server_name: str) -> None:
        # Detector-driven client redirection: push-invalidate every
        # client cache entry pointing at the declared-dead server, so
        # clients re-resolve instead of discovering the corpse one
        # failed event at a time.  Re-declarations re-invalidate, which
        # also clears entries re-cached from a not-yet-remapped
        # authoritative mapping during the outage.
        self.cache_invalidations += self.runtime.invalidate_cached_locations(
            server_name
        )
        self.runtime.sim.process(
            self._recover_server(server_name), name=f"recover-{server_name}"
        )

    def _on_server_recovered(self, server_name: str) -> None:
        # The suspect heartbeats again: a future suspicion is a fresh
        # (possibly false) detection, counted anew.
        self._false_suspects.pop(server_name, None)
        if self.fencing is not None:
            # Re-admit the returning server at the current epochs: its
            # heartbeats carried a stale belief, and overwriting it here
            # mirrors the owner accepting that it lost its leases — it
            # will not serve fenced subtrees as if it still owned them.
            server = self.runtime.cluster.servers.get(server_name)
            if server is not None:
                server.fencing_epoch = max(
                    (self.fencing.epoch(root) for root in self.fencing.roots()),
                    default=0,
                )

    def _recover_server(self, name: str) -> Generator:
        """Re-place everything a dead-*declared* server hosted.

        Legacy path: double-check the simulator's ground truth (via
        :meth:`_ground_truth_alive` — an admitted cheat) and restore
        from the rolling checkpoints.  Honest path (any honest knob on):
        no ground truth — fence the covered subtrees, give the possibly
        merely-partitioned owner a grace window to flush its state
        through cloud storage, then restore from the freshest durable
        image.  Re-declarations while a recovery is in flight are
        coalesced either way.
        """
        if self._recovering.get(name):
            return  # the detector re-declared mid-recovery; one is enough
        self._recovering[name] = True
        try:
            yield from self._recover_server_inner(name)
        finally:
            self._recovering.pop(name, None)

    def _recover_server_inner(self, name: str) -> Generator:
        runtime = self.runtime
        sim = runtime.sim
        if self._honest_mode:
            yield from self._recover_server_honest(name)
            return
        if self._ground_truth_alive(name):
            # The detector was partitioned away from a healthy server;
            # ground truth says nothing was lost.  Real deployments fence
            # instead — here we only count the false alarm (once per
            # suspicion episode, not per lease re-declaration).
            if not self._false_suspects.get(name):
                self._false_suspects[name] = True
                self.false_detections += 1
            return
        ownership = runtime.ownership
        # Containers first so arriving events find the parents settled.
        lost = sorted(
            (
                cid
                for cid, host in runtime.placement.items()
                if host == name and not ownership.is_virtual(cid)
            ),
            key=lambda cid: (len(ownership.ancestors(cid)), cid),
        )
        if not lost:
            return
        # Draining servers are about to be decommissioned: restoring a
        # context onto one would move it twice (or strand it).
        targets = sorted(
            (
                s
                for s in runtime.cluster.alive_servers().values()
                if not self._draining.get(s.name)
            ),
            key=lambda s: (s.context_count, s.name),
        )
        if not targets:
            self.recovery_log.append(
                {"server": name, "contexts": len(lost), "status": "no-targets"}
            )
            return
        self.recoveries += 1
        started = sim.now
        # Map each lost context to the checkpoint bundle covering it and
        # download each needed bundle from cloud storage once; the
        # per-context state is then pushed to its new host by restore().
        cover: Dict[str, str] = {}
        for root in self._checkpoint_roots:
            members = ownership.descendants(root)
            for cid in lost:
                if cid in members and cid not in cover:
                    cover[cid] = root
        bundles: Dict[str, dict] = {}
        for root in sorted(set(cover.values())):
            # Reassemble whatever layout the checkpointer stored: a
            # legacy full bundle, or a base + delta chain.  Reads are
            # priced by the *stored* bundle sizes (a full bundle ships
            # the whole subtree even when only part of it was lost; a
            # chain ships the base plus its deltas).
            value = yield from read_checkpoint(
                self.storage, self.checkpoint_key(root), base_size_bytes=None
            )
            if value:
                bundles[root] = value
        # One new host per lost subtree: co-location survives recovery.
        assignment: Dict[str, Server] = {}
        rotation = 0
        pending: List[Signal] = []
        for cid in lost:
            root = cover.get(cid)
            group = root if root is not None else cid
            dst = assignment.get(group)
            if dst is None:
                dst = targets[rotation % len(targets)]
                rotation += 1
                assignment[group] = dst
            state = bundles.get(root, {}).get(cid) if root is not None else None
            if state is None:
                self.contexts_restored_without_checkpoint += 1
            try:
                pending.append(self.coordinator.restore(cid, dst, state))
            except MigrationError:
                # The chosen target died (or the context vanished) while
                # this recovery was in flight.  Skip the context rather
                # than killing the whole recovery process — the rest of
                # the lost set still restores.
                continue
        restored = 0
        for signal in pending:
            try:
                yield signal
            except Exception:  # noqa: BLE001 - count what did come back
                continue
            restored += 1
        self.contexts_recovered += restored
        self.recovery_log.append(
            {
                "server": name,
                "contexts": len(lost),
                "restored": restored,
                "started_ms": started,
                "finished_ms": sim.now,
            }
        )

    def _recover_server_honest(self, name: str) -> Generator:
        """Fencing-epoch recovery: declaration-driven, no ground truth.

        1. Fence every checkpoint root with members mapped to ``name``
           (epoch bump, persisted under ``fencing/{root}``) — from this
           instant the old owner's writes raise ``FencedError`` even if
           it is alive but partitioned.
        2. Give the fenced owner ``fence_grace_ms`` to run its step-down
           flush: a live owner snapshots its subtrees to cloud storage,
           which is not behind the partitioned network fabric.
        3. Restore each subtree from the flush when one appeared (zero
           lost updates, and durable evidence the detection was false)
           or from the last periodic checkpoint when none did (the
           server really is dead; acked writes past the checkpoint are
           the lost work the availability scoring counts).
        4. Grant each root to its new holder at the fenced epoch.

        With fencing off (``honest_recovery`` alone) steps 1, 2 and 4
        are skipped: recovery rolls straight back to the checkpoint,
        quantifying exactly what the fence prevents.
        """
        runtime = self.runtime
        sim = runtime.sim
        ownership = runtime.ownership
        lost = sorted(
            (
                cid
                for cid, host in runtime.placement.items()
                if host == name and not ownership.is_virtual(cid)
            ),
            key=lambda cid: (len(ownership.ancestors(cid)), cid),
        )
        if not lost:
            return
        cover: Dict[str, str] = {}
        for root in self._checkpoint_roots:
            members = ownership.descendants(root)
            for cid in lost:
                if cid in members and cid not in cover:
                    cover[cid] = root
        roots = sorted(set(cover.values()))
        fencing = self.fencing
        if fencing is not None:
            persists: List[Signal] = []
            for root in roots:
                epoch = fencing.fence(root)
                persists.append(
                    self.storage.write(f"fencing/{root}", epoch, size_bytes=32)
                )
            for signal in persists:
                yield signal
            # The flush runs *on the victim* (dead servers run nothing);
            # it alone may consult its own liveness.
            sim.process(
                self._step_down_flush(name, roots), name=f"fence-flush-{name}"
            )
            yield sim.timeout(self.fence_grace_ms)
        self.recoveries += 1
        started = sim.now
        bundles: Dict[str, dict] = {}
        flushed_roots = 0
        for root in roots:
            if fencing is not None:
                flush = self.storage.peek(f"fence-flush/{root}")
                if flush:
                    bundles[root] = dict(flush.get("states", {}))
                    flushed_roots += 1
                    self.flush_restores += 1
                    self.storage.delete(f"fence-flush/{root}")
                    continue
            value = yield from read_checkpoint(
                self.storage, self.checkpoint_key(root), base_size_bytes=None
            )
            if value:
                bundles[root] = value
        if flushed_roots and not self._false_suspects.get(name):
            # A flush is durable evidence the declared server was alive
            # — a false detection learned without peeking ground truth.
            self._false_suspects[name] = True
            self.false_detections += 1
        # Restore targets: servers the detector does not currently
        # suspect (the manager's honest belief), minus draining ones and
        # the victim itself.  A target that is in fact dead surfaces as
        # a MigrationError from the restore protocol, not as a peek.
        suspected = set(getattr(self._detector, "suspected", ()) or ())
        suspected.add(name)
        targets = sorted(
            (
                s
                for s in runtime.cluster.servers.values()
                if s.name not in suspected and not self._draining.get(s.name)
            ),
            key=lambda s: (s.context_count, s.name),
        )
        if not targets:
            self.recovery_log.append(
                {"server": name, "contexts": len(lost), "status": "no-targets"}
            )
            return
        # One new host per lost subtree: co-location survives recovery.
        assignment: Dict[str, Server] = {}
        rotation = 0
        pending: List[Signal] = []
        granted: Dict[str, str] = {}
        for cid in lost:
            root = cover.get(cid)
            group = root if root is not None else cid
            dst = assignment.get(group)
            if dst is None:
                dst = targets[rotation % len(targets)]
                rotation += 1
                assignment[group] = dst
            state = bundles.get(root, {}).get(cid) if root is not None else None
            if state is None:
                self.contexts_restored_without_checkpoint += 1
            try:
                pending.append(self.coordinator.restore(cid, dst, state))
            except MigrationError:
                continue
            if root is not None:
                granted[root] = dst.name
        restored = 0
        for signal in pending:
            try:
                yield signal
            except Exception:  # noqa: BLE001 - count what did come back
                continue
            restored += 1
        if fencing is not None:
            persists = []
            for root in sorted(granted):
                epoch = fencing.grant(root, granted[root])
                persists.append(
                    self.storage.write(f"fencing/{root}", epoch, size_bytes=32)
                )
            for signal in persists:
                yield signal
        self.contexts_recovered += restored
        self.recovery_log.append(
            {
                "server": name,
                "contexts": len(lost),
                "restored": restored,
                "flushed_roots": flushed_roots,
                "started_ms": started,
                "finished_ms": sim.now,
            }
        )

    def _step_down_flush(self, name: str, roots: List[str]) -> Generator:
        """The fenced owner's step-down handler (runs *on the victim*).

        A declared server that is in fact alive — partitioned, not
        crashed — can no longer serve writes (its subtrees are fenced)
        but can still reach cloud storage.  It flushes the fenced
        subtrees' state there so the manager restores a byte-fresh image
        instead of rolling back to the last periodic checkpoint: the
        difference between zero lost updates and a window of lost work.

        Checking ``server.alive`` here is not a ground-truth cheat: this
        generator models code executing on the victim itself, and dead
        servers run nothing — the absence of a flush after the grace
        window is exactly the manager's (honest) evidence of death.
        """
        runtime = self.runtime
        server = runtime.cluster.servers.get(name)
        if server is None or not server.alive:
            return  # truly dead: no flush ever appears
        writes: List[Signal] = []
        for root in roots:
            states: Dict[str, dict] = {}
            size = 0
            for member in sorted(subtree_members(runtime, root)):
                if runtime.placement.get(member) != name:
                    continue
                instance = runtime.instances.get(member)
                if instance is None or instance._aeon_state_dropped:
                    continue
                states[member] = instance.state_snapshot()
                size += int(getattr(instance, "size_bytes", 1024))
            if not states:
                continue
            epoch = self.fencing.epoch(root) if self.fencing is not None else 0
            writes.append(
                self.storage.write(
                    f"fence-flush/{root}",
                    {"epoch": epoch, "states": states},
                    size_bytes=max(size, 64),
                )
            )
        for signal in writes:
            yield signal

    def _redrive_restores(self) -> Generator:
        """Self-heal restores a failed predecessor left half-done.

        The predecessor's restore journal (``kind="restore"`` WAL
        records) tells the successor exactly which contexts were being
        re-placed and where.  Instead of waiting for the detector to
        re-declare the still-silent server (the old behavior — recovery
        stalled at least a full lease), the successor re-drives each one
        from the covering checkpoint under a fresh migration id and
        retires the stale journal entry.
        """
        runtime = self.runtime
        for payload in sorted(
            self._pending_restores, key=lambda p: int(p.get("migration_id", 0))
        ):
            cid = payload.get("cid")
            stale_key = f"migration/{int(payload.get('migration_id', 0))}"
            dst = runtime.cluster.servers.get(payload.get("dst") or "")
            if (
                cid is None
                or dst is None
                or runtime.instances.get(cid) is None
                or payload.get("step") == "moved"
            ):
                # Unknown context/target, or the state push already
                # landed (only the "done" marker is missing): re-driving
                # would roll back writes the restore already recovered.
                yield self.storage.delete(stale_key)
                continue
            root = None
            for candidate in self._checkpoint_roots:
                if cid in runtime.ownership.descendants(candidate):
                    root = candidate
                    break
            state = None
            if root is not None:
                bundle = yield from read_checkpoint(
                    self.storage, self.checkpoint_key(root), base_size_bytes=None
                )
                if bundle:
                    state = bundle.get(cid)
            if state is None:
                self.contexts_restored_without_checkpoint += 1
            try:
                done = self.coordinator.restore(cid, dst, state)
            except MigrationError:
                yield self.storage.delete(stale_key)
                continue
            try:
                yield done
                self.contexts_recovered += 1
            except Exception:  # noqa: BLE001 - retire the entry regardless
                pass
            yield self.storage.delete(stale_key)
        self._pending_restores = []

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------
    def _loop(self) -> Generator:
        while self.running and not self.crashed:
            yield self.runtime.sim.timeout(self.report_interval_ms)
            if not self.running or self.crashed:
                return
            snapshot = self.collect_snapshot()
            self.server_count_series.add(
                self.runtime.sim.now, len(snapshot.alive_reports())
            )
            actions = self.policy.decide(snapshot) if self.policy is not None else []
            yield from self._execute(actions, snapshot)
            # Persist the mapping epoch (the stateless-manager story).
            yield self.storage.write(
                "mapping/epoch", self.runtime.ownership.epoch, size_bytes=32
            )

    def collect_snapshot(self) -> ClusterSnapshot:
        """Assemble the cluster state the policy decides on."""
        runtime = self.runtime
        reports = [
            ServerReport(
                name=server.name,
                cpu_utilization=server.utilization_window(),
                context_count=server.context_count,
                alive=server.alive,
            )
            for server in runtime.cluster.servers.values()
        ]
        window_start = max(0.0, runtime.sim.now - self.report_interval_ms)
        latencies = runtime.latency.latencies(since_ms=window_start)
        contexts_by_server: Dict[str, List[str]] = {}
        for cid, server_name in runtime.placement.items():
            if runtime.ownership.is_virtual(cid):
                continue
            contexts_by_server.setdefault(server_name, []).append(cid)
        for listing in contexts_by_server.values():
            listing.sort(key=self._migration_preference)
        return ClusterSnapshot(
            now_ms=runtime.sim.now,
            servers=reports,
            mean_latency_ms=mean(latencies),
            p99_latency_ms=percentile(latencies, 99.0),
            completed_in_window=len(latencies),
            contexts_by_server=contexts_by_server,
        )

    def _migration_preference(self, cid: str) -> tuple:
        """Order contexts within a server for migration picking.

        Prefer contexts that are roots of larger subtrees (the paper
        migrates Rooms, not individual Items): fewer owners first, more
        children first.
        """
        ownership = self.runtime.ownership
        return (len(ownership.parents(cid)), -len(ownership.children(cid)), cid)

    def _execute(self, actions: List[Action], snapshot: ClusterSnapshot) -> Generator:
        pending: List[Signal] = []
        for action in actions:
            if isinstance(action, ScaleOutAction):
                for _ in range(action.count):
                    handle = self.runtime.cluster.provision(self.instance_type)
                    handle.ready.add_callback(
                        lambda _sig, server=handle.server: self._on_booted(server)
                    )
            elif isinstance(action, MigrateAction):
                dst = self.runtime.cluster.servers.get(action.dst_server)
                if dst is None or not dst.alive:
                    continue
                if self.runtime.placement.get(action.cid) == dst.name:
                    continue
                if len(self.coordinator.in_flight()) >= self.max_concurrent_migrations:
                    break
                # Move the context together with its co-located subtree
                # (the paper moves "Room and Player contexts"): migrating
                # a container without its members would leave the load
                # behind and add cross-server hops.
                for member in self._colocated_subtree(action.cid):
                    self.migrations_started += 1
                    pending.append(self.coordinator.migrate(member, dst))
            elif isinstance(action, ScaleInAction):
                yield from self._drain_and_remove(action.server)
        # Wait for this round's migrations (bounded, keeps rounds sane).
        # A failed one surfaces on its signal; swallowing it here keeps
        # the control loop alive (the context simply did not move).
        for signal in pending:
            if not signal.triggered:
                try:
                    yield signal
                except MigrationError:
                    continue

    def _colocated_subtree(self, cid: str) -> List[str]:
        """``cid`` plus its descendants hosted on the same server."""
        runtime = self.runtime
        home = runtime.placement.get(cid)
        members = [
            member
            for member in runtime.ownership.descendants(cid)
            if not runtime.ownership.is_virtual(member)
            and runtime.placement.get(member) == home
        ]
        # Containers first so arriving events find the parents settled.
        # The cid tiebreaker makes the order *total*: descendants() is a
        # set, and leaving same-depth members in set-iteration order
        # made the migration order — and thus whole elastic experiments
        # — depend on the interpreter's hash seed (PYTHONHASHSEED).
        members.sort(key=lambda m: (len(runtime.ownership.ancestors(m)), m))
        return members

    def _on_booted(self, server: Server) -> None:
        self.runtime.attach_server(server)
        if self._crash_drops_state:
            self._hook_server(server)

    def _drain_and_remove(self, server_name: str) -> Generator:
        """Move a server's contexts away, then decommission it.

        One failed migration (a victim concurrently moved, the chosen
        target dying mid-drain) must not kill the control loop: failed
        victims are skipped, the draining flag always clears, and the
        server is decommissioned only once nothing lives on it anymore —
        a partially drained server is retried by a later ScaleIn.
        """
        runtime = self.runtime
        server = runtime.cluster.servers.get(server_name)
        if server is None or self._draining.get(server_name):
            return
        self._draining[server_name] = True
        try:
            victims = [
                cid
                for cid, host in runtime.placement.items()
                if host == server_name and not runtime.ownership.is_virtual(cid)
            ]
            # Never drain onto a server that is itself being drained (two
            # concurrent ScaleIns would ping-pong contexts onto a machine
            # about to disappear).
            targets = [
                s
                for s in runtime.cluster.alive_servers().values()
                if s.name != server_name and not self._draining.get(s.name)
            ]
            if not targets:
                return
            targets.sort(key=lambda s: (s.context_count, s.name))
            for index, cid in enumerate(victims):
                dst = targets[index % len(targets)]
                try:
                    done = self.coordinator.migrate(cid, dst)
                except MigrationError:
                    continue  # already moved / destination gone: skip
                self.migrations_started += 1
                try:
                    yield done
                except MigrationError:
                    continue  # failed mid-flight: the victim stays put
            leftovers = any(
                host == server_name and not runtime.ownership.is_virtual(cid)
                for cid, host in runtime.placement.items()
            )
            if leftovers:
                return
            runtime.cluster.decommission(server_name)
            runtime.network.unregister(server_name)
            # Push-invalidate client location caches pointing at the
            # decommissioned endpoint (nothing will answer there again).
            self.cache_invalidations += self.runtime.invalidate_cached_locations(
                server_name
            )
        finally:
            self._draining.pop(server_name, None)
