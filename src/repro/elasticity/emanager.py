"""The elasticity manager (§5): mapping, policies, migrations, recovery.

The eManager is a *stateless* service: the authoritative context mapping
and the in-flight migration write-ahead records live in cloud storage.
Every ``report_interval_ms`` it:

1. collects per-server resource reports (CPU utilization, context
   counts) and recent client latency,
2. asks its :class:`~repro.elasticity.policies.ElasticityPolicy` for
   actions,
3. provisions/decommissions servers and launches migrations through the
   :class:`~repro.elasticity.migration.MigrationCoordinator` (bounded
   concurrency),
4. persists the mapping epoch.

``crash()`` kills the manager mid-flight; ``recover()`` builds a fresh
manager that reads the WAL from storage and completes unfinished
migrations — the §5.3 fault-tolerance story.

:meth:`EManager.enable_fault_tolerance` extends §5.3 from manager
crashes to **server** crashes: a periodic checkpointing policy snapshots
configured context subtrees to cloud storage, and a failure detector's
declarations trigger re-placement of the lost contexts from their last
checkpoint through the migration coordinator's restore path.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from ..core.errors import MigrationError
from ..core.runtime import RuntimeBase
from ..sim.cluster import InstanceType, Server
from ..sim.kernel import Signal
from ..sim.metrics import TimeSeries, mean, percentile
from .migration import MigrationCoordinator, MigrationRecord
from .snapshot import (
    DeltaCheckpointer,
    fuzzy_snapshot,
    read_checkpoint,
    snapshot_context,
    subtree_members,
)
from .policies import (
    Action,
    ClusterSnapshot,
    ElasticityPolicy,
    MigrateAction,
    ScaleInAction,
    ScaleOutAction,
    ServerReport,
)
from .storage import CloudStorage

__all__ = ["EManager"]


class EManager:
    """Periodic elasticity controller for one runtime."""

    def __init__(
        self,
        runtime: RuntimeBase,
        storage: CloudStorage,
        policy: Optional[ElasticityPolicy],
        instance_type: InstanceType,
        report_interval_ms: float = 1000.0,
        max_concurrent_migrations: int = 4,
        host: Optional[Server] = None,
    ) -> None:
        self.runtime = runtime
        self.storage = storage
        self.policy = policy
        self.instance_type = instance_type
        self.report_interval_ms = report_interval_ms
        self.max_concurrent_migrations = max_concurrent_migrations
        sim = runtime.sim
        self.host = host or Server(sim, "~emanager", instance_type)
        if not runtime.network.is_registered(self.host.name):
            runtime.network.register(self.host.name, self.host.mailbox, instance_type)
        self.coordinator = MigrationCoordinator(runtime, storage, self.host)
        self.crashed = False
        self.running = False
        self.migrations_started = 0
        self.server_count_series = TimeSeries()
        self._latency_mark = 0
        self._draining: Dict[str, bool] = {}
        # Fault tolerance (enable_fault_tolerance): periodic checkpoints
        # and crash recovery driven by a failure detector.
        self.checkpoint_interval_ms: Optional[float] = None
        self.checkpoints_taken = 0
        self.checkpoints_skipped = 0
        self.contexts_recovered = 0
        self.contexts_restored_without_checkpoint = 0
        self.recoveries = 0
        self.false_detections = 0
        #: Client location-cache entries dropped by push invalidation
        #: (detector declarations and scale-in decommissions).
        self.cache_invalidations = 0
        self.recovery_log: List[Dict[str, Any]] = []
        self._checkpoint_roots: List[str] = []
        self._checkpointing = False
        self._consistent_checkpoints = True
        self._checkpoint_mode = "full"
        self._delta_checkpointers: Dict[str, DeltaCheckpointer] = {}
        self._recovering: Dict[str, bool] = {}
        # Names currently counted as false alarms: the detector
        # re-declares a silent suspect every lease, but one partition is
        # one false detection, counted on the suspicion transition only.
        self._false_suspects: Dict[str, bool] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the periodic report/decide/act loop."""
        if self.running:
            return
        self.running = True
        self.runtime.sim.process(self._loop(), name="emanager")

    def stop(self) -> None:
        """Stop the control (and checkpoint) loops at their next tick."""
        self.running = False
        self._checkpointing = False

    def crash(self) -> None:
        """Fail-stop the manager (in-flight migrations keep their WAL)."""
        self.crashed = True
        self.running = False
        self._checkpointing = False
        self.coordinator.halted = True

    def recover(self) -> "EManager":
        """Elect a replacement manager that finishes WAL'd migrations."""
        successor = EManager(
            self.runtime,
            self.storage,
            self.policy,
            self.instance_type,
            self.report_interval_ms,
            self.max_concurrent_migrations,
        )
        max_walled_id = 0
        for key in self.storage.keys_with_prefix("migration/"):
            payload = self.storage.peek(key)
            if not payload:
                continue
            # Track every id the WAL has seen (resumed or not) so the
            # successor's counter can be seeded past all of them — see
            # MigrationCoordinator.ensure_counter_at_least.
            max_walled_id = max(max_walled_id, int(payload.get("migration_id", 0)))
            if payload.get("step") in (None, "done"):
                continue
            if payload.get("kind", "migrate") != "migrate":
                # Half-done restores are not WAL-resumed: re-wire the
                # successor with enable_fault_tolerance and the
                # detector's periodic re-declaration of a still-silent
                # suspect re-drives whatever is still mapped to it.
                continue
            record = MigrationRecord(
                migration_id=payload["migration_id"],
                cid=payload["cid"],
                src=payload["src"],
                dst=payload["dst"],
                step=payload["step"],
                started_ms=self.runtime.sim.now,
            )
            instance = self.runtime.instances.get(record.cid)
            if instance is not None:
                record.size_bytes = int(getattr(instance, "size_bytes", 1024))
            successor.coordinator.resume(record)
        successor.coordinator.ensure_counter_at_least(max_walled_id)
        return successor

    # ------------------------------------------------------------------
    # Server fault tolerance: checkpoints + crash recovery (§5.3)
    # ------------------------------------------------------------------
    @staticmethod
    def checkpoint_key(root_cid: str) -> str:
        """Stable storage key of a subtree's rolling checkpoint."""
        return f"checkpoint/{root_cid}"

    @property
    def checkpoint_bytes_written(self) -> int:
        """Bytes shipped to storage under ``checkpoint/`` so far.

        The headline storage cost the fig11 availability experiment
        compares between full and delta checkpoint modes.
        """
        return self.storage.bytes_written_for("checkpoint")

    def enable_fault_tolerance(
        self,
        detector: Any,
        checkpoint_interval_ms: float = 2000.0,
        roots: Optional[List[str]] = None,
        consistent_checkpoints: bool = True,
        checkpoint_mode: str = "full",
        max_delta_chain: int = 6,
    ) -> None:
        """Checkpoint ``roots``' subtrees periodically; recover on crashes.

        ``detector`` is duck typed (``on_failure(callback)`` — a
        :class:`repro.faults.FailureDetector`); its declarations trigger
        re-placement of every context the dead server hosted, rolled
        back to its last checkpoint, via the coordinator's restore path.
        ``roots`` defaults to every non-virtual root of the ownership
        network at enable time (checkpoint the world).

        ``consistent_checkpoints=False`` switches to lock-free per-context
        capture (:func:`~repro.elasticity.snapshot.fuzzy_snapshot`) —
        required for runtimes whose locking has no global acquisition
        order (Orleans' per-call turn locks deadlock against a
        subtree-locking snapshot).

        ``checkpoint_mode`` selects what each interval uploads:

        * ``"full"`` — the whole subtree every time (one rolling bundle);
        * ``"delta"`` — a :class:`~repro.elasticity.snapshot.DeltaCheckpointer`
          per root: contexts whose ``_aeon_version`` has not moved are
          skipped, unchanged intervals write nothing, and after
          ``max_delta_chain`` deltas the subtree re-bases.  Orthogonal
          to ``consistent_checkpoints`` (capture discipline vs storage
          layout).
        """
        if checkpoint_mode not in ("full", "delta"):
            raise ValueError(f"unknown checkpoint_mode {checkpoint_mode!r}")
        self.checkpoint_interval_ms = checkpoint_interval_ms
        self._consistent_checkpoints = consistent_checkpoints
        self._checkpoint_mode = checkpoint_mode
        if roots is None:
            ownership = self.runtime.ownership
            roots = sorted(
                cid for cid in ownership.roots() if not ownership.is_virtual(cid)
            )
        self._checkpoint_roots = list(roots)
        if checkpoint_mode == "delta":
            self._delta_checkpointers = {
                root: DeltaCheckpointer(
                    self.runtime,
                    self.storage,
                    root,
                    key=self.checkpoint_key(root),
                    consistent=consistent_checkpoints,
                    max_chain=max_delta_chain,
                )
                for root in self._checkpoint_roots
            }
        detector.on_failure(self._on_server_failure)
        on_recovery = getattr(detector, "on_recovery", None)
        if on_recovery is not None:
            on_recovery(self._on_server_recovered)
        if checkpoint_interval_ms and not self._checkpointing:
            self._checkpointing = True
            self.runtime.sim.process(self._checkpoint_loop(), name="checkpointer")

    def _checkpoint_loop(self) -> Generator:
        runtime = self.runtime
        while self._checkpointing and not self.crashed:
            yield runtime.sim.timeout(self.checkpoint_interval_ms)
            if not self._checkpointing or self.crashed:
                return
            for root in self._checkpoint_roots:
                instance = runtime.instances.get(root)
                if instance is None:
                    continue
                # A subtree with ANY member on a dead server keeps its
                # previous checkpoint: capturing the ghost memory of a
                # crashed host would mask exactly the state loss this
                # machinery exists to model.
                members_alive = True
                for member in subtree_members(runtime, root):
                    host = runtime.cluster.servers.get(
                        runtime.placement.get(member, "")
                    )
                    if host is None or not host.alive:
                        members_alive = False
                        break
                if not members_alive:
                    continue
                checkpointer = self._delta_checkpointers.get(root)
                if checkpointer is not None:
                    done = checkpointer.checkpoint()
                elif self._consistent_checkpoints:
                    done = snapshot_context(
                        runtime, self.storage, instance.ref,
                        key=self.checkpoint_key(root),
                    )
                else:
                    done = fuzzy_snapshot(
                        runtime, self.storage, root, key=self.checkpoint_key(root)
                    )
                try:
                    outcome = yield done
                except Exception:  # noqa: BLE001 - keep checkpointing others
                    continue
                if outcome == "skip":
                    self.checkpoints_skipped += 1
                else:
                    self.checkpoints_taken += 1

    def _on_server_failure(self, server_name: str) -> None:
        # Detector-driven client redirection: push-invalidate every
        # client cache entry pointing at the declared-dead server, so
        # clients re-resolve instead of discovering the corpse one
        # failed event at a time.  Re-declarations re-invalidate, which
        # also clears entries re-cached from a not-yet-remapped
        # authoritative mapping during the outage.
        self.cache_invalidations += self.runtime.invalidate_cached_locations(
            server_name
        )
        self.runtime.sim.process(
            self._recover_server(server_name), name=f"recover-{server_name}"
        )

    def _on_server_recovered(self, server_name: str) -> None:
        # The suspect heartbeats again: a future suspicion is a fresh
        # (possibly false) detection, counted anew.
        self._false_suspects.pop(server_name, None)

    def _recover_server(self, name: str) -> Generator:
        """Re-place everything a dead server hosted from last checkpoints."""
        if self._recovering.get(name):
            return  # the detector re-declared mid-recovery; one is enough
        self._recovering[name] = True
        try:
            yield from self._recover_server_inner(name)
        finally:
            self._recovering.pop(name, None)

    def _recover_server_inner(self, name: str) -> Generator:
        runtime = self.runtime
        sim = runtime.sim
        server = runtime.cluster.servers.get(name)
        if server is not None and server.alive:
            # The detector was partitioned away from a healthy server;
            # ground truth says nothing was lost.  Real deployments fence
            # instead — here we only count the false alarm (once per
            # suspicion episode, not per lease re-declaration).
            if not self._false_suspects.get(name):
                self._false_suspects[name] = True
                self.false_detections += 1
            return
        ownership = runtime.ownership
        # Containers first so arriving events find the parents settled.
        lost = sorted(
            (
                cid
                for cid, host in runtime.placement.items()
                if host == name and not ownership.is_virtual(cid)
            ),
            key=lambda cid: (len(ownership.ancestors(cid)), cid),
        )
        if not lost:
            return
        # Draining servers are about to be decommissioned: restoring a
        # context onto one would move it twice (or strand it).
        targets = sorted(
            (
                s
                for s in runtime.cluster.alive_servers().values()
                if not self._draining.get(s.name)
            ),
            key=lambda s: (s.context_count, s.name),
        )
        if not targets:
            self.recovery_log.append(
                {"server": name, "contexts": len(lost), "status": "no-targets"}
            )
            return
        self.recoveries += 1
        started = sim.now
        # Map each lost context to the checkpoint bundle covering it and
        # download each needed bundle from cloud storage once; the
        # per-context state is then pushed to its new host by restore().
        cover: Dict[str, str] = {}
        for root in self._checkpoint_roots:
            members = ownership.descendants(root)
            for cid in lost:
                if cid in members and cid not in cover:
                    cover[cid] = root
        bundles: Dict[str, dict] = {}
        for root in sorted(set(cover.values())):
            # Reassemble whatever layout the checkpointer stored: a
            # legacy full bundle, or a base + delta chain.  Reads are
            # priced by the *stored* bundle sizes (a full bundle ships
            # the whole subtree even when only part of it was lost; a
            # chain ships the base plus its deltas).
            value = yield from read_checkpoint(
                self.storage, self.checkpoint_key(root), base_size_bytes=None
            )
            if value:
                bundles[root] = value
        # One new host per lost subtree: co-location survives recovery.
        assignment: Dict[str, Server] = {}
        rotation = 0
        pending: List[Signal] = []
        for cid in lost:
            root = cover.get(cid)
            group = root if root is not None else cid
            dst = assignment.get(group)
            if dst is None:
                dst = targets[rotation % len(targets)]
                rotation += 1
                assignment[group] = dst
            state = bundles.get(root, {}).get(cid) if root is not None else None
            if state is None:
                self.contexts_restored_without_checkpoint += 1
            try:
                pending.append(self.coordinator.restore(cid, dst, state))
            except MigrationError:
                # The chosen target died (or the context vanished) while
                # this recovery was in flight.  Skip the context rather
                # than killing the whole recovery process — the rest of
                # the lost set still restores.
                continue
        restored = 0
        for signal in pending:
            try:
                yield signal
            except Exception:  # noqa: BLE001 - count what did come back
                continue
            restored += 1
        self.contexts_recovered += restored
        self.recovery_log.append(
            {
                "server": name,
                "contexts": len(lost),
                "restored": restored,
                "started_ms": started,
                "finished_ms": sim.now,
            }
        )

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------
    def _loop(self) -> Generator:
        while self.running and not self.crashed:
            yield self.runtime.sim.timeout(self.report_interval_ms)
            if not self.running or self.crashed:
                return
            snapshot = self.collect_snapshot()
            self.server_count_series.add(
                self.runtime.sim.now, len(snapshot.alive_reports())
            )
            actions = self.policy.decide(snapshot) if self.policy is not None else []
            yield from self._execute(actions, snapshot)
            # Persist the mapping epoch (the stateless-manager story).
            yield self.storage.write(
                "mapping/epoch", self.runtime.ownership.epoch, size_bytes=32
            )

    def collect_snapshot(self) -> ClusterSnapshot:
        """Assemble the cluster state the policy decides on."""
        runtime = self.runtime
        reports = [
            ServerReport(
                name=server.name,
                cpu_utilization=server.utilization_window(),
                context_count=server.context_count,
                alive=server.alive,
            )
            for server in runtime.cluster.servers.values()
        ]
        window_start = max(0.0, runtime.sim.now - self.report_interval_ms)
        latencies = runtime.latency.latencies(since_ms=window_start)
        contexts_by_server: Dict[str, List[str]] = {}
        for cid, server_name in runtime.placement.items():
            if runtime.ownership.is_virtual(cid):
                continue
            contexts_by_server.setdefault(server_name, []).append(cid)
        for listing in contexts_by_server.values():
            listing.sort(key=self._migration_preference)
        return ClusterSnapshot(
            now_ms=runtime.sim.now,
            servers=reports,
            mean_latency_ms=mean(latencies),
            p99_latency_ms=percentile(latencies, 99.0),
            completed_in_window=len(latencies),
            contexts_by_server=contexts_by_server,
        )

    def _migration_preference(self, cid: str) -> tuple:
        """Order contexts within a server for migration picking.

        Prefer contexts that are roots of larger subtrees (the paper
        migrates Rooms, not individual Items): fewer owners first, more
        children first.
        """
        ownership = self.runtime.ownership
        return (len(ownership.parents(cid)), -len(ownership.children(cid)), cid)

    def _execute(self, actions: List[Action], snapshot: ClusterSnapshot) -> Generator:
        pending: List[Signal] = []
        for action in actions:
            if isinstance(action, ScaleOutAction):
                for _ in range(action.count):
                    handle = self.runtime.cluster.provision(self.instance_type)
                    handle.ready.add_callback(
                        lambda _sig, server=handle.server: self._on_booted(server)
                    )
            elif isinstance(action, MigrateAction):
                dst = self.runtime.cluster.servers.get(action.dst_server)
                if dst is None or not dst.alive:
                    continue
                if self.runtime.placement.get(action.cid) == dst.name:
                    continue
                if len(self.coordinator.in_flight()) >= self.max_concurrent_migrations:
                    break
                # Move the context together with its co-located subtree
                # (the paper moves "Room and Player contexts"): migrating
                # a container without its members would leave the load
                # behind and add cross-server hops.
                for member in self._colocated_subtree(action.cid):
                    self.migrations_started += 1
                    pending.append(self.coordinator.migrate(member, dst))
            elif isinstance(action, ScaleInAction):
                yield from self._drain_and_remove(action.server)
        # Wait for this round's migrations (bounded, keeps rounds sane).
        # A failed one surfaces on its signal; swallowing it here keeps
        # the control loop alive (the context simply did not move).
        for signal in pending:
            if not signal.triggered:
                try:
                    yield signal
                except MigrationError:
                    continue

    def _colocated_subtree(self, cid: str) -> List[str]:
        """``cid`` plus its descendants hosted on the same server."""
        runtime = self.runtime
        home = runtime.placement.get(cid)
        members = [
            member
            for member in runtime.ownership.descendants(cid)
            if not runtime.ownership.is_virtual(member)
            and runtime.placement.get(member) == home
        ]
        # Containers first so arriving events find the parents settled.
        # The cid tiebreaker makes the order *total*: descendants() is a
        # set, and leaving same-depth members in set-iteration order
        # made the migration order — and thus whole elastic experiments
        # — depend on the interpreter's hash seed (PYTHONHASHSEED).
        members.sort(key=lambda m: (len(runtime.ownership.ancestors(m)), m))
        return members

    def _on_booted(self, server: Server) -> None:
        self.runtime.attach_server(server)

    def _drain_and_remove(self, server_name: str) -> Generator:
        """Move a server's contexts away, then decommission it.

        One failed migration (a victim concurrently moved, the chosen
        target dying mid-drain) must not kill the control loop: failed
        victims are skipped, the draining flag always clears, and the
        server is decommissioned only once nothing lives on it anymore —
        a partially drained server is retried by a later ScaleIn.
        """
        runtime = self.runtime
        server = runtime.cluster.servers.get(server_name)
        if server is None or self._draining.get(server_name):
            return
        self._draining[server_name] = True
        try:
            victims = [
                cid
                for cid, host in runtime.placement.items()
                if host == server_name and not runtime.ownership.is_virtual(cid)
            ]
            # Never drain onto a server that is itself being drained (two
            # concurrent ScaleIns would ping-pong contexts onto a machine
            # about to disappear).
            targets = [
                s
                for s in runtime.cluster.alive_servers().values()
                if s.name != server_name and not self._draining.get(s.name)
            ]
            if not targets:
                return
            targets.sort(key=lambda s: (s.context_count, s.name))
            for index, cid in enumerate(victims):
                dst = targets[index % len(targets)]
                try:
                    done = self.coordinator.migrate(cid, dst)
                except MigrationError:
                    continue  # already moved / destination gone: skip
                self.migrations_started += 1
                try:
                    yield done
                except MigrationError:
                    continue  # failed mid-flight: the victim stays put
            leftovers = any(
                host == server_name and not runtime.ownership.is_virtual(cid)
                for cid, host in runtime.placement.items()
            )
            if leftovers:
                return
            runtime.cluster.decommission(server_name)
            runtime.network.unregister(server_name)
            # Push-invalidate client location caches pointing at the
            # decommissioned endpoint (nothing will answer there again).
            self.cache_invalidations += self.runtime.invalidate_cached_locations(
                server_name
            )
        finally:
            self._draining.pop(server_name, None)
