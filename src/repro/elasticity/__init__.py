"""Elasticity: the eManager, migration protocol, policies, snapshots."""

from .emanager import EManager
from .migration import MigrationCoordinator, MigrationRecord
from .policies import (
    Action,
    ClusterSnapshot,
    ElasticityPolicy,
    MigrateAction,
    ResourceUtilizationPolicy,
    ScaleInAction,
    ScaleOutAction,
    ServerContentionPolicy,
    ServerReport,
    SLAPolicy,
)
from .snapshot import (
    DeltaCheckpointer,
    fuzzy_snapshot,
    read_checkpoint,
    snapshot_context,
)
from .storage import CloudStorage

__all__ = [
    "Action",
    "CloudStorage",
    "DeltaCheckpointer",
    "ClusterSnapshot",
    "ElasticityPolicy",
    "EManager",
    "MigrateAction",
    "MigrationCoordinator",
    "MigrationRecord",
    "ResourceUtilizationPolicy",
    "ScaleInAction",
    "ScaleOutAction",
    "ServerContentionPolicy",
    "ServerReport",
    "SLAPolicy",
    "fuzzy_snapshot",
    "read_checkpoint",
    "snapshot_context",
]
