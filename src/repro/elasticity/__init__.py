"""Elasticity: the eManager, migration protocol, policies, snapshots."""

from .emanager import EManager
from .migration import MigrationCoordinator, MigrationRecord
from .policies import (
    Action,
    ClusterSnapshot,
    ElasticityPolicy,
    MigrateAction,
    ResourceUtilizationPolicy,
    ScaleInAction,
    ScaleOutAction,
    ServerContentionPolicy,
    ServerReport,
    SLAPolicy,
)
from .snapshot import fuzzy_snapshot, snapshot_context
from .storage import CloudStorage

__all__ = [
    "Action",
    "CloudStorage",
    "ClusterSnapshot",
    "ElasticityPolicy",
    "EManager",
    "MigrateAction",
    "MigrationCoordinator",
    "MigrationRecord",
    "ResourceUtilizationPolicy",
    "ScaleInAction",
    "ScaleOutAction",
    "ServerContentionPolicy",
    "ServerReport",
    "SLAPolicy",
    "fuzzy_snapshot",
    "snapshot_context",
]
