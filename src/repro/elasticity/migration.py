"""The five-step atomic context-migration protocol (§5.2).

Steps, exactly as the paper numbers them:

  I.   The eManager sends *prepare* to the destination ``s2``; ``s2``
       creates a pending queue for the context and acks.
  II.  The eManager tells the source ``s1`` to stop accepting events for
       the context and waits for the ack.
  III. After ``δ`` milliseconds it durably updates the context mapping
       (new lookups resolve to ``s2``) and sends ``migrate(C, s2)`` to
       ``s1``.
  IV.  ``s1`` enqueues the special ``migratec`` event in C's execution
       queue; when it reaches the head (all admitted events drained) the
       state transfer starts.
  V.   On completion ``s2`` notifies the eManager and starts executing
       the buffered events.

In this implementation the "pending queue" and "stop accepting" are
realized by the context's lock: ``migratec`` is an exclusive synthetic
event, so events admitted before it finish first (correctness under
migration), and events arriving later queue behind it and execute at
``s2`` after the move — plus a forward hop if their sender's location
cache was stale (modeled by :class:`~repro.core.runtime.ClientHandle`).

Every step writes a write-ahead record to cloud storage, which is what
lets a recovering eManager finish in-flight migrations (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from ..core.errors import FencedError, MigrationError
from ..core.events import AccessMode, CallSpec, Event
from ..core.runtime import RuntimeBase
from ..sim.cluster import Server
from ..sim.kernel import Signal, Simulator
from .storage import CloudStorage

__all__ = ["MigrationCoordinator", "MigrationRecord"]


@dataclass
class MigrationRecord:
    """Progress record of one migration (also the WAL payload)."""

    migration_id: int
    cid: str
    src: str
    dst: str
    step: str = "started"  # started -> prepared -> stopped -> remapped -> moved -> done
    started_ms: float = 0.0
    finished_ms: Optional[float] = None
    size_bytes: int = 0
    #: "migrate" (live five-step protocol) or "restore" (crash recovery:
    #: no live source, state comes from the last checkpoint).
    kind: str = "migrate"

    def as_payload(self) -> dict:
        """Serializable WAL form."""
        return {
            "migration_id": self.migration_id,
            "cid": self.cid,
            "src": self.src,
            "dst": self.dst,
            "step": self.step,
            "kind": self.kind,
        }


class MigrationCoordinator:
    """Executes migrations for a runtime, one generator process each."""

    #: Fixed eManager work per migration (bookkeeping, not CPU-scaled).
    BASE_OVERHEAD_MS = 4.0
    #: CPU unit-work charged on the eManager host per migration.
    EMANAGER_CPU_MS = 14.0

    def __init__(
        self,
        runtime: RuntimeBase,
        storage: CloudStorage,
        emanager_host: Server,
        delta_ms: float = 2.0,
    ) -> None:
        self.runtime = runtime
        self.storage = storage
        self.host = emanager_host
        self.delta_ms = delta_ms
        self.records: List[MigrationRecord] = []
        self._counter = 0
        self.completed = 0
        self.failed = 0
        self.restored = 0
        #: Set on eManager crash: in-flight migrations stop at their
        #: next step boundary, leaving their WAL record for recovery.
        self.halted = False
        #: Honest failure semantics (wired by the eManager; default off):
        #: ``honest`` makes restores reset versions from the snapshot and
        #: account rolled-back writes; ``fenced`` makes every WAL append
        #: validate ``acting_epoch`` against the durable manager epoch,
        #: so a predecessor eManager that lost a failover cannot corrupt
        #: the WAL its successor now owns.
        self.honest = False
        self.fenced = False
        self.acting_epoch = 0
        self.fenced_appends = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def migrate(self, cid: str, dst: Server) -> Signal:
        """Migrate context ``cid`` to server ``dst``; returns completion."""
        record = self._new_record(cid, dst)
        done = self.runtime.sim.signal(name=f"migration:{record.migration_id}")
        self.runtime.sim.process(
            self._run(record, done), name=f"migration-{record.migration_id}"
        )
        return done

    def restore(self, cid: str, dst: Server, state: Optional[dict] = None) -> Signal:
        """Re-place a context lost in a server crash onto ``dst`` (§5.3).

        A *recovery migration*: there is no live source to drain, so the
        five-step protocol degenerates to prepare → durable remap →
        state push.  ``state`` is the context's last checkpointed state
        bundle entry (``None`` when no checkpoint covers it — the
        context is re-placed with whatever state survives, and the
        caller accounts the gap).  Returns the completion signal.
        """
        if cid not in self.runtime.placement:
            raise MigrationError(f"cannot restore unknown context {cid!r}")
        if not dst.alive:
            raise MigrationError(f"restore destination {dst.name} is not booted")
        self._counter += 1
        instance = self.runtime.instances.get(cid)
        record = MigrationRecord(
            migration_id=self._counter,
            cid=cid,
            src=self.runtime.placement[cid],
            dst=dst.name,
            kind="restore",
            started_ms=self.runtime.sim.now,
            size_bytes=int(getattr(instance, "size_bytes", 1024)),
        )
        self.records.append(record)
        done = self.runtime.sim.signal(name=f"restore:{record.migration_id}")
        self.runtime.sim.process(
            self._run_restore(record, state, done),
            name=f"restore-{record.migration_id}",
        )
        return done

    def ensure_counter_at_least(self, floor: int) -> None:
        """Never allocate a migration id at or below ``floor``.

        A recovering eManager calls this with the highest id its WAL has
        seen: a fresh migration reusing a live id would collide on the
        ``migration/{id}`` WAL key (one migration's "done" delete erases
        another's record) and on the synthetic ``eid=-id`` events in the
        lock machinery.
        """
        self._counter = max(self._counter, int(floor))

    def resume(self, record: MigrationRecord) -> Signal:
        """Finish an in-flight migration found in the WAL (recovery)."""
        done = self.runtime.sim.signal(name=f"migration:{record.migration_id}:resume")
        self.records.append(record)
        self.runtime.sim.process(
            self._run(record, done), name=f"migration-{record.migration_id}-resume"
        )
        return done

    def _new_record(self, cid: str, dst: Server) -> MigrationRecord:
        if cid not in self.runtime.placement:
            raise MigrationError(f"cannot migrate unknown context {cid!r}")
        src = self.runtime.placement[cid]
        if src == dst.name:
            raise MigrationError(f"context {cid!r} is already on {dst.name}")
        if not dst.alive:
            raise MigrationError(f"destination {dst.name} is not booted")
        self._counter += 1
        instance = self.runtime.instances[cid]
        record = MigrationRecord(
            migration_id=self._counter,
            cid=cid,
            src=src,
            dst=dst.name,
            started_ms=self.runtime.sim.now,
            size_bytes=int(getattr(instance, "size_bytes", 1024)),
        )
        self.records.append(record)
        return record

    # ------------------------------------------------------------------
    # The protocol
    # ------------------------------------------------------------------
    def _run(self, record: MigrationRecord, done: Signal) -> Generator:
        sim = self.runtime.sim
        network = self.runtime.network
        try:
            # eManager bookkeeping (CPU on the eManager host).
            yield from self.host.execute(self.EMANAGER_CPU_MS)
            yield sim.timeout(self.BASE_OVERHEAD_MS)

            # Step I: prepare the destination, wait for its ack.
            yield network.delay_signal(self.host.name, record.dst)
            yield network.delay_signal(record.dst, self.host.name)
            yield from self._log(record, "prepared")
            if self.halted:
                return

            # Step II: source stops accepting events for the context.
            yield network.delay_signal(self.host.name, record.src)
            yield network.delay_signal(record.src, self.host.name)
            yield from self._log(record, "stopped")
            if self.halted:
                return

            # Step III: after δ, durably remap, then tell the source.
            yield sim.timeout(self.delta_ms)
            yield self.storage.write(
                f"mapping/{record.cid}", record.dst, size_bytes=64
            )
            yield from self._log(record, "remapped")
            if self.halted:
                return
            yield network.delay_signal(self.host.name, record.src)

            # Step IV: the migratec event drains the context's queue.
            migratec = Event(
                eid=-record.migration_id,  # negative ids: synthetic events
                spec=CallSpec(record.cid, "__migrate__"),
                mode=AccessMode.EX,
                client="~emanager",
                submitted_ms=sim.now,
                tag="migrate",
            )
            lock = self.runtime.lock_of(record.cid)
            grant, _owned = lock.request(migratec)
            yield grant
            try:
                # Step V: transfer the state and flip the placement.
                yield network.delay_signal(
                    record.src, record.dst, size_bytes=record.size_bytes
                )
                self._apply_placement(record)
                yield from self._log(record, "moved")
            finally:
                lock.release(migratec)
            # s2 notifies the eManager; buffered events already queue
            # on the (location-independent) lock and run at s2.
            yield network.delay_signal(record.dst, self.host.name)
            yield from self._log(record, "done")
            record.finished_ms = sim.now
            self.completed += 1
            done.succeed(record)
        except Exception as exc:  # noqa: BLE001 - surfaced to the caller
            self.failed += 1
            done.fail(MigrationError(f"migration of {record.cid!r} failed: {exc}"))

    def _run_restore(
        self, record: MigrationRecord, state: Optional[dict], done: Signal
    ) -> Generator:
        sim = self.runtime.sim
        network = self.runtime.network
        try:
            # eManager bookkeeping (CPU on the eManager host).
            yield from self.host.execute(self.EMANAGER_CPU_MS)
            yield sim.timeout(self.BASE_OVERHEAD_MS)
            yield from self._log(record, "prepared")
            if self.halted:
                return

            # Prepare the destination (it allocates the pending queue).
            yield network.delay_signal(self.host.name, record.dst)
            yield network.delay_signal(record.dst, self.host.name)

            # Durably remap: new lookups resolve to the new host.
            yield self.storage.write(
                f"mapping/{record.cid}", record.dst, size_bytes=64
            )
            yield from self._log(record, "remapped")
            if self.halted:
                return

            # Take the context's lock: anything the dying holder left is
            # drained first (failed in-flight events release on death),
            # and events admitted behind us execute at the new host.
            restorec = Event(
                eid=-500_000 - record.migration_id,  # synthetic id space
                spec=CallSpec(record.cid, "__restore__"),
                mode=AccessMode.EX,
                client="~emanager",
                submitted_ms=sim.now,
                tag="restore",
            )
            lock = self.runtime.lock_of(record.cid)
            grant, _owned = lock.request(restorec)
            yield grant
            try:
                # Push the checkpointed state to the destination and
                # roll the instance back to it.
                yield network.delay_signal(
                    self.host.name, record.dst, size_bytes=record.size_bytes
                )
                instance = self.runtime.instances.get(record.cid)
                if instance is not None and state is not None:
                    rolled = instance.state_restore(
                        state,
                        restore_version=self.honest,
                        restore_structure=self.honest,
                    )
                    self.runtime.writes_rolled_back += rolled
                self._apply_restore_placement(record)
                yield from self._log(record, "moved")
            finally:
                lock.release(restorec)
            yield network.delay_signal(record.dst, self.host.name)
            yield from self._log(record, "done")
            record.finished_ms = sim.now
            self.completed += 1
            self.restored += 1
            done.succeed(record)
        except Exception as exc:  # noqa: BLE001 - surfaced to the caller
            self.failed += 1
            done.fail(MigrationError(f"restore of {record.cid!r} failed: {exc}"))

    def _apply_restore_placement(self, record: MigrationRecord) -> None:
        """Force the placement to the restore destination.

        Unlike :meth:`_apply_placement` the source may be a dead server
        (or even already-moved bookkeeping from a half-completed earlier
        attempt); the destination must be alive.
        """
        placement = self.runtime.placement
        current = placement.get(record.cid)
        if current == record.dst:
            return
        dst_server = self.runtime.cluster.servers.get(record.dst)
        if dst_server is None or not dst_server.alive:
            raise MigrationError(f"restore destination {record.dst} vanished")
        src_server = self.runtime.cluster.servers.get(current) if current else None
        placement[record.cid] = record.dst
        if src_server is not None:
            src_server.context_count -= 1
        dst_server.context_count += 1

    def _apply_placement(self, record: MigrationRecord) -> None:
        placement = self.runtime.placement
        current = placement.get(record.cid)
        if current == record.dst:
            return  # recovery re-run after the move already happened
        if current != record.src:
            raise MigrationError(
                f"context {record.cid!r} moved unexpectedly "
                f"({current!r} != {record.src!r})"
            )
        src_server = self.runtime.cluster.servers.get(record.src)
        dst_server = self.runtime.cluster.servers.get(record.dst)
        if dst_server is None or not dst_server.alive:
            raise MigrationError(f"destination {record.dst} vanished mid-migration")
        placement[record.cid] = record.dst
        if src_server is not None:
            src_server.context_count -= 1
        dst_server.context_count += 1

    def _log(self, record: MigrationRecord, step: str) -> Generator:
        """Persist the WAL record for crash recovery (§5.3).

        With fencing enabled the append is conditional on the manager
        epoch (a compare-and-set against the durable ``fencing/manager``
        key): a coordinator whose ``acting_epoch`` lags the epoch a
        recovered successor wrote is stale and its append is rejected —
        it cannot race the successor on the WAL.
        """
        if self.fenced:
            current = self.storage.peek("fencing/manager")
            if current is not None and int(current) > self.acting_epoch:
                self.fenced_appends += 1
                raise FencedError(
                    f"WAL append for migration {record.migration_id} rejected: "
                    f"manager epoch {self.acting_epoch} is stale "
                    f"(current {int(current)})"
                )
        record.step = step
        key = f"migration/{record.migration_id}"
        if step == "done":
            yield self.storage.delete(key)
        else:
            yield self.storage.write(key, record.as_payload(), size_bytes=128)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def in_flight(self) -> List[MigrationRecord]:
        """Migrations that have started but not finished."""
        return [r for r in self.records if r.finished_ms is None]
