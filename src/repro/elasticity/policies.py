"""Elasticity policies (§5.2): when and where contexts migrate.

The eManager periodically assembles a :class:`ClusterSnapshot` (server
utilization, context counts, recent latency) and asks its policy for
:class:`Action` objects.  The paper's built-in policies are implemented:

* :class:`ResourceUtilizationPolicy` — lower/upper bounds on CPU
  utilization with an activation threshold;
* :class:`ServerContentionPolicy` — a maximum number of contexts per
  server;
* :class:`SLAPolicy` — the §6.2 experiment's policy: scale out while the
  mean request latency exceeds the SLA, scale in when comfortably under.

Policies can be constrained (the Tuba-style constraints of §5.2) with
predicates vetoing individual migrations or capping total servers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

__all__ = [
    "ServerReport",
    "ClusterSnapshot",
    "Action",
    "MigrateAction",
    "ScaleOutAction",
    "ScaleInAction",
    "ElasticityPolicy",
    "ResourceUtilizationPolicy",
    "ServerContentionPolicy",
    "SLAPolicy",
]


@dataclass(frozen=True)
class ServerReport:
    """One server's periodic resource report (§5.2: CPU, memory, IO)."""

    name: str
    cpu_utilization: float
    context_count: int
    alive: bool


@dataclass(frozen=True)
class ClusterSnapshot:
    """Everything a policy may base decisions on."""

    now_ms: float
    servers: Sequence[ServerReport]
    mean_latency_ms: float
    p99_latency_ms: float
    completed_in_window: int
    contexts_by_server: Dict[str, List[str]]

    def alive_reports(self) -> List[ServerReport]:
        """Reports of booted servers only."""
        return [r for r in self.servers if r.alive]


class Action:
    """Base class of policy decisions."""


@dataclass(frozen=True)
class MigrateAction(Action):
    """Move one context to a destination server."""

    cid: str
    dst_server: str


@dataclass(frozen=True)
class ScaleOutAction(Action):
    """Provision ``count`` new servers of the deployment's type."""

    count: int = 1


@dataclass(frozen=True)
class ScaleInAction(Action):
    """Drain and decommission one server."""

    server: str


class ElasticityPolicy:
    """Base policy: subclasses implement :meth:`decide`.

    ``constraints`` are predicates over proposed MigrateActions; a
    migration vetoed by any constraint is dropped (§5.2's Tuba-style
    constraint mechanism).  ``max_servers``/``min_servers`` bound
    scaling decisions.
    """

    def __init__(
        self,
        constraints: Sequence[Callable[[MigrateAction], bool]] = (),
        min_servers: int = 1,
        max_servers: int = 64,
    ) -> None:
        self.constraints = list(constraints)
        self.min_servers = min_servers
        self.max_servers = max_servers

    def decide(self, snapshot: ClusterSnapshot) -> List[Action]:
        """Return the actions to perform for this reporting period."""
        raise NotImplementedError

    def _admit(self, actions: List[Action], snapshot: ClusterSnapshot) -> List[Action]:
        """Apply constraints and scaling bounds to proposed actions."""
        admitted: List[Action] = []
        alive = len(snapshot.alive_reports())
        for action in actions:
            if isinstance(action, MigrateAction):
                if all(constraint(action) for constraint in self.constraints):
                    admitted.append(action)
            elif isinstance(action, ScaleOutAction):
                allowed = max(0, self.max_servers - alive)
                if allowed > 0:
                    admitted.append(ScaleOutAction(min(action.count, allowed)))
                    alive += min(action.count, allowed)
            elif isinstance(action, ScaleInAction):
                if alive > self.min_servers:
                    admitted.append(action)
                    alive -= 1
        return admitted

    # Helpers shared by concrete policies -------------------------------
    @staticmethod
    def _spread(
        snapshot: ClusterSnapshot, sources: List[ServerReport], targets: List[ServerReport]
    ) -> List[Action]:
        """Propose moving one context from each source to a target."""
        actions: List[Action] = []
        if not targets:
            return actions
        target_cycle = sorted(targets, key=lambda r: (r.context_count, r.name))
        for index, src in enumerate(sources):
            contexts = snapshot.contexts_by_server.get(src.name, [])
            if not contexts:
                continue
            dst = target_cycle[index % len(target_cycle)]
            if dst.name == src.name:
                continue
            actions.append(MigrateAction(cid=contexts[0], dst_server=dst.name))
        return actions


class ResourceUtilizationPolicy(ElasticityPolicy):
    """Keep per-server CPU utilization within [lower, upper]."""

    def __init__(
        self,
        lower: float = 0.2,
        upper: float = 0.8,
        threshold: float = 0.05,
        **kwargs: object,
    ) -> None:
        super().__init__(**kwargs)
        if not 0 <= lower < upper <= 1:
            raise ValueError("require 0 <= lower < upper <= 1")
        self.lower = lower
        self.upper = upper
        self.threshold = threshold

    def decide(self, snapshot: ClusterSnapshot) -> List[Action]:
        alive = snapshot.alive_reports()
        hot = [r for r in alive if r.cpu_utilization > self.upper + self.threshold]
        cold = [r for r in alive if r.cpu_utilization < self.lower]
        actions: List[Action] = []
        if hot and cold:
            actions.extend(self._spread(snapshot, hot, cold))
        elif hot:
            actions.append(ScaleOutAction(count=len(hot)))
        return self._admit(actions, snapshot)


class ServerContentionPolicy(ElasticityPolicy):
    """Cap the number of contexts hosted per server."""

    def __init__(self, max_contexts_per_server: int = 64, **kwargs: object) -> None:
        super().__init__(**kwargs)
        if max_contexts_per_server < 1:
            raise ValueError("max_contexts_per_server must be >= 1")
        self.max_contexts = max_contexts_per_server

    def decide(self, snapshot: ClusterSnapshot) -> List[Action]:
        alive = snapshot.alive_reports()
        over = [r for r in alive if r.context_count > self.max_contexts]
        under = [r for r in alive if r.context_count < self.max_contexts]
        actions: List[Action] = []
        if over and under:
            actions.extend(self._spread(snapshot, over, under))
        elif over:
            actions.append(ScaleOutAction(count=1))
        return self._admit(actions, snapshot)


class SLAPolicy(ElasticityPolicy):
    """Scale out while latency violates the SLA; scale in when idle.

    The §6.2 experiment: SLA of 10 ms on client requests; scale-out adds
    servers and rebalances the hottest servers' contexts onto them;
    scale-in removes the emptiest server when latency is comfortably
    below the SLA (hysteresis factor).
    """

    def __init__(
        self,
        sla_ms: float = 10.0,
        scale_out_step: int = 2,
        scale_in_fraction: float = 0.4,
        headroom: float = 0.6,
        **kwargs: object,
    ) -> None:
        super().__init__(**kwargs)
        self.sla_ms = sla_ms
        self.scale_out_step = scale_out_step
        self.scale_in_fraction = scale_in_fraction
        #: Scale out when latency exceeds ``headroom * sla`` — acting at
        #: the SLA itself would always lag the ramp by a boot time.
        self.headroom = headroom

    def decide(self, snapshot: ClusterSnapshot) -> List[Action]:
        actions: List[Action] = []
        alive = snapshot.alive_reports()
        if snapshot.completed_in_window == 0:
            return []
        if snapshot.mean_latency_ms > self.sla_ms * self.headroom:
            actions.append(ScaleOutAction(count=self.scale_out_step))
            # Rebalance immediately toward the emptiest alive servers.
            loaded = sorted(alive, key=lambda r: -r.context_count)
            light = sorted(alive, key=lambda r: r.context_count)
            hot = [r for r in loaded if r.context_count > 1][: self.scale_out_step]
            cold = [r for r in light if r.context_count == 0] or light[:1]
            actions.extend(self._spread(snapshot, hot, cold))
        elif snapshot.mean_latency_ms < self.sla_ms * self.scale_in_fraction:
            empty_first = sorted(alive, key=lambda r: (r.context_count, r.name))
            if empty_first and len(alive) > self.min_servers:
                victim = empty_first[0]
                actions.append(ScaleInAction(server=victim.name))
        return self._admit(actions, snapshot)
