"""Simulated cloud storage (the paper's configurable S3/ZooKeeper role).

The eManager is stateless: the context mapping, the ownership network
snapshot, migration write-ahead records and context snapshots all live
here (§5.1, §5.3).  The model charges a per-operation latency plus a
size-dependent transfer time, and keeps everything durably in plain
dicts so tests (and eManager crash-recovery) can inspect state.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..sim.kernel import Signal, Simulator

__all__ = ["CloudStorage"]


class CloudStorage:
    """A durable, highly available key-value store with simulated latency."""

    def __init__(
        self,
        sim: Simulator,
        read_latency_ms: float = 0.8,
        write_latency_ms: float = 1.6,
        gbps: float = 1.0,
    ) -> None:
        self.sim = sim
        self.read_latency_ms = read_latency_ms
        self.write_latency_ms = write_latency_ms
        self.gbps = gbps
        self._data: Dict[str, Any] = {}
        # Size (as charged at write time) of each durable key, so reads
        # can be priced by what is actually stored (see :meth:`read`).
        self._sizes: Dict[str, int] = {}
        self.reads = 0
        self.writes = 0
        self.bytes_written = 0
        self.bytes_read = 0
        # Bytes written per top-level key namespace ("checkpoint",
        # "migration", "mapping", ...): the storage-cost breakdown the
        # availability experiments report (full vs delta checkpoints).
        self.bytes_written_by_prefix: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Asynchronous (simulated-latency) API
    # ------------------------------------------------------------------
    def write(self, key: str, value: Any, size_bytes: int = 256) -> Signal:
        """Durably store ``value``; the signal fires once persisted.

        The value is applied at completion time (not at call time), so a
        reader racing the write observes the old value — like S3.
        """
        signal = self.sim.signal(name=f"storage-write:{key}")
        delay = self.write_latency_ms + self._transfer_ms(size_bytes)

        def apply() -> None:
            self._data[key] = value
            self._sizes[key] = size_bytes
            self.writes += 1
            self.bytes_written += size_bytes
            prefix = key.split("/", 1)[0]
            self.bytes_written_by_prefix[prefix] = (
                self.bytes_written_by_prefix.get(prefix, 0) + size_bytes
            )
            signal.succeed(None)

        self.sim.schedule(delay, apply)
        return signal

    def read(self, key: str, size_bytes: Optional[int] = 256) -> Signal:
        """Fetch ``key``; the signal fires with the value (or None).

        ``size_bytes=None`` prices the transfer by the size the key was
        last written with (what a real store would actually ship) —
        callers that cannot know a bundle's size up front, like the
        delta-chain recovery reads, use this.
        """
        if size_bytes is None:
            size_bytes = self._sizes.get(key, 64)
        signal = self.sim.signal(name=f"storage-read:{key}")
        delay = self.read_latency_ms + self._transfer_ms(size_bytes)

        def finish() -> None:
            self.reads += 1
            self.bytes_read += size_bytes
            signal.succeed(self._data.get(key))

        self.sim.schedule(delay, finish)
        return signal

    def delete(self, key: str) -> Signal:
        """Remove ``key``; the signal fires once applied."""
        signal = self.sim.signal(name=f"storage-delete:{key}")

        def apply() -> None:
            self._data.pop(key, None)
            self._sizes.pop(key, None)
            self.writes += 1
            signal.succeed(None)

        self.sim.schedule(self.write_latency_ms, apply)
        return signal

    def bytes_written_for(self, prefix: str) -> int:
        """Total bytes written under a top-level key namespace."""
        return self.bytes_written_by_prefix.get(prefix.rstrip("/"), 0)

    def _transfer_ms(self, size_bytes: int) -> float:
        if self.gbps <= 0:
            return 0.0
        return (size_bytes * 8) / (self.gbps * 1e6)

    # ------------------------------------------------------------------
    # Synchronous inspection (tests, recovery bootstrap)
    # ------------------------------------------------------------------
    def peek(self, key: str) -> Any:
        """Current durable value without simulated latency (tests only)."""
        return self._data.get(key)

    def keys_with_prefix(self, prefix: str) -> List[str]:
        """All durable keys starting with ``prefix`` (tests/recovery)."""
        return sorted(k for k in self._data if k.startswith(prefix))
