"""Consistent snapshots for fault tolerance (§5.3).

A snapshot request for a context dispatches a special read-only event
that captures the state of the context *and all its descendants* as of a
single point in the serial order, then writes the bundle to cloud
storage.  A context whose ``state_snapshot`` returns ``None`` is skipped
(the paper's checkpoint-skipping override).

:func:`fuzzy_snapshot` is the uncoordinated counterpart — per-context
state capture with no cross-context locking, modelling per-grain
persistence (Orleans): the bundle may mix states from different points
of the serial order.  Runtimes whose locking has no global acquisition
order (Orleans' per-call turn locks) must use it: a subtree-locking
snapshot can deadlock against their events.

:class:`DeltaCheckpointer` is the *incremental* mode: instead of
re-uploading the whole subtree every interval, it stores a **base
bundle plus a bounded chain of delta bundles**, each recording the
per-context ``_aeon_version`` it captured.  A context whose version has
not moved since the previous bundle is skipped (its bytes are never
re-shipped); an interval in which *nothing* moved writes no bundle at
all.  After ``max_chain`` deltas the checkpointer re-bases (one full
upload, resetting the chain), which bounds both recovery read fan-out
and storage growth.  :func:`read_checkpoint` reassembles base + chain
(or passes a legacy full bundle through) for the recovery path.
"""

from __future__ import annotations

import copy
from typing import Dict, Generator, List, Optional, Tuple

from ..core.context import ContextRef
from ..core.events import AccessMode, CallSpec, Event
from ..core.runtime import RuntimeBase
from ..sim.kernel import Signal
from .storage import CloudStorage

__all__ = [
    "snapshot_context",
    "fuzzy_snapshot",
    "DeltaCheckpointer",
    "read_checkpoint",
]

_SNAPSHOT_COUNTER = [0]

#: Hard cap on delta-chain reads during reassembly (a chain can never
#: legitimately grow past the checkpointer's ``max_chain``; this guards
#: recovery against a corrupt key space).
_MAX_CHAIN_READS = 64


def _collect_states(runtime: RuntimeBase, ordered: List[str]) -> tuple:
    """``(states, total_bytes)`` for the given member contexts.

    States are deep-copied: ``state_snapshot`` returns field *values* by
    reference, and a durable bundle aliasing a live dict/list would be
    mutated in place by later events — turning a rollback-to-checkpoint
    into a silent no-op for any non-scalar field.
    """
    states: Dict[str, dict] = {}
    total_bytes = 0
    for cid in ordered:
        instance = runtime.instances.get(cid)
        if instance is None:
            continue
        state = instance.state_snapshot()
        if state is None:
            continue  # checkpoint-skipping override
        states[cid] = copy.deepcopy(state)
        total_bytes += int(getattr(instance, "size_bytes", 1024))
    return states, total_bytes


def subtree_members(runtime: RuntimeBase, root_cid: str) -> List[str]:
    """The non-virtual contexts of ``root_cid``'s subtree, sorted."""
    ownership = runtime.ownership
    return sorted(
        cid for cid in ownership.descendants(root_cid) if not ownership.is_virtual(cid)
    )


def fuzzy_snapshot(
    runtime: RuntimeBase,
    storage: CloudStorage,
    root_cid: str,
    key: Optional[str] = None,
) -> Signal:
    """Checkpoint a subtree with per-context capture and no locks.

    States are read at the call instant (each simulator callback is
    atomic, so individual states are never torn) but without any
    cross-context coordination — the weaker per-grain-persistence
    guarantee.  Returns the storage write's completion signal.
    """
    _SNAPSHOT_COUNTER[0] += 1
    storage_key = key or f"snapshot/{root_cid}/{_SNAPSHOT_COUNTER[0]}"
    states, total_bytes = _collect_states(runtime, subtree_members(runtime, root_cid))
    return storage.write(storage_key, states, size_bytes=max(total_bytes, 64))


def _snapshot_event(runtime: RuntimeBase, root_cid: str) -> tuple:
    """``(snap_id, synthetic read-only Event)`` for a subtree capture."""
    _SNAPSHOT_COUNTER[0] += 1
    snap_id = _SNAPSHOT_COUNTER[0]
    event = Event(
        eid=-1_000_000 - snap_id,  # synthetic id space, below migrations
        spec=CallSpec(root_cid, "__snapshot__"),
        mode=AccessMode.RO,
        client="~snapshot",
        submitted_ms=runtime.sim.now,
        tag="snapshot",
    )
    return snap_id, event


def snapshot_context(
    runtime: RuntimeBase,
    storage: CloudStorage,
    target: ContextRef,
    key: Optional[str] = None,
) -> Signal:
    """Take a consistent snapshot of ``target`` and its descendants.

    Returns a signal that fires with the storage key once the snapshot
    is durable.  The snapshot event takes read locks on the whole
    subtree (top-down, in deterministic order), so it is consistent with
    the strict-serializable event order; concurrent read-only events
    still proceed.
    """
    snap_id, event = _snapshot_event(runtime, target.cid)
    storage_key = key or f"snapshot/{target.cid}/{snap_id}"
    done = runtime.sim.signal(name=f"snapshot:{storage_key}")

    def persist(ordered: List[str]):
        states, total_bytes = _collect_states(runtime, ordered)
        write = storage.write(storage_key, states, size_bytes=max(total_bytes, 64))
        return write, storage_key

    runtime.sim.process(
        _locked_capture(runtime, event, target.cid, persist, done),
        name=f"snapshot-{snap_id}",
    )
    return done


def _locked_capture(
    runtime: RuntimeBase,
    event: Event,
    root_cid: str,
    persist,
    done: Signal,
) -> Generator:
    """Run ``persist(ordered_members)`` under subtree read locks.

    The subtree is read-locked top-down (ancestors before descendants)
    so acquisition order is consistent with every other event.
    ``persist`` returns ``(write_signal_or_None, done_value)``; the
    write (if any) is awaited while the locks are held, then ``done``
    succeeds with the value.  Shared by :func:`snapshot_context` and
    :class:`DeltaCheckpointer`'s consistent mode, so the locking
    discipline lives in exactly one place.
    """
    ownership = runtime.ownership
    members = subtree_members(runtime, root_cid)
    ordered = sorted(members, key=lambda cid: (len(ownership.ancestors(cid)), cid))
    locks = []
    try:
        for cid in ordered:
            lock = runtime.lock_of(cid)
            grant, _owned = lock.request(event)
            yield grant
            locks.append(lock)
        write, value = persist(ordered)
        if write is not None:
            yield write
        done.succeed(value)
    except Exception as exc:  # noqa: BLE001 - surfaced to the caller
        done.fail(exc)
    finally:
        for lock in reversed(locks):
            lock.release(event)


# ----------------------------------------------------------------------
# Incremental (base + delta chain) checkpoints
# ----------------------------------------------------------------------
class DeltaCheckpointer:
    """Incremental checkpoints of one subtree: a base plus delta chain.

    Storage layout (for root key ``K`` — the eManager's rolling
    ``checkpoint/{root}``):

    * ``K`` — the base bundle: every member's state;
    * ``K/delta/1`` .. ``K/delta/n`` — the chain: only members whose
      ``_aeon_version`` moved since the previous bundle.

    Every bundle is ``{"kind", "seq", "states", "versions"}``.  ``seq``
    increases monotonically across bundles; reassembly applies a delta
    only when its seq is newer than what it has already absorbed, which
    makes stale chain keys left over from before a re-base harmless (no
    deletes needed, the key space stays bounded by ``max_chain``).

    ``consistent=True`` captures under subtree read locks (the same
    guarantee as :func:`snapshot_context`); ``consistent=False`` is the
    per-grain lock-free capture of :func:`fuzzy_snapshot` — required for
    Orleans-style runtimes.
    """

    def __init__(
        self,
        runtime: RuntimeBase,
        storage: CloudStorage,
        root_cid: str,
        key: str,
        consistent: bool = True,
        max_chain: int = 6,
    ) -> None:
        if max_chain < 1:
            raise ValueError("max_chain must be at least 1")
        self.runtime = runtime
        self.storage = storage
        self.root = root_cid
        self.key = key
        self.consistent = consistent
        self.max_chain = max_chain
        #: Per-context ``_aeon_version`` as of the last written bundle.
        self._last_versions: Dict[str, int] = {}
        #: Per-context ownership signature (sorted direct children) as of
        #: the last bundle that shipped the context, plus the ownership
        #: epoch last examined: a wiring change (ref/refset mutation)
        #: whose data version held still is shipped as a *delta* — the
        #: snapshot states embed ``__refs__``/``__refsets__``, so a
        #: restore rebuilds the subtree's wiring from the chain without
        #: needing a full re-base.
        self._struct_sigs: Dict[str, Tuple[str, ...]] = {}
        self._ownership_epoch = -1
        #: Versions at which a context's ``state_snapshot`` returned
        #: None (the checkpoint-skipping override): while the version
        #: holds still, the decision holds too and the call is skipped.
        self._none_versions: Dict[str, int] = {}
        self._chain = 0
        # A fresh checkpointer over a storage that already holds bundles
        # (an eManager successor after recover()) must not reuse seq
        # numbers: a new base with a *lower* seq than surviving stale
        # deltas would wrongly revive them at reassembly time.  Seed the
        # counter past everything durable under our key.
        self._seq = 0
        for existing_key in storage.keys_with_prefix(key):
            payload = storage.peek(existing_key)
            if isinstance(payload, dict) and isinstance(payload.get("seq"), int):
                self._seq = max(self._seq, payload["seq"])
        self.bases_written = 0
        self.deltas_written = 0
        self.skipped = 0
        #: Checkpoint payload bytes actually shipped to storage.
        self.bytes_written = 0

    def checkpoint(self) -> Signal:
        """Write the next bundle (or skip); returns a completion signal.

        The signal succeeds with ``"base"``, ``"delta"`` or ``"skip"``.
        """
        sim = self.runtime.sim
        done = sim.signal(name=f"checkpoint:{self.key}")
        if self.consistent:
            snap_id, event = _snapshot_event(self.runtime, self.root)
            sim.process(
                _locked_capture(
                    self.runtime, event, self.root, self._capture_and_write, done
                ),
                name=f"checkpoint-{snap_id}",
            )
        else:
            try:
                write, kind = self._capture_and_write(
                    subtree_members(self.runtime, self.root)
                )
            except Exception as exc:  # noqa: BLE001 - surfaced to the caller
                done.fail(exc)
                return done
            if write is None:
                done.succeed("skip")
            else:
                write.add_callback(lambda _sig, k=kind: done.succeed(k))
        return done

    def _capture_and_write(
        self, members: List[str]
    ) -> Tuple[Optional[Signal], str]:
        """Capture ``members``, write base/delta/nothing, update tracking.

        Returns ``(write_signal_or_None, "base" | "delta" | "skip")``.
        The version bookkeeping is updated synchronously at capture time
        (the simulated write latency only delays durability, never what
        was captured).  ``state_snapshot`` is only called for members
        whose version moved (plus everyone on a re-base): an unchanged
        version means an unchanged state and an unchanged skip decision,
        so the common all-quiet interval costs one version read per
        member, not one state-dict build.
        """
        runtime = self.runtime
        last = self._last_versions
        none_seen = self._none_versions
        versions: Dict[str, int] = {}
        states: Dict[str, dict] = {}
        sizes: Dict[str, int] = {}
        changed: List[str] = []
        for cid in members:
            instance = runtime.instances.get(cid)
            if instance is None:
                continue
            version = instance._aeon_version
            if last.get(cid) == version:
                versions[cid] = version  # unchanged since the last bundle
                sizes[cid] = int(getattr(instance, "size_bytes", 1024))
                continue
            if none_seen.get(cid) == version:
                continue  # unchanged and known checkpoint-skipped
            state = instance.state_snapshot()
            if state is None:
                none_seen[cid] = version  # checkpoint-skipping override
                continue
            none_seen.pop(cid, None)
            versions[cid] = version
            states[cid] = state
            sizes[cid] = int(getattr(instance, "size_bytes", 1024))
            changed.append(cid)
        if not versions and not last:
            self.skipped += 1  # nothing checkpointable yet
            return None, "skip"
        rebase = not last or self._chain >= self.max_chain
        ownership = runtime.ownership
        if not rebase and self._ownership_epoch != ownership.epoch:
            # The ownership network moved since the last bundle: ship any
            # member whose direct wiring changed even though its data
            # version held still (a leaf gained/lost elsewhere bumps the
            # global epoch without touching this subtree — the signature
            # check keeps those bundles as cheap skips).
            for cid in sorted(versions):
                if cid in states or cid not in ownership:
                    continue
                signature = tuple(sorted(ownership.children(cid)))
                if self._struct_sigs.get(cid) == signature:
                    continue
                instance = runtime.instances.get(cid)
                state = instance.state_snapshot() if instance is not None else None
                if state is None:
                    continue
                states[cid] = state
                changed.append(cid)
        self._ownership_epoch = ownership.epoch
        if not rebase and not changed:
            self.skipped += 1
            return None, "skip"
        if rebase:
            # A base ships every member, including unchanged ones whose
            # capture was skipped above: collect the stragglers now.
            for cid in versions:
                if cid in states:
                    continue
                instance = runtime.instances.get(cid)
                state = instance.state_snapshot() if instance is not None else None
                if state is None:  # vanished or flipped to skip mid-run
                    continue
                states[cid] = state
            versions = {cid: versions[cid] for cid in versions if cid in states}
            shipped = sorted(states)
            self._chain = 0
            key = self.key
            kind = "base"
            self.bases_written += 1
        else:
            shipped = changed
            self._chain += 1
            key = f"{self.key}/delta/{self._chain}"
            kind = "delta"
            self.deltas_written += 1
        for cid in shipped:
            if cid in ownership:
                self._struct_sigs[cid] = tuple(sorted(ownership.children(cid)))
        self._seq += 1
        bundle = {
            "kind": kind,
            "seq": self._seq,
            # Deep copies: the bundle must never alias live mutables
            # (see _collect_states).
            "states": {cid: copy.deepcopy(states[cid]) for cid in shipped},
            "versions": versions,
        }
        size_bytes = max(sum(sizes[cid] for cid in shipped), 64)
        self._last_versions = versions
        self.bytes_written += size_bytes
        return self.storage.write(key, bundle, size_bytes=size_bytes), kind


def read_checkpoint(
    storage: CloudStorage, key: str, base_size_bytes: Optional[int] = None
) -> Generator:
    """Read and reassemble the checkpoint stored under ``key``.

    A generator (``states = yield from read_checkpoint(...)``) issuing
    simulated-latency storage reads.  Handles all three layouts:

    * legacy full bundle (plain ``{cid: state}``) — returned as-is;
    * a base bundle — its states, pruned to its member set;
    * a base + delta chain — deltas overlaid in order, each applied only
      if newer (by seq) than what is already absorbed, final member set
      taken from the newest absorbed bundle.

    Returns ``None`` when nothing durable exists under ``key``.
    """
    base = yield storage.read(key, size_bytes=base_size_bytes)
    if base is None:
        return None
    if not (isinstance(base, dict) and base.get("kind") == "base"):
        return base  # legacy full bundle: {cid: state}
    states: Dict[str, dict] = dict(base["states"])
    members = set(base["versions"])
    seq = base["seq"]
    for index in range(1, _MAX_CHAIN_READS + 1):
        delta = yield storage.read(f"{key}/delta/{index}", size_bytes=None)
        if not (isinstance(delta, dict) and delta.get("kind") == "delta"):
            break
        if delta["seq"] <= seq:
            # Stale leftover from before the last re-base: the current
            # chain is contiguous from index 1, so nothing newer follows.
            break
        states.update(delta["states"])
        members = set(delta["versions"])
        seq = delta["seq"]
    return {cid: state for cid, state in states.items() if cid in members}
