"""Consistent snapshots for fault tolerance (§5.3).

A snapshot request for a context dispatches a special read-only event
that captures the state of the context *and all its descendants* as of a
single point in the serial order, then writes the bundle to cloud
storage.  A context whose ``state_snapshot`` returns ``None`` is skipped
(the paper's checkpoint-skipping override).

:func:`fuzzy_snapshot` is the uncoordinated counterpart — per-context
state capture with no cross-context locking, modelling per-grain
persistence (Orleans): the bundle may mix states from different points
of the serial order.  Runtimes whose locking has no global acquisition
order (Orleans' per-call turn locks) must use it: a subtree-locking
snapshot can deadlock against their events.
"""

from __future__ import annotations

import copy
from typing import Dict, Generator, List, Optional

from ..core.context import ContextRef
from ..core.events import AccessMode, CallSpec, Event
from ..core.runtime import RuntimeBase
from ..sim.kernel import Signal
from .storage import CloudStorage

__all__ = ["snapshot_context", "fuzzy_snapshot"]

_SNAPSHOT_COUNTER = [0]


def _collect_states(runtime: RuntimeBase, ordered: List[str]) -> tuple:
    """``(states, total_bytes)`` for the given member contexts.

    States are deep-copied: ``state_snapshot`` returns field *values* by
    reference, and a durable bundle aliasing a live dict/list would be
    mutated in place by later events — turning a rollback-to-checkpoint
    into a silent no-op for any non-scalar field.
    """
    states: Dict[str, dict] = {}
    total_bytes = 0
    for cid in ordered:
        instance = runtime.instances.get(cid)
        if instance is None:
            continue
        state = instance.state_snapshot()
        if state is None:
            continue  # checkpoint-skipping override
        states[cid] = copy.deepcopy(state)
        total_bytes += int(getattr(instance, "size_bytes", 1024))
    return states, total_bytes


def subtree_members(runtime: RuntimeBase, root_cid: str) -> List[str]:
    """The non-virtual contexts of ``root_cid``'s subtree, sorted."""
    ownership = runtime.ownership
    return sorted(
        cid for cid in ownership.descendants(root_cid) if not ownership.is_virtual(cid)
    )


def fuzzy_snapshot(
    runtime: RuntimeBase,
    storage: CloudStorage,
    root_cid: str,
    key: Optional[str] = None,
) -> Signal:
    """Checkpoint a subtree with per-context capture and no locks.

    States are read at the call instant (each simulator callback is
    atomic, so individual states are never torn) but without any
    cross-context coordination — the weaker per-grain-persistence
    guarantee.  Returns the storage write's completion signal.
    """
    _SNAPSHOT_COUNTER[0] += 1
    storage_key = key or f"snapshot/{root_cid}/{_SNAPSHOT_COUNTER[0]}"
    states, total_bytes = _collect_states(runtime, subtree_members(runtime, root_cid))
    return storage.write(storage_key, states, size_bytes=max(total_bytes, 64))


def snapshot_context(
    runtime: RuntimeBase,
    storage: CloudStorage,
    target: ContextRef,
    key: Optional[str] = None,
) -> Signal:
    """Take a consistent snapshot of ``target`` and its descendants.

    Returns a signal that fires with the storage key once the snapshot
    is durable.  The snapshot event takes read locks on the whole
    subtree (top-down, in deterministic order), so it is consistent with
    the strict-serializable event order; concurrent read-only events
    still proceed.
    """
    _SNAPSHOT_COUNTER[0] += 1
    snap_id = _SNAPSHOT_COUNTER[0]
    storage_key = key or f"snapshot/{target.cid}/{snap_id}"
    done = runtime.sim.signal(name=f"snapshot:{storage_key}")
    event = Event(
        eid=-1_000_000 - snap_id,  # synthetic id space, below migrations
        spec=CallSpec(target.cid, "__snapshot__"),
        mode=AccessMode.RO,
        client="~snapshot",
        submitted_ms=runtime.sim.now,
        tag="snapshot",
    )
    runtime.sim.process(
        _run_snapshot(runtime, storage, event, target.cid, storage_key, done),
        name=f"snapshot-{snap_id}",
    )
    return done


def _run_snapshot(
    runtime: RuntimeBase,
    storage: CloudStorage,
    event: Event,
    root_cid: str,
    storage_key: str,
    done: Signal,
) -> Generator:
    ownership = runtime.ownership
    members = subtree_members(runtime, root_cid)
    # Read-lock the subtree top-down (ancestors before descendants) so
    # acquisition order is consistent with every other event.
    ordered = sorted(members, key=lambda cid: (len(ownership.ancestors(cid)), cid))
    locks = []
    try:
        for cid in ordered:
            lock = runtime.lock_of(cid)
            grant, _owned = lock.request(event)
            yield grant
            locks.append(lock)
        states, total_bytes = _collect_states(runtime, ordered)
        yield storage.write(storage_key, states, size_bytes=max(total_bytes, 64))
        done.succeed(storage_key)
    except Exception as exc:  # noqa: BLE001 - surfaced to the caller
        done.fail(exc)
    finally:
        for lock in reversed(locks):
            lock.release(event)
