"""Waitable queues and resources for simulated processes.

Three primitives cover everything the runtimes need:

* :class:`Store` — an unbounded FIFO of items; ``get()`` returns a signal
  that fires when an item is available.  Context mailboxes, event queues
  and grain mailboxes are all Stores.
* :class:`Resource` — a counted resource with FIFO admission; server CPU
  cores are Resources.
* :class:`Notifier` — a broadcast condition variable; the locking layer
  uses it to re-evaluate admission predicates when lock state changes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Generator, List, Optional

from .kernel import Signal, SimulationError, Simulator

__all__ = ["Store", "Resource", "Notifier"]


class Store:
    """Unbounded FIFO store of items with waitable ``get``.

    Puts never block.  Gets are served strictly in request order, which
    keeps per-channel message delivery FIFO — a property the AEON
    protocol relies on for its dominator ordering.
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.items: Deque[Any] = deque()
        self._getters: Deque[Signal] = deque()
        # Precomputed so the hot get() path never formats a name.
        self._get_name = f"get:{name}"

    def put(self, item: Any) -> None:
        """Append ``item``; wakes the oldest waiting getter, if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self.items.append(item)

    def get(self) -> Signal:
        """Return a signal yielding the next item (FIFO).

        When an item is already available the signal comes back
        pre-triggered — the process trampoline consumes it without a
        scheduler hop.
        """
        signal = Signal(self.sim, self._get_name)
        if self.items:
            signal.succeed(self.items.popleft())
        else:
            self._getters.append(signal)
        return signal

    def __len__(self) -> int:
        return len(self.items)

    @property
    def waiting_getters(self) -> int:
        """Number of get() calls currently blocked."""
        return len(self._getters)


class Resource:
    """A counted resource with FIFO admission (e.g. CPU cores).

    Usage from a process generator::

        grant = resource.request()
        yield grant
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release(grant)
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        # Grant signals (request/use) and bare callbacks (enqueue_waiter)
        # share one FIFO; release_unit dispatches on the entry type.
        self._waiters: Deque[Any] = deque()
        # Accumulated busy core-milliseconds, for utilization accounting.
        self._busy_ms = 0.0
        self._last_change = 0.0
        # Precomputed so the hot request() path never formats a name.
        self._grant_name = f"grant:{name}"

    def request(self) -> Signal:
        """Return a signal that fires once a unit is granted."""
        grant = Signal(self.sim, self._grant_name)
        if self.in_use < self.capacity:
            self._account()
            self.in_use += 1
            grant.succeed(grant)
        else:
            self._waiters.append(grant)
        return grant

    def acquire_now(self) -> bool:
        """Take a unit synchronously if one is free (no grant signal).

        Callers that hold the unit across a plain timer yield pair this
        with :meth:`release_unit` — the open-coded equivalent of
        :meth:`use` for hot paths (the kernel's CpuCharge handling).
        Returns False under contention.
        """
        if self.in_use < self.capacity:
            now = self.sim.now
            self._busy_ms += self.in_use * (now - self._last_change)
            self._last_change = now
            self.in_use += 1
            return True
        return False

    def enqueue_waiter(self, callback: Callable[[], None]) -> None:
        """Queue ``callback`` to run (via ``call_soon``) when a unit frees.

        The signal-free counterpart of :meth:`request` used by the
        kernel's CpuCharge handling: the release schedules the callback
        at exactly the point the grant signal's completion would have.
        """
        self._waiters.append(callback)

    def release_unit(self) -> None:
        """Release one unit (the single release implementation)."""
        now = self.sim.now
        self._busy_ms += self.in_use * (now - self._last_change)
        self._last_change = now
        waiters = self._waiters
        if waiters:
            waiter = waiters.popleft()
            if callable(waiter):
                self.sim.call_soon(waiter)
            else:
                waiter.succeed(waiter)
        else:
            self.in_use -= 1
            if self.in_use < 0:
                raise SimulationError(f"resource {self.name!r} over-released")

    def grant_hop_needed(self) -> bool:
        """After :meth:`acquire_now`: whether a ``yield None`` hop is due.

        When the simulator is not idle at the current timestamp the
        historical grant signal would have queued one resume behind the
        pending callbacks; the caller must replicate that with a bare
        cooperative hop to keep the deterministic order.  When idle, the
        elided hop is accounted as one scheduler step (max_steps
        parity).  This runs inside a generator frame, so it must not
        raise the budget error itself (Process._step would convert it
        into a process failure); an overrun is detected at the next
        dispatch-loop boundary instead.
        """
        sim = self.sim
        head = sim._timers.head
        if sim._immediate or (head is not None and head[0] <= sim.now):
            return True
        if sim._max_steps is not None:
            sim._step_count += 1
        return False

    def release(self, grant: Signal) -> None:
        """Release a previously granted unit."""
        if not grant.triggered:
            raise SimulationError("releasing a grant that was never acquired")
        self.release_unit()

    def use(self, service_ms: float) -> Generator:
        """Generator helper: acquire, hold for ``service_ms``, release.

        Uncontended fast path: when a unit is free *and* the simulator is
        idle at the current timestamp, the grant is taken synchronously
        (no grant signal, no scheduler hop) and the hold degenerates to a
        single timeout.  The idle check keeps the event order identical
        to the slow path: with other same-time callbacks pending, the
        grant yield must queue behind them, so we fall through.
        """
        sim = self.sim
        service_ms = float(service_ms)
        if self.acquire_now():
            if self.grant_hop_needed():
                # Not idle at this timestamp: the triggered grant would
                # have queued one resume behind the pending callbacks —
                # a bare cooperative hop is the identical schedule.
                yield None
        else:
            grant = Signal(sim, self._grant_name)
            self._waiters.append(grant)
            yield grant
        try:
            yield service_ms
        finally:
            self.release_unit()

    def _account(self) -> None:
        now = self.sim.now
        self._busy_ms += self.in_use * (now - self._last_change)
        self._last_change = now

    def busy_core_ms(self) -> float:
        """Total accumulated busy core-milliseconds since t=0."""
        self._account()
        return self._busy_ms

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a unit."""
        return len(self._waiters)


class Notifier:
    """Broadcast condition variable.

    ``wait()`` returns a signal completed by the next ``notify_all()``.
    ``wait_for(predicate)`` spawns a helper loop that re-checks the
    predicate after every notification and completes once it holds.
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._waiters: List[Signal] = []

    def wait(self) -> Signal:
        """Signal completed by the next :meth:`notify_all`."""
        signal = self.sim.signal(name=f"wait:{self.name}")
        self._waiters.append(signal)
        return signal

    def notify_all(self) -> None:
        """Wake every currently waiting signal."""
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            # A waiter may have been completed elsewhere (e.g. a
            # wait_for that resolved out of band); skip, don't re-fire.
            if not waiter.triggered:
                waiter.succeed(None)

    def wait_for(self, predicate: Callable[[], bool]) -> Signal:
        """Signal that completes once ``predicate()`` is true.

        The predicate is evaluated immediately and then after every
        notification.  When the wait resolves (including a ``done``
        completed out of band), the helper's pending ``wait()`` signal
        is pruned from the waiter list — otherwise abandoned waiters
        accumulate until the next ``notify_all``, which under long
        elasticity runs may never come (an unbounded leak).
        """
        done = self.sim.signal(name=f"wait_for:{self.name}")
        pending: List[Optional[Signal]] = [None]

        def prune() -> None:
            stale = pending[0]
            pending[0] = None
            if stale is not None and not stale.triggered:
                try:
                    self._waiters.remove(stale)
                except ValueError:
                    pass

        def check(_signal: Optional[Signal] = None) -> None:
            pending[0] = None
            if done.triggered:
                return
            if predicate():
                done.succeed(None)
            else:
                waiter = self.wait()
                pending[0] = waiter
                waiter.add_callback(check)

        done.add_callback(lambda _s: prune())
        check()
        return done
