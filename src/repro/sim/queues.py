"""Waitable queues and resources for simulated processes.

Three primitives cover everything the runtimes need:

* :class:`Store` — an unbounded FIFO of items; ``get()`` returns a signal
  that fires when an item is available.  Context mailboxes, event queues
  and grain mailboxes are all Stores.
* :class:`Resource` — a counted resource with FIFO admission; server CPU
  cores are Resources.
* :class:`Notifier` — a broadcast condition variable; the locking layer
  uses it to re-evaluate admission predicates when lock state changes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Generator, List, Optional

from .kernel import Signal, SimulationError, Simulator

__all__ = ["Store", "Resource", "Notifier"]


class Store:
    """Unbounded FIFO store of items with waitable ``get``.

    Puts never block.  Gets are served strictly in request order, which
    keeps per-channel message delivery FIFO — a property the AEON
    protocol relies on for its dominator ordering.
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.items: Deque[Any] = deque()
        self._getters: Deque[Signal] = deque()

    def put(self, item: Any) -> None:
        """Append ``item``; wakes the oldest waiting getter, if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self.items.append(item)

    def get(self) -> Signal:
        """Return a signal yielding the next item (FIFO)."""
        signal = self.sim.signal(name=f"get:{self.name}")
        if self.items:
            signal.succeed(self.items.popleft())
        else:
            self._getters.append(signal)
        return signal

    def __len__(self) -> int:
        return len(self.items)

    @property
    def waiting_getters(self) -> int:
        """Number of get() calls currently blocked."""
        return len(self._getters)


class Resource:
    """A counted resource with FIFO admission (e.g. CPU cores).

    Usage from a process generator::

        grant = resource.request()
        yield grant
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release(grant)
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: Deque[Signal] = deque()
        # Accumulated busy core-milliseconds, for utilization accounting.
        self._busy_ms = 0.0
        self._last_change = 0.0

    def request(self) -> Signal:
        """Return a signal that fires once a unit is granted."""
        grant = self.sim.signal(name=f"grant:{self.name}")
        if self.in_use < self.capacity:
            self._account()
            self.in_use += 1
            grant.succeed(grant)
        else:
            self._waiters.append(grant)
        return grant

    def release(self, grant: Signal) -> None:
        """Release a previously granted unit."""
        if not grant.triggered:
            raise SimulationError("releasing a grant that was never acquired")
        self._account()
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed(waiter)
        else:
            self.in_use -= 1
            if self.in_use < 0:
                raise SimulationError(f"resource {self.name!r} over-released")

    def use(self, service_ms: float) -> Generator:
        """Generator helper: acquire, hold for ``service_ms``, release."""
        grant = self.request()
        yield grant
        try:
            yield self.sim.timeout(service_ms)
        finally:
            self.release(grant)

    def _account(self) -> None:
        now = self.sim.now
        self._busy_ms += self.in_use * (now - self._last_change)
        self._last_change = now

    def busy_core_ms(self) -> float:
        """Total accumulated busy core-milliseconds since t=0."""
        self._account()
        return self._busy_ms

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a unit."""
        return len(self._waiters)


class Notifier:
    """Broadcast condition variable.

    ``wait()`` returns a signal completed by the next ``notify_all()``.
    ``wait_for(predicate)`` spawns a helper loop that re-checks the
    predicate after every notification and completes once it holds.
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._waiters: List[Signal] = []

    def wait(self) -> Signal:
        """Signal completed by the next :meth:`notify_all`."""
        signal = self.sim.signal(name=f"wait:{self.name}")
        self._waiters.append(signal)
        return signal

    def notify_all(self) -> None:
        """Wake every currently waiting signal."""
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter.succeed(None)

    def wait_for(self, predicate: Callable[[], bool]) -> Signal:
        """Signal that completes once ``predicate()`` is true.

        The predicate is evaluated immediately and then after every
        notification.
        """
        done = self.sim.signal(name=f"wait_for:{self.name}")

        def check(_signal: Optional[Signal] = None) -> None:
            if done.triggered:
                return
            if predicate():
                done.succeed(None)
            else:
                self.wait().add_callback(check)

        check()
        return done
