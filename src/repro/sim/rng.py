"""Named deterministic random-number streams.

Every stochastic element of an experiment (client think times, workload
mix, payload sizes, ...) draws from its own named stream so that adding a
new consumer of randomness never perturbs existing ones.  This is what
makes every figure in EXPERIMENTS.md exactly reproducible.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry"]


class RngRegistry:
    """A factory of independent, seeded :class:`random.Random` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically.

        The stream seed is derived from the registry seed and the name via
        SHA-256, so streams are independent of creation order.
        """
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Derive a child registry (for nested experiment components)."""
        digest = hashlib.sha256(f"{self.seed}/fork:{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
