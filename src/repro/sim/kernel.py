"""Discrete-event simulation kernel.

This module is the substrate on which the whole reproduction runs.  The
paper evaluated AEON on EC2 with a C++ runtime; a Python thread-based
reproduction would measure GIL contention rather than protocol behaviour,
so instead every runtime (AEON, EventWave, Orleans) executes on this
deterministic simulator.  The kernel is deliberately small and SimPy-like:

* :class:`Simulator` owns the virtual clock and the event heap.
* :class:`Signal` is a one-shot occurrence that processes can wait on.
* :class:`Timeout` is a signal that fires after a virtual delay.
* :class:`Process` drives a generator; each ``yield`` suspends the process
  until the yielded waitable triggers.

Time is a float in **milliseconds** throughout the repository; this makes
the paper's numbers (latencies of a few ms, SLA of 10 ms) read naturally.
"""

from __future__ import annotations

import gc
import os
from bisect import bisect_left, insort
from collections import deque
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "Simulator",
    "Signal",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "CpuCharge",
    "SimulationError",
    "HeapTimers",
    "CalendarTimers",
    "AdaptiveTimers",
]


class SimulationError(Exception):
    """Raised for kernel misuse (e.g. waiting on a consumed signal)."""


class Signal:
    """A one-shot occurrence with a value or an exception.

    A signal starts *pending*; it is completed exactly once with either
    :meth:`succeed` or :meth:`fail`.  Processes wait on signals by
    yielding them.  Multiple processes may wait on the same signal.
    """

    __slots__ = ("sim", "callbacks", "_triggered", "value", "exc", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        # Lazily created: most signals complete with zero or one waiter,
        # and a list allocation per signal is measurable.
        self.callbacks: Optional[List[Callable[["Signal"], None]]] = None
        self._triggered = False
        self.value: Any = None
        self.exc: Optional[BaseException] = None
        self.name = name

    @property
    def triggered(self) -> bool:
        """True once the signal has succeeded or failed."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the signal completed without an exception."""
        return self._triggered and self.exc is None

    def succeed(self, value: Any = None) -> "Signal":
        """Complete the signal successfully, waking all waiters now."""
        # Open-coded _complete(value, None): signal completion is the
        # single most frequent operation in a run.
        if self._triggered:
            raise SimulationError(f"signal {self.name!r} completed twice")
        self._triggered = True
        self.value = value
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = None
            sim = self.sim
            now = sim.now
            immediate = sim._immediate
            arg = (self,)
            for callback in callbacks:
                sim._sequence += 1
                immediate.append((now, sim._sequence, callback, arg))
        return self

    def fail(self, exc: BaseException) -> "Signal":
        """Complete the signal with an exception.

        The exception is re-raised inside every waiting process at its
        ``yield`` site.
        """
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._complete(None, exc)
        return self

    def _complete(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._triggered:
            raise SimulationError(f"signal {self.name!r} completed twice")
        self._triggered = True
        self.value = value
        self.exc = exc
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = None
            # Waiters run via the immediate queue: same scheduling order
            # as schedule(0.0, ...) without touching the heap.
            sim = self.sim
            now = sim.now
            immediate = sim._immediate
            arg = (self,)
            for callback in callbacks:
                sim._sequence += 1
                immediate.append((now, sim._sequence, callback, arg))

    def add_callback(self, callback: Callable[["Signal"], None]) -> None:
        """Invoke *callback(signal)* when the signal completes.

        If the signal already completed, the callback runs at the current
        simulation time (still asynchronously, via the immediate queue).
        """
        if self._triggered:
            self.sim.call_soon(callback, self)
        elif self.callbacks is None:
            self.callbacks = [callback]
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._triggered else "pending"
        return f"<Signal {self.name!r} {state}>"


class Timeout(Signal):
    """A signal that succeeds after ``delay`` virtual milliseconds."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # A static name: formatting one per timeout is measurable on the
        # hot path, and the delay is available as an attribute anyway.
        super().__init__(sim, name="timeout")
        self.delay = delay
        # Open-coded sim.schedule(delay, self._fire, value): one timer
        # is armed per timeout and the call layer is measurable.
        sim._sequence += 1
        if delay == 0.0:
            sim._immediate.append((sim.now, sim._sequence, self._fire, (value,)))
        else:
            sim._timers.push((sim.now + delay, sim._sequence, self._fire, (value,)))

    def _fire(self, value: Any) -> None:
        # Open-coded succeed() — timer completion is the second most
        # frequent operation after signal completion — plus a
        # single-waiter inline fast path: when the simulator is idle at
        # the fire time, the immediate-queue entry succeed() would
        # append is the very next callback anyway, so the waiter runs
        # now, skipping one dispatch round-trip per timeout (the
        # accounted step keeps max_steps parity).  Multi-waiter and
        # not-idle cases enqueue exactly like succeed(), so the executed
        # order never changes.
        if self._triggered:
            raise SimulationError("signal 'timeout' completed twice")
        self._triggered = True
        self.value = value
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = None
            sim = self.sim
            immediate = sim._immediate
            if (
                len(callbacks) == 1
                and not immediate
                and ((head := sim._timers.head) is None or head[0] > sim.now)
            ):
                sim._count_inline_step()
                callbacks[0](self)
                return
            now = sim.now
            arg = (self,)
            for callback in callbacks:
                sim._sequence += 1
                immediate.append((now, sim._sequence, callback, arg))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._triggered else "pending"
        return f"<Timeout delay={self.delay} {state}>"


class AllOf(Signal):
    """Succeeds when every child signal has completed.

    The value is the list of child values in the order given.  If any
    child fails, this fails with the first failure (but only after all
    children completed, keeping lock bookkeeping in higher layers simple).
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", children: Iterable[Signal]) -> None:
        super().__init__(sim, name="all_of")
        self._children = list(children)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._child_done)

    def _child_done(self, _child: Signal) -> None:
        self._remaining -= 1
        if self._remaining > 0:
            return
        first_failure = next((c.exc for c in self._children if c.exc), None)
        if first_failure is not None:
            self.fail(first_failure)
        else:
            self.succeed([c.value for c in self._children])


class AnyOf(Signal):
    """Succeeds when the first child signal completes.

    The value is ``(index, value)`` of the first completed child; a child
    failure fails this signal.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", children: Iterable[Signal]) -> None:
        super().__init__(sim, name="any_of")
        children = list(children)
        if not children:
            raise ValueError("AnyOf requires at least one child")
        for index, child in enumerate(children):
            child.add_callback(self._make_child_done(index))

    def _make_child_done(self, index: int) -> Callable[[Signal], None]:
        def on_done(child: Signal) -> None:
            if self.triggered:
                return
            if child.exc is not None:
                self.fail(child.exc)
            else:
                self.succeed((index, child.value))

        return on_done


class CpuCharge:
    """A yieldable "hold one unit of ``resource`` for ``delay`` ms".

    Equivalent to ``yield from resource.use(delay)`` but interpreted
    directly by the process trampoline: no generator is created and no
    extra frame is walked on the resume — CPU charges are the single
    most frequent wait in a protocol simulation.  ``resource`` is duck
    typed (``acquire_now``/``release_unit``/``request``), matching
    :class:`repro.sim.queues.Resource`.
    """

    __slots__ = ("resource", "delay")

    def __init__(self, resource: Any, delay: float) -> None:
        self.resource = resource
        self.delay = delay


class _HeapOps:
    """Binary-heap timer-queue method bundle (shared by :class:`HeapTimers`
    and the heap mode of :class:`AdaptiveTimers`; no instance layout)."""

    __slots__ = ()

    def __len__(self) -> int:
        return len(self._heap)

    def entries(self) -> List[Tuple[float, int, Callable, tuple]]:
        """All live entries, in arbitrary order (for queue handoff)."""
        return list(self._heap)

    def push(self, entry: Tuple[float, int, Callable, tuple]) -> None:
        """Insert ``entry``; updates :attr:`head`."""
        heap = self._heap
        heappush(heap, entry)
        self.head = heap[0]

    def pop(self) -> Tuple[float, int, Callable, tuple]:
        """Remove and return the minimum entry (:attr:`head`)."""
        heap = self._heap
        entry = heappop(heap)
        self.head = heap[0] if heap else None
        return entry

    def cancel(self, entry: Tuple[float, int, Callable, tuple]) -> None:
        """Remove a not-yet-fired ``entry``; raises ValueError if absent."""
        heap = self._heap
        heap.remove(entry)
        heapify(heap)
        self.head = heap[0] if heap else None


class HeapTimers(_HeapOps):
    """Binary-heap timer queue.

    The small-population half of the default :class:`AdaptiveTimers`
    hybrid, and the plain fallback (``Simulator(timers="heap")`` /
    ``REPRO_SIM_TIMERS=heap``).

    Entries are ``(fire_at, seq, callback, args)`` tuples, totally
    ordered by ``(fire_at, seq)``.  ``head`` always holds the minimum
    entry (or ``None`` when empty) so hot-path peeks are a single
    attribute load.  See docs/ARCHITECTURE.md § Timer queues.
    """

    __slots__ = ("_heap", "head")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable, tuple]] = []
        self.head: Optional[Tuple[float, int, Callable, tuple]] = None


class _CalendarOps:
    """Calendar-queue method bundle (shared by :class:`CalendarTimers`
    and the wheel mode of :class:`AdaptiveTimers`; no instance layout)."""

    #: Empty buckets walked per promote before jumping to min(buckets).
    SCAN_LIMIT = 32
    #: Promoted-bucket size that triggers a width re-tune.
    OVERSIZE = 512
    #: Cumulative empty-bucket walks that trigger a width re-tune.
    SCAN_DEBT = 4096

    __slots__ = ()

    def _init_calendar(self, width: float = 1.0) -> None:
        self._buckets: dict = {}
        self._width = width
        self._inv_width = 1.0 / width
        # The current run: a sorted list consumed from index _cur_i.
        self._cur: List[tuple] = []
        self._cur_i = 0
        self._cur_key = 0
        self._size = 0
        self._scan_debt = 0
        self._pops_since_tune = 0
        self.head: Optional[Tuple[float, int, Callable, tuple]] = None

    def __len__(self) -> int:
        return self._size

    def entries(self) -> List[tuple]:
        """All live entries, in arbitrary order (for queue handoff)."""
        live = [entry for bucket in self._buckets.values() for entry in bucket]
        live.extend(self._cur[self._cur_i :])
        return live

    def push(self, entry: Tuple[float, int, Callable, tuple]) -> None:
        """Insert ``entry``; updates :attr:`head`.  O(1) amortized."""
        k = int(entry[0] * self._inv_width)
        self._size += 1
        head = self.head
        if head is None:
            # Empty queue: the entry becomes the current run.
            self._cur = [entry]
            self._cur_i = 0
            self._cur_key = k
            self.head = entry
            return
        if k > self._cur_key:
            bucket = self._buckets.get(k)
            if bucket is None:
                self._buckets[k] = [entry]
            else:
                bucket.append(entry)
            return
        # Lands inside the current run (or before it): keep the
        # unconsumed tail sorted by bisect-inserting the entry.
        cur = self._cur
        i = self._cur_i
        insort(cur, entry, i)
        if entry < head:
            self.head = entry

    def pop(self) -> Tuple[float, int, Callable, tuple]:
        """Remove and return the minimum entry (:attr:`head`)."""
        entry = self.head
        if entry is None:
            raise IndexError("pop from empty CalendarTimers")
        self._size -= 1
        i = self._cur_i + 1
        cur = self._cur
        if i < len(cur):
            self._cur_i = i
            self.head = cur[i]
        else:
            self._promote()
        return entry

    def cancel(self, entry: Tuple[float, int, Callable, tuple]) -> None:
        """Remove a not-yet-fired ``entry``; raises ValueError if absent."""
        if entry is self.head:
            self.pop()
            return
        k = int(entry[0] * self._inv_width)
        if k <= self._cur_key:
            cur = self._cur
            i = bisect_left(cur, entry, self._cur_i)
            if i < len(cur) and cur[i] is entry:
                del cur[i]
                self._size -= 1
                return
            raise ValueError(f"entry not queued: {entry!r}")
        bucket = self._buckets.get(k)
        if bucket is None:
            raise ValueError(f"entry not queued: {entry!r}")
        bucket.remove(entry)
        self._size -= 1
        if not bucket:
            del self._buckets[k]

    def _promote(self) -> None:
        # The current run is exhausted: sort the next nonempty bucket
        # into a fresh run.  Walks at most SCAN_LIMIT empty buckets
        # before jumping straight to the earliest bucket number.
        if self._size == 0:
            self._cur = []
            self._cur_i = 0
            self.head = None
            return
        buckets = self._buckets
        k = self._cur_key
        bucket = None
        for _ in range(self.SCAN_LIMIT):
            k += 1
            bucket = buckets.pop(k, None)
            if bucket is not None:
                break
        if bucket is None:
            self._scan_debt += self.SCAN_LIMIT
            k = min(buckets)
            bucket = buckets.pop(k)
        bucket.sort()
        self._cur = bucket
        self._cur_i = 0
        self._cur_key = k
        self.head = bucket[0]
        self._pops_since_tune += len(bucket)
        if len(bucket) > self.OVERSIZE or self._scan_debt > self.SCAN_DEBT:
            self._retune()

    def _retune(self) -> None:
        # Re-tune the bucket width to ~4 mean gaps between *distinct*
        # fire times and re-bucket every future entry.  Rate-limited to
        # once per `size` promotions so a pathological mix cannot spend
        # its time re-bucketing.
        if self._pops_since_tune < self._size:
            return
        self._pops_since_tune = 0
        self._scan_debt = 0
        entries = [entry for bucket in self._buckets.values() for entry in bucket]
        entries.extend(self._cur[self._cur_i :])
        if len(entries) < 2:
            return
        times = {entry[0] for entry in entries}
        lo = min(times)
        hi = max(times)
        if len(times) < 2 or hi <= lo:
            return
        self._width = max((hi - lo) / (len(times) - 1), 1e-9) * 4.0
        self._inv_width = 1.0 / self._width
        inv_width = self._inv_width
        head = self.head
        buckets: dict = {}
        for entry in entries:
            if entry is head:
                continue
            k = int(entry[0] * inv_width)
            bucket = buckets.get(k)
            if bucket is None:
                buckets[k] = [entry]
            else:
                bucket.append(entry)
        # The head's own bucket must stay in the current run — _promote
        # only ever scans *forward* from _cur_key.
        k_head = int(head[0] * inv_width)
        run = buckets.pop(k_head, [])
        run.append(head)
        run.sort()
        self._buckets = buckets
        self._cur = run
        self._cur_i = 0
        self._cur_key = k_head


class CalendarTimers(_CalendarOps):
    """Calendar-queue (bucketed timer wheel) timer queue.

    The large-population half of the default :class:`AdaptiveTimers`
    hybrid; also selectable outright with ``Simulator(timers="calendar")``
    / ``REPRO_SIM_TIMERS=calendar``.

    Timers hash into buckets of ``width`` virtual milliseconds by
    absolute bucket number ``int(fire_at / width)`` (a dict keyed by
    bucket number, so there are no wrap-around laps and far-future
    timers cost nothing until their bucket comes up).  Buckets are
    *lazily sorted*: a future bucket is a plain append-list; when the
    wheel reaches it, :meth:`_promote` sorts it once (C timsort) into
    the *current run* ``_cur``, and pops walk that run by index — O(1)
    per pop, O(1) per push, sort cost amortized to O(log bucket) C
    comparisons per timer.  The executed order is exactly
    ``(fire_at, seq)`` — bit-identical to :class:`HeapTimers`, which the
    trace checksums in ``tests/test_determinism.py`` gate.

    A push landing inside the current run (delay shorter than the rest
    of the bucket) bisect-inserts into the unconsumed tail, so ordering
    stays exact without heap discipline.  The bucket width re-tunes
    (``_retune``) to ~4 mean gaps between *distinct* fire times —
    simulated timers cluster on grids (fixed think times, constant
    latencies), and counting duplicates would undersize buckets —
    whenever a promoted bucket is grossly oversized or the wheel walks
    long empty stretches.  See docs/ARCHITECTURE.md § Timer queues.
    """

    __slots__ = (
        "_buckets",
        "_width",
        "_inv_width",
        "_cur",
        "_cur_i",
        "_cur_key",
        "_size",
        "_scan_debt",
        "_pops_since_tune",
        "head",
    )

    def __init__(self, width: float = 1.0) -> None:
        self._init_calendar(width)


class AdaptiveTimers:
    """Adaptive timer queue: binary heap when small, calendar wheel when
    large — the default.

    PR 4's measurements (see ROADMAP.md § Performance) showed
    :class:`CalendarTimers` beating C ``heapq`` on big timer populations
    but *losing* ~10 % on small ones (``resource_contention``: ~14 live
    timers), where heap operations are a couple of C calls and the
    wheel's Python-level bucket bookkeeping cannot compete.  This queue
    takes both regimes: it runs the heap code while the live size stays
    below the upshift threshold, hands every live entry to fresh
    calendar state when a push crosses it, and hands back when a pop
    drains below the downshift threshold.

    The thresholds are **auto-tuned online**: :data:`UP`/:data:`DOWN`
    (64/24, PR 4's measured crossover) only seed the band.  Every
    migration observes the live size at the handoff and folds it into
    an integer EWMA (``_ewma16``, a 16x fixed-point mean of the sizes
    at which the population actually crosses modes); the band is then
    recentered around that profile — upshift at ~2x the mean, downshift
    at ~mean/2 (clamped to ``[DOWN_MIN, up/4]``, keeping hysteresis) —
    so a population oscillating around one fixed threshold widens its
    own band instead of thrashing migrations, while a fresh queue
    behaves exactly like the fixed-constant version until the first
    handoff.  Threshold choice affects only *when* handoffs happen,
    never pop order, so traces stay bit-identical by construction.

    Implementation note: instead of delegating to an inner queue object
    (a wrapper layer costs ~10 % on the push/pop hot path, defeating
    the point), the instance **switches its own class** between two
    mode classes (:class:`_AdaptiveHeap` / :class:`_AdaptiveCalendar`)
    that share this class's slot layout and inherit the real
    :class:`_HeapOps` / :class:`_CalendarOps` method bundles — so each
    push/pop runs the same code as the pure queues, plus one length
    check.  ``AdaptiveTimers()`` constructs an instance in heap mode;
    ``isinstance(q, AdaptiveTimers)`` holds in both modes.

    The handoff is *exact*: both method bundles pop in ``(fire_at,
    seq)`` order, and a migration moves the live-entry set verbatim, so
    the merged pop sequence is bit-identical to either pure queue — the
    determinism trace checksums (``tests/test_determinism.py``) run on
    this queue.  Selected with ``Simulator(timers="adaptive")`` or
    ``REPRO_SIM_TIMERS=adaptive`` (the default); see
    docs/ARCHITECTURE.md § Timer queues.
    """

    #: Initial (and minimum) heap -> calendar upshift threshold.
    UP = 64
    #: Initial calendar -> heap downshift threshold.
    DOWN = 24
    #: Hard ceiling for the auto-tuned upshift threshold.
    UP_MAX = 4096
    #: Hard floor for the auto-tuned downshift threshold.
    DOWN_MIN = 8

    # Union of both modes' state so __class__ switching keeps one layout.
    __slots__ = (
        "_heap",
        "_buckets",
        "_width",
        "_inv_width",
        "_cur",
        "_cur_i",
        "_cur_key",
        "_size",
        "_scan_debt",
        "_pops_since_tune",
        "_up",
        "_down",
        "_ewma16",
        "head",
    )

    def __new__(cls) -> "AdaptiveTimers":
        if cls is AdaptiveTimers:
            return object.__new__(_AdaptiveHeap)
        return object.__new__(cls)

    def __init__(self) -> None:
        self._heap = []
        self.head = None
        self._up = self.UP
        self._down = self.DOWN
        self._ewma16 = 0

    @property
    def mode(self) -> str:
        """The active implementation: ``"heap"`` or ``"calendar"``."""
        return "heap" if isinstance(self, _AdaptiveHeap) else "calendar"

    @property
    def band(self) -> Tuple[int, int]:
        """The current auto-tuned ``(upshift, downshift)`` thresholds."""
        return (self._up, self._down)

    def _observe(self, n: int) -> None:
        """Fold a migration-time live size into the threshold band.

        Integer-only: ``_ewma16`` holds 16x the running mean of the
        sizes at which the population crossed modes (gain 1/4 per
        observation).  The band recenters on that profile — upshift at
        ~2x the mean (clamped to [UP, UP_MAX]), downshift at ~mean/2
        (clamped to [DOWN_MIN, upshift/4]) — so hysteresis always spans
        at least 4x and an oscillating population settles into one mode
        instead of thrashing handoffs.
        """
        e = self._ewma16
        e = (n << 4) if e == 0 else e + (((n << 4) - e) >> 2)
        self._ewma16 = e
        m = e >> 4
        up = m << 1
        if up < self.UP:
            up = self.UP
        elif up > self.UP_MAX:
            up = self.UP_MAX
        down = m >> 1
        cap = up >> 2
        if down > cap:
            down = cap
        if down < self.DOWN_MIN:
            down = self.DOWN_MIN
        self._up = up
        self._down = down


class _AdaptiveHeap(_HeapOps, AdaptiveTimers):
    """Heap mode of :class:`AdaptiveTimers` (push checks the UP threshold)."""

    __slots__ = ()

    def push(self, entry: Tuple[float, int, Callable, tuple]) -> None:
        """Heap push, migrating to the calendar wheel past ``UP`` entries."""
        heap = self._heap
        heappush(heap, entry)
        self.head = heap[0]
        if len(heap) > self._up:
            self._to_calendar()

    def _to_calendar(self) -> None:
        # Move the live set verbatim into fresh calendar state.  Order
        # within the set is irrelevant: each mode orders pops by
        # (fire_at, seq) on its own, so the handoff is exact.
        entries = self._heap
        self._observe(len(entries))
        self._heap = []
        self.__class__ = _AdaptiveCalendar
        self._init_calendar()
        push = _CalendarOps.push
        for entry in entries:
            push(self, entry)


class _AdaptiveCalendar(_CalendarOps, AdaptiveTimers):
    """Wheel mode of :class:`AdaptiveTimers` (pop checks the DOWN threshold)."""

    __slots__ = ()

    def pop(self) -> Tuple[float, int, Callable, tuple]:
        """Calendar pop, migrating back to the heap below ``DOWN`` entries."""
        # Inlined _CalendarOps.pop plus the downshift check: an extra
        # call layer here is measurable at storm rates.
        entry = self.head
        if entry is None:
            raise IndexError("pop from empty CalendarTimers")
        size = self._size - 1
        self._size = size
        i = self._cur_i + 1
        cur = self._cur
        if i < len(cur):
            self._cur_i = i
            self.head = cur[i]
        else:
            self._promote()
        if size < self._down:
            self._to_heap()
        return entry

    def _to_heap(self) -> None:
        # Move the live set verbatim onto a fresh heap (see _to_calendar).
        entries = [entry for bucket in self._buckets.values() for entry in bucket]
        entries.extend(self._cur[self._cur_i :])
        self._observe(len(entries))
        self._buckets = {}
        self._cur = []
        self.__class__ = _AdaptiveHeap
        heapify(entries)
        self._heap = entries
        self.head = entries[0] if entries else None


def _make_timers(mode: Optional[str]):
    """Build the timer queue selected by ``mode`` / ``REPRO_SIM_TIMERS``."""
    mode = mode or os.environ.get("REPRO_SIM_TIMERS", "adaptive")
    if mode == "adaptive":
        return AdaptiveTimers()
    if mode == "calendar":
        return CalendarTimers()
    if mode == "heap":
        return HeapTimers()
    raise ValueError(
        f"unknown timer queue {mode!r}; pick 'adaptive', 'calendar' or 'heap'"
    )



class Process(Signal):
    """A generator-driven simulated activity.

    The generator may yield:

    * any :class:`Signal` (including :class:`Timeout`, another
      :class:`Process`, :class:`AllOf`, :class:`AnyOf`) — the process
      resumes with the signal's value, or the signal's exception is
      raised at the yield site;
    * a non-negative ``float`` (strictly a float: a yielded int is still
      rejected, as ever) — resume after that many virtual milliseconds,
      equivalent to yielding ``sim.timeout(delay)`` but without
      allocating a signal: the timer resumes the process directly from
      the heap;
    * ``None`` — resume on the next scheduler step (a cooperative hop).

    The process itself is a signal: it succeeds with the generator's
    return value, or fails with its uncaught exception.
    """

    __slots__ = (
        "_generator",
        "_timer_cb",
        "_wait_cb",
        "_charge_res",
        "_charge_delay",
        "_charge_start_cb",
        "_charge_timer_cb",
        "_charge_resume_cb",
    )

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"Process requires a generator, got {generator!r}")
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        # Bound once: these are scheduled on every timer yield / signal
        # wait / CPU charge, and bound-method creation per wait adds up.
        self._timer_cb = self._timer_resume
        self._wait_cb = self._on_wait_done
        self._charge_res: Any = None
        self._charge_delay = 0.0
        self._charge_start_cb = self._charge_start
        self._charge_timer_cb = self._charge_timer
        self._charge_resume_cb = self._charge_resume
        # The first step is always queued (never run inline): callers may
        # continue setting up state between process() and run().
        sim.call_soon(self._step, None, None)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        # Trampoline: consume already-triggered waitables in a loop
        # instead of round-tripping through the scheduler.  Inlining is
        # only legal while the simulator is *idle at the current
        # timestamp* — otherwise a queued same-time callback (with a
        # smaller sequence number) would be overtaken, changing the
        # deterministic order.  When idle, the queued resume would have
        # been the very next callback anyway, so running it now is
        # exactly equivalent.
        sim = self.sim
        generator = self._generator
        send = generator.send
        immediate = sim._immediate
        timers = sim._timers
        while True:
            try:
                if exc is not None:
                    target = generator.throw(exc)
                else:
                    target = send(value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as step_exc:  # noqa: BLE001 - must reach waiters
                self.fail(step_exc)
                return
            if type(target) is float:
                if target < 0.0:
                    sim.call_soon(
                        self._step,
                        None,
                        SimulationError(
                            f"process {self.name!r} yielded non-waitable {target!r}"
                        ),
                    )
                    return
                # A raw delay: the timer resumes this process directly,
                # no signal allocation, no completion round-trip.
                # Fast-forward: with nothing queued at the current time,
                # no heap event at/before the fire time, and the run
                # horizon not in between, the timer entry would be the
                # very next pop — advance the clock inline instead.
                if not immediate:
                    fire_at = sim.now + target
                    until = sim._until
                    head = timers.head
                    if (head is None or head[0] > fire_at) and (
                        until is None or fire_at <= until
                    ):
                        sim.now = fire_at
                        if sim._max_steps is not None:
                            sim._step_count += 2  # the timer pop + resume
                            if sim._step_count > sim._max_steps:
                                raise SimulationError(
                                    f"exceeded max_steps={sim._max_steps}"
                                )
                        value = exc = None
                        continue
                sim._sequence += 1
                if target == 0.0:
                    immediate.append((sim.now, sim._sequence, self._timer_cb, ()))
                else:
                    timers.push(
                        (sim.now + target, sim._sequence, self._timer_cb, ())
                    )
                return
            if type(target) is CpuCharge:
                resource = target.resource
                delay = target.delay
                if delay < 0.0:
                    # Mirror the raw-delay branch: negative work is a
                    # programming error, surfaced at the yield site.
                    sim.call_soon(
                        self._step,
                        None,
                        SimulationError(
                            f"process {self.name!r} yielded negative "
                            f"CPU charge {delay!r}"
                        ),
                    )
                    return
                if resource.acquire_now():
                    self._charge_res = resource
                    head = timers.head
                    if immediate or (head is not None and head[0] <= sim.now):
                        # Not idle: the historical triggered grant would
                        # queue one resume behind the pending callbacks;
                        # replicate it, then start the service timer.
                        self._charge_delay = delay
                        sim.call_soon(self._charge_start_cb)
                        return
                    if sim._max_steps is not None:  # the elided grant hop
                        sim._step_count += 1
                        if sim._step_count > sim._max_steps:
                            raise SimulationError(
                                f"exceeded max_steps={sim._max_steps}"
                            )
                    # Service timer, mirroring the raw-delay branch
                    # (fast-forward included); release on fire.
                    fire_at = sim.now + delay
                    until = sim._until
                    if (head is None or head[0] > fire_at) and (
                        until is None or fire_at <= until
                    ):
                        sim.now = fire_at
                        if sim._max_steps is not None:
                            sim._step_count += 2
                            if sim._step_count > sim._max_steps:
                                raise SimulationError(
                                    f"exceeded max_steps={sim._max_steps}"
                                )
                        self._charge_res = None
                        resource.release_unit()
                        value = exc = None
                        continue
                    sim._sequence += 1
                    if delay == 0.0:
                        immediate.append(
                            (sim.now, sim._sequence, self._charge_timer_cb, ())
                        )
                    else:
                        timers.push(
                            (sim.now + delay, sim._sequence, self._charge_timer_cb, ())
                        )
                    return
                # Contended: wait for a unit, then run the timer.  The
                # releaser schedules the callback exactly where a grant
                # signal's completion would have queued it.
                self._charge_res = resource
                self._charge_delay = delay
                resource.enqueue_waiter(self._charge_start_cb)
                return
            if isinstance(target, Signal):
                # Inline idle_at_now(): this is the hottest branch.
                if target._triggered:
                    if not immediate and (
                        (head := timers.head) is None or head[0] > sim.now
                    ):
                        value, exc = target.value, target.exc
                        if sim._max_steps is not None:
                            sim._step_count += 1
                            if sim._step_count > sim._max_steps:
                                raise SimulationError(
                                    f"exceeded max_steps={sim._max_steps}"
                                )
                        continue
                    sim.call_soon(self._wait_cb, target)
                    return
                # Open-coded target.add_callback(self._wait_cb): one
                # registration per wait, worth skipping the call layer.
                callbacks = target.callbacks
                if callbacks is None:
                    target.callbacks = [self._wait_cb]
                else:
                    callbacks.append(self._wait_cb)
                return
            if target is None:
                if sim.idle_at_now():
                    value = exc = None
                    sim._count_inline_step()
                    continue
                sim.call_soon(self._step, None, None)
                return
            error = SimulationError(
                f"process {self.name!r} yielded non-waitable {target!r}"
            )
            sim.call_soon(self._step, None, error)
            return

    def _charge_start(self, _signal: Optional[Signal] = None) -> None:
        # Holding the unit (taken synchronously, or handed over by a
        # releaser); start the service timer.  Mirrors the raw-delay
        # yield branch, fast-forward included.
        sim = self.sim
        delay = self._charge_delay
        timers = sim._timers
        if not sim._immediate:
            fire_at = sim.now + delay
            until = sim._until
            head = timers.head
            if (head is None or head[0] > fire_at) and (
                until is None or fire_at <= until
            ):
                sim.now = fire_at
                if sim._max_steps is not None:
                    sim._step_count += 2
                    if sim._step_count > sim._max_steps:
                        raise SimulationError(f"exceeded max_steps={sim._max_steps}")
                resource, self._charge_res = self._charge_res, None
                resource.release_unit()
                self._step(None, None)
                return
        sim._sequence += 1
        if delay == 0.0:
            sim._immediate.append((sim.now, sim._sequence, self._charge_timer_cb, ()))
        else:
            timers.push((sim.now + delay, sim._sequence, self._charge_timer_cb, ()))

    def _charge_timer(self) -> None:
        # The service timer fired; the release runs at the (possibly
        # queued) resume — exactly where the use() generator's finally
        # block ran.
        sim = self.sim
        head = sim._timers.head
        if not sim._immediate and (head is None or head[0] > sim.now):
            sim._count_inline_step()
            resource, self._charge_res = self._charge_res, None
            resource.release_unit()
            self._step(None, None)
        else:
            sim._sequence += 1
            sim._immediate.append((sim.now, sim._sequence, self._charge_resume_cb, ()))

    def _charge_resume(self) -> None:
        resource, self._charge_res = self._charge_res, None
        resource.release_unit()
        self._step(None, None)

    def _timer_resume(self) -> None:
        # Fired from the heap when a yielded raw delay elapses.  The
        # signal-based path queued the resume behind whatever else is
        # pending at the fire time; replicate that unless idle (where
        # the queued resume would run immediately anyway).
        sim = self.sim
        head = sim._timers.head
        if not sim._immediate and (head is None or head[0] > sim.now):
            sim._count_inline_step()
            self._step(None, None)
        else:
            sim._sequence += 1
            sim._immediate.append((sim.now, sim._sequence, self._step, (None, None)))

    def _on_wait_done(self, signal: Signal) -> None:
        self._step(signal.value, signal.exc)


class Simulator:
    """The virtual clock and scheduler.

    Determinism: scheduled callbacks with equal fire times run in
    scheduling order (a monotonically increasing sequence number breaks
    ties), so a fixed program + fixed RNG seeds always produces identical
    traces.

    Zero-delay callbacks — the bulk of a protocol simulation (signal
    completions, process resumes, same-time hops) — bypass the timer
    queue via an *immediate queue*, a FIFO deque whose entries carry the
    same ``(time, sequence)`` keys as timer entries.  The run loop
    merges the two by key, so the executed order is identical to the
    heap-only kernel while zero-delay scheduling costs O(1).

    Positive delays go to the *timer queue*: the :class:`AdaptiveTimers`
    heap/wheel hybrid by default, or a pure :class:`CalendarTimers`
    bucketed wheel / :class:`HeapTimers` binary heap
    (``timers="calendar"``/``"heap"`` or ``REPRO_SIM_TIMERS``).  All
    three order entries exactly by ``(fire_at, sequence)``, so the
    choice never affects a trace.
    """

    def __init__(self, timers: Optional[str] = None) -> None:
        self.now: float = 0.0
        self._timers = _make_timers(timers)
        self._immediate: Deque[Tuple[float, int, Callable, tuple]] = deque()
        self._sequence = 0
        self._step_count = 0
        self._max_steps: Optional[int] = None
        self._until: Optional[float] = None

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable, *args: Any
    ) -> Tuple[float, int, Callable, tuple]:
        """Run ``callback(*args)`` after ``delay`` virtual milliseconds.

        Returns the queue entry, which can be passed to :meth:`cancel`
        while it has not fired yet.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._sequence += 1
        if delay == 0.0:
            entry = (self.now, self._sequence, callback, args)
            self._immediate.append(entry)
        else:
            entry = (self.now + delay, self._sequence, callback, args)
            self._timers.push(entry)
        return entry

    def cancel(self, entry: Tuple[float, int, Callable, tuple]) -> None:
        """Cancel a not-yet-fired entry returned by :meth:`schedule`.

        Raises :class:`SimulationError` if the entry already fired (or
        was cancelled before).
        """
        try:
            try:
                self._immediate.remove(entry)
            except ValueError:
                self._timers.cancel(entry)
        except ValueError:
            raise SimulationError(
                f"cancelling an entry that already fired: {entry!r}"
            ) from None

    def call_soon(self, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` at the current time (after pending work).

        Equivalent to ``schedule(0.0, ...)``, skipping the delay check.
        """
        self._sequence += 1
        self._immediate.append((self.now, self._sequence, callback, args))

    def idle_at_now(self) -> bool:
        """True when no queued callback is due at the current timestamp.

        Fast paths (the process trampoline, uncontended resource use)
        may only shortcut the scheduler when this holds: the shortcut
        then runs exactly what would have been the next callback.
        """
        if self._immediate:
            return False
        head = self._timers.head
        return head is None or head[0] > self.now

    def _count_inline_step(self) -> None:
        """Account an inline trampoline resume as one scheduler step.

        Steps are only counted while a ``max_steps`` budget is active.
        """
        if self._max_steps is not None:
            self._step_count += 1
            if self._step_count > self._max_steps:
                raise SimulationError(f"exceeded max_steps={self._max_steps}")

    def signal(self, name: str = "") -> Signal:
        """Create a fresh pending :class:`Signal`."""
        return Signal(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a signal firing after ``delay`` ms."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Spawn a new process driving ``generator``."""
        return Process(self, generator, name)

    def all_of(self, children: Iterable[Signal]) -> AllOf:
        """Signal that completes when all ``children`` complete."""
        return AllOf(self, children)

    def any_of(self, children: Iterable[Signal]) -> AnyOf:
        """Signal that completes when the first child completes."""
        return AnyOf(self, children)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_steps: Optional[int] = None) -> float:
        """Run the simulation.

        ``until`` stops the clock at that virtual time (events scheduled
        later stay queued); ``max_steps`` bounds the number of callbacks
        (a safety valve against accidental infinite loops).  Returns the
        final clock value.
        """
        timers = self._timers
        immediate = self._immediate
        self._max_steps = max_steps
        self._until = until
        # The dispatch loop is an allocation storm of short-lived,
        # mostly acyclic objects; cyclic-GC generation scans in the
        # middle of it are pure overhead.  Pause collection while
        # dispatching (restored in the finally; a paused collector is
        # invisible to the simulation — determinism is unaffected).
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        # The loop merges the immediate queue and the heap on
        # (time, seq): both are ordered, so comparing the two fronts
        # yields the globally next callback.  Three specializations keep
        # per-dispatch branch count minimal; step accounting only runs
        # under a max_steps budget.
        try:
            if max_steps is None and until is None:
                while True:
                    head = timers.head
                    if immediate:
                        if head is None or head >= immediate[0]:
                            entry = immediate.popleft()
                        else:
                            entry = timers.pop()
                    elif head is not None:
                        entry = timers.pop()
                    else:
                        break
                    self.now = entry[0]
                    entry[2](*entry[3])
            elif max_steps is None:
                while True:
                    head = timers.head
                    if immediate and (head is None or head >= immediate[0]):
                        entry = immediate[0]
                        if entry[0] > until:
                            self.now = until
                            return self.now
                        immediate.popleft()
                    elif head is not None:
                        if head[0] > until:
                            self.now = until
                            return self.now
                        entry = timers.pop()
                    else:
                        break
                    self.now = entry[0]
                    entry[2](*entry[3])
            else:
                while True:
                    head = timers.head
                    if immediate and (head is None or head >= immediate[0]):
                        entry = immediate[0]
                        from_immediate = True
                    elif head is not None:
                        entry = head
                        from_immediate = False
                    else:
                        break
                    fire_at = entry[0]
                    if until is not None and fire_at > until:
                        self.now = until
                        return self.now
                    if from_immediate:
                        immediate.popleft()
                    else:
                        timers.pop()
                    self.now = fire_at
                    self._step_count += 1
                    if self._step_count > max_steps:
                        raise SimulationError(f"exceeded max_steps={max_steps}")
                    entry[2](*entry[3])
        finally:
            self._max_steps = None
            self._until = None
            if gc_was_enabled:
                gc.enable()
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def run_process(self, generator: Generator, name: str = "",
                    until: Optional[float] = None) -> Any:
        """Convenience: spawn ``generator`` and run until it completes.

        Returns the process return value; re-raises its exception.
        """
        proc = self.process(generator, name)
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError(f"process {proc.name!r} did not finish")
        if proc.exc is not None:
            raise proc.exc
        return proc.value

    @property
    def pending_events(self) -> int:
        """Number of callbacks still queued (timer queue + immediate queue)."""
        return len(self._timers) + len(self._immediate)
