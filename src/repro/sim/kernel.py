"""Discrete-event simulation kernel.

This module is the substrate on which the whole reproduction runs.  The
paper evaluated AEON on EC2 with a C++ runtime; a Python thread-based
reproduction would measure GIL contention rather than protocol behaviour,
so instead every runtime (AEON, EventWave, Orleans) executes on this
deterministic simulator.  The kernel is deliberately small and SimPy-like:

* :class:`Simulator` owns the virtual clock and the event heap.
* :class:`Signal` is a one-shot occurrence that processes can wait on.
* :class:`Timeout` is a signal that fires after a virtual delay.
* :class:`Process` drives a generator; each ``yield`` suspends the process
  until the yielded waitable triggers.

Time is a float in **milliseconds** throughout the repository; this makes
the paper's numbers (latencies of a few ms, SLA of 10 ms) read naturally.
"""

from __future__ import annotations

import gc
import heapq
from collections import deque
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "Simulator",
    "Signal",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "CpuCharge",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for kernel misuse (e.g. waiting on a consumed signal)."""


class Signal:
    """A one-shot occurrence with a value or an exception.

    A signal starts *pending*; it is completed exactly once with either
    :meth:`succeed` or :meth:`fail`.  Processes wait on signals by
    yielding them.  Multiple processes may wait on the same signal.
    """

    __slots__ = ("sim", "callbacks", "_triggered", "value", "exc", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        # Lazily created: most signals complete with zero or one waiter,
        # and a list allocation per signal is measurable.
        self.callbacks: Optional[List[Callable[["Signal"], None]]] = None
        self._triggered = False
        self.value: Any = None
        self.exc: Optional[BaseException] = None
        self.name = name

    @property
    def triggered(self) -> bool:
        """True once the signal has succeeded or failed."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the signal completed without an exception."""
        return self._triggered and self.exc is None

    def succeed(self, value: Any = None) -> "Signal":
        """Complete the signal successfully, waking all waiters now."""
        # Open-coded _complete(value, None): signal completion is the
        # single most frequent operation in a run.
        if self._triggered:
            raise SimulationError(f"signal {self.name!r} completed twice")
        self._triggered = True
        self.value = value
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = None
            sim = self.sim
            now = sim.now
            immediate = sim._immediate
            arg = (self,)
            for callback in callbacks:
                sim._sequence += 1
                immediate.append((now, sim._sequence, callback, arg))
        return self

    def fail(self, exc: BaseException) -> "Signal":
        """Complete the signal with an exception.

        The exception is re-raised inside every waiting process at its
        ``yield`` site.
        """
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._complete(None, exc)
        return self

    def _complete(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._triggered:
            raise SimulationError(f"signal {self.name!r} completed twice")
        self._triggered = True
        self.value = value
        self.exc = exc
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = None
            # Waiters run via the immediate queue: same scheduling order
            # as schedule(0.0, ...) without touching the heap.
            sim = self.sim
            now = sim.now
            immediate = sim._immediate
            arg = (self,)
            for callback in callbacks:
                sim._sequence += 1
                immediate.append((now, sim._sequence, callback, arg))

    def add_callback(self, callback: Callable[["Signal"], None]) -> None:
        """Invoke *callback(signal)* when the signal completes.

        If the signal already completed, the callback runs at the current
        simulation time (still asynchronously, via the immediate queue).
        """
        if self._triggered:
            self.sim.call_soon(callback, self)
        elif self.callbacks is None:
            self.callbacks = [callback]
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._triggered else "pending"
        return f"<Signal {self.name!r} {state}>"


class Timeout(Signal):
    """A signal that succeeds after ``delay`` virtual milliseconds."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # A static name: formatting one per timeout is measurable on the
        # hot path, and the delay is available as an attribute anyway.
        super().__init__(sim, name="timeout")
        self.delay = delay
        sim.schedule(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        self.succeed(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._triggered else "pending"
        return f"<Timeout delay={self.delay} {state}>"


class AllOf(Signal):
    """Succeeds when every child signal has completed.

    The value is the list of child values in the order given.  If any
    child fails, this fails with the first failure (but only after all
    children completed, keeping lock bookkeeping in higher layers simple).
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", children: Iterable[Signal]) -> None:
        super().__init__(sim, name="all_of")
        self._children = list(children)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._child_done)

    def _child_done(self, _child: Signal) -> None:
        self._remaining -= 1
        if self._remaining > 0:
            return
        first_failure = next((c.exc for c in self._children if c.exc), None)
        if first_failure is not None:
            self.fail(first_failure)
        else:
            self.succeed([c.value for c in self._children])


class AnyOf(Signal):
    """Succeeds when the first child signal completes.

    The value is ``(index, value)`` of the first completed child; a child
    failure fails this signal.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", children: Iterable[Signal]) -> None:
        super().__init__(sim, name="any_of")
        children = list(children)
        if not children:
            raise ValueError("AnyOf requires at least one child")
        for index, child in enumerate(children):
            child.add_callback(self._make_child_done(index))

    def _make_child_done(self, index: int) -> Callable[[Signal], None]:
        def on_done(child: Signal) -> None:
            if self.triggered:
                return
            if child.exc is not None:
                self.fail(child.exc)
            else:
                self.succeed((index, child.value))

        return on_done


class CpuCharge:
    """A yieldable "hold one unit of ``resource`` for ``delay`` ms".

    Equivalent to ``yield from resource.use(delay)`` but interpreted
    directly by the process trampoline: no generator is created and no
    extra frame is walked on the resume — CPU charges are the single
    most frequent wait in a protocol simulation.  ``resource`` is duck
    typed (``acquire_now``/``release_unit``/``request``), matching
    :class:`repro.sim.queues.Resource`.
    """

    __slots__ = ("resource", "delay")

    def __init__(self, resource: Any, delay: float) -> None:
        self.resource = resource
        self.delay = delay


class Process(Signal):
    """A generator-driven simulated activity.

    The generator may yield:

    * any :class:`Signal` (including :class:`Timeout`, another
      :class:`Process`, :class:`AllOf`, :class:`AnyOf`) — the process
      resumes with the signal's value, or the signal's exception is
      raised at the yield site;
    * a non-negative ``float`` (strictly a float: a yielded int is still
      rejected, as ever) — resume after that many virtual milliseconds,
      equivalent to yielding ``sim.timeout(delay)`` but without
      allocating a signal: the timer resumes the process directly from
      the heap;
    * ``None`` — resume on the next scheduler step (a cooperative hop).

    The process itself is a signal: it succeeds with the generator's
    return value, or fails with its uncaught exception.
    """

    __slots__ = (
        "_generator",
        "_timer_cb",
        "_wait_cb",
        "_charge_res",
        "_charge_delay",
        "_charge_start_cb",
        "_charge_timer_cb",
        "_charge_resume_cb",
    )

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"Process requires a generator, got {generator!r}")
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        # Bound once: these are scheduled on every timer yield / signal
        # wait / CPU charge, and bound-method creation per wait adds up.
        self._timer_cb = self._timer_resume
        self._wait_cb = self._on_wait_done
        self._charge_res: Any = None
        self._charge_delay = 0.0
        self._charge_start_cb = self._charge_start
        self._charge_timer_cb = self._charge_timer
        self._charge_resume_cb = self._charge_resume
        # The first step is always queued (never run inline): callers may
        # continue setting up state between process() and run().
        sim.call_soon(self._step, None, None)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        # Trampoline: consume already-triggered waitables in a loop
        # instead of round-tripping through the scheduler.  Inlining is
        # only legal while the simulator is *idle at the current
        # timestamp* — otherwise a queued same-time callback (with a
        # smaller sequence number) would be overtaken, changing the
        # deterministic order.  When idle, the queued resume would have
        # been the very next callback anyway, so running it now is
        # exactly equivalent.
        sim = self.sim
        generator = self._generator
        send = generator.send
        immediate = sim._immediate
        heap = sim._heap
        while True:
            try:
                if exc is not None:
                    target = generator.throw(exc)
                else:
                    target = send(value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as step_exc:  # noqa: BLE001 - must reach waiters
                self.fail(step_exc)
                return
            if type(target) is float:
                if target < 0.0:
                    sim.call_soon(
                        self._step,
                        None,
                        SimulationError(
                            f"process {self.name!r} yielded non-waitable {target!r}"
                        ),
                    )
                    return
                # A raw delay: the timer resumes this process directly,
                # no signal allocation, no completion round-trip.
                # Fast-forward: with nothing queued at the current time,
                # no heap event at/before the fire time, and the run
                # horizon not in between, the timer entry would be the
                # very next pop — advance the clock inline instead.
                if not immediate:
                    fire_at = sim.now + target
                    until = sim._until
                    if (not heap or heap[0][0] > fire_at) and (
                        until is None or fire_at <= until
                    ):
                        sim.now = fire_at
                        if sim._max_steps is not None:
                            sim._step_count += 2  # the timer pop + resume
                            if sim._step_count > sim._max_steps:
                                raise SimulationError(
                                    f"exceeded max_steps={sim._max_steps}"
                                )
                        value = exc = None
                        continue
                sim._sequence += 1
                if target == 0.0:
                    immediate.append((sim.now, sim._sequence, self._timer_cb, ()))
                else:
                    heapq.heappush(
                        heap,
                        (sim.now + target, sim._sequence, self._timer_cb, ()),
                    )
                return
            if type(target) is CpuCharge:
                resource = target.resource
                delay = target.delay
                if delay < 0.0:
                    # Mirror the raw-delay branch: negative work is a
                    # programming error, surfaced at the yield site.
                    sim.call_soon(
                        self._step,
                        None,
                        SimulationError(
                            f"process {self.name!r} yielded negative "
                            f"CPU charge {delay!r}"
                        ),
                    )
                    return
                if resource.acquire_now():
                    self._charge_res = resource
                    if immediate or (heap and heap[0][0] <= sim.now):
                        # Not idle: the historical triggered grant would
                        # queue one resume behind the pending callbacks;
                        # replicate it, then start the service timer.
                        self._charge_delay = delay
                        sim.call_soon(self._charge_start_cb)
                        return
                    if sim._max_steps is not None:  # the elided grant hop
                        sim._step_count += 1
                        if sim._step_count > sim._max_steps:
                            raise SimulationError(
                                f"exceeded max_steps={sim._max_steps}"
                            )
                    # Service timer, mirroring the raw-delay branch
                    # (fast-forward included); release on fire.
                    fire_at = sim.now + delay
                    until = sim._until
                    if (not heap or heap[0][0] > fire_at) and (
                        until is None or fire_at <= until
                    ):
                        sim.now = fire_at
                        if sim._max_steps is not None:
                            sim._step_count += 2
                            if sim._step_count > sim._max_steps:
                                raise SimulationError(
                                    f"exceeded max_steps={sim._max_steps}"
                                )
                        self._charge_res = None
                        resource.release_unit()
                        value = exc = None
                        continue
                    sim._sequence += 1
                    if delay == 0.0:
                        immediate.append(
                            (sim.now, sim._sequence, self._charge_timer_cb, ())
                        )
                    else:
                        heapq.heappush(
                            heap,
                            (sim.now + delay, sim._sequence, self._charge_timer_cb, ()),
                        )
                    return
                # Contended: wait for a unit, then run the timer.  The
                # releaser schedules the callback exactly where a grant
                # signal's completion would have queued it.
                self._charge_res = resource
                self._charge_delay = delay
                resource.enqueue_waiter(self._charge_start_cb)
                return
            if isinstance(target, Signal):
                # Inline idle_at_now(): this is the hottest branch.
                if (
                    target._triggered
                    and not immediate
                    and (not heap or heap[0][0] > sim.now)
                ):
                    value, exc = target.value, target.exc
                    if sim._max_steps is not None:
                        sim._step_count += 1
                        if sim._step_count > sim._max_steps:
                            raise SimulationError(
                                f"exceeded max_steps={sim._max_steps}"
                            )
                    continue
                target.add_callback(self._wait_cb)
                return
            if target is None:
                if sim.idle_at_now():
                    value = exc = None
                    sim._count_inline_step()
                    continue
                sim.call_soon(self._step, None, None)
                return
            error = SimulationError(
                f"process {self.name!r} yielded non-waitable {target!r}"
            )
            sim.call_soon(self._step, None, error)
            return

    def _charge_start(self, _signal: Optional[Signal] = None) -> None:
        # Holding the unit (taken synchronously, or handed over by a
        # releaser); start the service timer.  Mirrors the raw-delay
        # yield branch, fast-forward included.
        sim = self.sim
        delay = self._charge_delay
        heap = sim._heap
        if not sim._immediate:
            fire_at = sim.now + delay
            until = sim._until
            if (not heap or heap[0][0] > fire_at) and (
                until is None or fire_at <= until
            ):
                sim.now = fire_at
                if sim._max_steps is not None:
                    sim._step_count += 2
                    if sim._step_count > sim._max_steps:
                        raise SimulationError(f"exceeded max_steps={sim._max_steps}")
                resource, self._charge_res = self._charge_res, None
                resource.release_unit()
                self._step(None, None)
                return
        sim._sequence += 1
        if delay == 0.0:
            sim._immediate.append((sim.now, sim._sequence, self._charge_timer_cb, ()))
        else:
            heapq.heappush(
                heap, (sim.now + delay, sim._sequence, self._charge_timer_cb, ())
            )

    def _charge_timer(self) -> None:
        # The service timer fired; the release runs at the (possibly
        # queued) resume — exactly where the use() generator's finally
        # block ran.
        sim = self.sim
        if not sim._immediate and (not sim._heap or sim._heap[0][0] > sim.now):
            sim._count_inline_step()
            resource, self._charge_res = self._charge_res, None
            resource.release_unit()
            self._step(None, None)
        else:
            sim._sequence += 1
            sim._immediate.append((sim.now, sim._sequence, self._charge_resume_cb, ()))

    def _charge_resume(self) -> None:
        resource, self._charge_res = self._charge_res, None
        resource.release_unit()
        self._step(None, None)

    def _timer_resume(self) -> None:
        # Fired from the heap when a yielded raw delay elapses.  The
        # signal-based path queued the resume behind whatever else is
        # pending at the fire time; replicate that unless idle (where
        # the queued resume would run immediately anyway).
        sim = self.sim
        if not sim._immediate and (not sim._heap or sim._heap[0][0] > sim.now):
            sim._count_inline_step()
            self._step(None, None)
        else:
            sim._sequence += 1
            sim._immediate.append((sim.now, sim._sequence, self._step, (None, None)))

    def _on_wait_done(self, signal: Signal) -> None:
        self._step(signal.value, signal.exc)


class Simulator:
    """The virtual clock and scheduler.

    Determinism: scheduled callbacks with equal fire times run in
    scheduling order (a monotonically increasing sequence number breaks
    ties), so a fixed program + fixed RNG seeds always produces identical
    traces.

    Zero-delay callbacks — the bulk of a protocol simulation (signal
    completions, process resumes, same-time hops) — bypass the heap via
    an *immediate queue*, a FIFO deque whose entries carry the same
    ``(time, sequence)`` keys as heap entries.  The run loop merges the
    two by key, so the executed order is identical to the heap-only
    kernel while zero-delay scheduling costs O(1) instead of O(log n).
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Any] = []
        self._immediate: Deque[Tuple[float, int, Callable, tuple]] = deque()
        self._sequence = 0
        self._step_count = 0
        self._max_steps: Optional[int] = None
        self._until: Optional[float] = None

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` virtual milliseconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._sequence += 1
        if delay == 0.0:
            self._immediate.append((self.now, self._sequence, callback, args))
        else:
            heapq.heappush(self._heap, (self.now + delay, self._sequence, callback, args))

    def call_soon(self, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` at the current time (after pending work).

        Equivalent to ``schedule(0.0, ...)``, skipping the delay check.
        """
        self._sequence += 1
        self._immediate.append((self.now, self._sequence, callback, args))

    def idle_at_now(self) -> bool:
        """True when no queued callback is due at the current timestamp.

        Fast paths (the process trampoline, uncontended resource use)
        may only shortcut the scheduler when this holds: the shortcut
        then runs exactly what would have been the next callback.
        """
        if self._immediate:
            return False
        heap = self._heap
        return not heap or heap[0][0] > self.now

    def _count_inline_step(self) -> None:
        """Account an inline trampoline resume as one scheduler step.

        Steps are only counted while a ``max_steps`` budget is active.
        """
        if self._max_steps is not None:
            self._step_count += 1
            if self._step_count > self._max_steps:
                raise SimulationError(f"exceeded max_steps={self._max_steps}")

    def signal(self, name: str = "") -> Signal:
        """Create a fresh pending :class:`Signal`."""
        return Signal(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a signal firing after ``delay`` ms."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Spawn a new process driving ``generator``."""
        return Process(self, generator, name)

    def all_of(self, children: Iterable[Signal]) -> AllOf:
        """Signal that completes when all ``children`` complete."""
        return AllOf(self, children)

    def any_of(self, children: Iterable[Signal]) -> AnyOf:
        """Signal that completes when the first child completes."""
        return AnyOf(self, children)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_steps: Optional[int] = None) -> float:
        """Run the simulation.

        ``until`` stops the clock at that virtual time (events scheduled
        later stay queued); ``max_steps`` bounds the number of callbacks
        (a safety valve against accidental infinite loops).  Returns the
        final clock value.
        """
        heap = self._heap
        immediate = self._immediate
        heappop = heapq.heappop
        self._max_steps = max_steps
        self._until = until
        # The dispatch loop is an allocation storm of short-lived,
        # mostly acyclic objects; cyclic-GC generation scans in the
        # middle of it are pure overhead.  Pause collection while
        # dispatching (restored in the finally; a paused collector is
        # invisible to the simulation — determinism is unaffected).
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        # The loop merges the immediate queue and the heap on
        # (time, seq): both are ordered, so comparing the two fronts
        # yields the globally next callback.  Three specializations keep
        # per-dispatch branch count minimal; step accounting only runs
        # under a max_steps budget.
        try:
            if max_steps is None and until is None:
                while immediate or heap:
                    if immediate and (not heap or heap[0] >= immediate[0]):
                        entry = immediate.popleft()
                    else:
                        entry = heappop(heap)
                    self.now = entry[0]
                    entry[2](*entry[3])
            elif max_steps is None:
                while immediate or heap:
                    if immediate and (not heap or heap[0] >= immediate[0]):
                        entry = immediate[0]
                        if entry[0] > until:
                            self.now = until
                            return self.now
                        immediate.popleft()
                    else:
                        entry = heap[0]
                        if entry[0] > until:
                            self.now = until
                            return self.now
                        heappop(heap)
                    self.now = entry[0]
                    entry[2](*entry[3])
            else:
                while immediate or heap:
                    if immediate and (not heap or heap[0] >= immediate[0]):
                        entry = immediate[0]
                        from_immediate = True
                    else:
                        entry = heap[0]
                        from_immediate = False
                    fire_at = entry[0]
                    if until is not None and fire_at > until:
                        self.now = until
                        return self.now
                    if from_immediate:
                        immediate.popleft()
                    else:
                        heappop(heap)
                    self.now = fire_at
                    self._step_count += 1
                    if self._step_count > max_steps:
                        raise SimulationError(f"exceeded max_steps={max_steps}")
                    entry[2](*entry[3])
        finally:
            self._max_steps = None
            self._until = None
            if gc_was_enabled:
                gc.enable()
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def run_process(self, generator: Generator, name: str = "",
                    until: Optional[float] = None) -> Any:
        """Convenience: spawn ``generator`` and run until it completes.

        Returns the process return value; re-raises its exception.
        """
        proc = self.process(generator, name)
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError(f"process {proc.name!r} did not finish")
        if proc.exc is not None:
            raise proc.exc
        return proc.value

    @property
    def pending_events(self) -> int:
        """Number of callbacks still queued (heap + immediate queue)."""
        return len(self._heap) + len(self._immediate)
