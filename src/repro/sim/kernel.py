"""Discrete-event simulation kernel.

This module is the substrate on which the whole reproduction runs.  The
paper evaluated AEON on EC2 with a C++ runtime; a Python thread-based
reproduction would measure GIL contention rather than protocol behaviour,
so instead every runtime (AEON, EventWave, Orleans) executes on this
deterministic simulator.  The kernel is deliberately small and SimPy-like:

* :class:`Simulator` owns the virtual clock and the event heap.
* :class:`Signal` is a one-shot occurrence that processes can wait on.
* :class:`Timeout` is a signal that fires after a virtual delay.
* :class:`Process` drives a generator; each ``yield`` suspends the process
  until the yielded waitable triggers.

Time is a float in **milliseconds** throughout the repository; this makes
the paper's numbers (latencies of a few ms, SLA of 10 ms) read naturally.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Simulator",
    "Signal",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for kernel misuse (e.g. waiting on a consumed signal)."""


class Signal:
    """A one-shot occurrence with a value or an exception.

    A signal starts *pending*; it is completed exactly once with either
    :meth:`succeed` or :meth:`fail`.  Processes wait on signals by
    yielding them.  Multiple processes may wait on the same signal.
    """

    __slots__ = ("sim", "callbacks", "_triggered", "value", "exc", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.callbacks: List[Callable[["Signal"], None]] = []
        self._triggered = False
        self.value: Any = None
        self.exc: Optional[BaseException] = None
        self.name = name

    @property
    def triggered(self) -> bool:
        """True once the signal has succeeded or failed."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the signal completed without an exception."""
        return self._triggered and self.exc is None

    def succeed(self, value: Any = None) -> "Signal":
        """Complete the signal successfully, waking all waiters now."""
        self._complete(value, None)
        return self

    def fail(self, exc: BaseException) -> "Signal":
        """Complete the signal with an exception.

        The exception is re-raised inside every waiting process at its
        ``yield`` site.
        """
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._complete(None, exc)
        return self

    def _complete(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._triggered:
            raise SimulationError(f"signal {self.name!r} completed twice")
        self._triggered = True
        self.value = value
        self.exc = exc
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            self.sim.schedule(0.0, callback, self)

    def add_callback(self, callback: Callable[["Signal"], None]) -> None:
        """Invoke *callback(signal)* when the signal completes.

        If the signal already completed, the callback runs at the current
        simulation time (still asynchronously, via the event heap).
        """
        if self._triggered:
            self.sim.schedule(0.0, callback, self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._triggered else "pending"
        return f"<Signal {self.name!r} {state}>"


class Timeout(Signal):
    """A signal that succeeds after ``delay`` virtual milliseconds."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim, name=f"timeout({delay})")
        self.delay = delay
        sim.schedule(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        self.succeed(value)


class AllOf(Signal):
    """Succeeds when every child signal has completed.

    The value is the list of child values in the order given.  If any
    child fails, this fails with the first failure (but only after all
    children completed, keeping lock bookkeeping in higher layers simple).
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", children: Iterable[Signal]) -> None:
        super().__init__(sim, name="all_of")
        self._children = list(children)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._child_done)

    def _child_done(self, _child: Signal) -> None:
        self._remaining -= 1
        if self._remaining > 0:
            return
        first_failure = next((c.exc for c in self._children if c.exc), None)
        if first_failure is not None:
            self.fail(first_failure)
        else:
            self.succeed([c.value for c in self._children])


class AnyOf(Signal):
    """Succeeds when the first child signal completes.

    The value is ``(index, value)`` of the first completed child; a child
    failure fails this signal.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", children: Iterable[Signal]) -> None:
        super().__init__(sim, name="any_of")
        children = list(children)
        if not children:
            raise ValueError("AnyOf requires at least one child")
        for index, child in enumerate(children):
            child.add_callback(self._make_child_done(index))

    def _make_child_done(self, index: int) -> Callable[[Signal], None]:
        def on_done(child: Signal) -> None:
            if self.triggered:
                return
            if child.exc is not None:
                self.fail(child.exc)
            else:
                self.succeed((index, child.value))

        return on_done


class Process(Signal):
    """A generator-driven simulated activity.

    The generator may yield:

    * any :class:`Signal` (including :class:`Timeout`, another
      :class:`Process`, :class:`AllOf`, :class:`AnyOf`) — the process
      resumes with the signal's value, or the signal's exception is
      raised at the yield site;
    * ``None`` — resume on the next scheduler step (a cooperative hop).

    The process itself is a signal: it succeeds with the generator's
    return value, or fails with its uncaught exception.
    """

    __slots__ = ("_generator",)

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"Process requires a generator, got {generator!r}")
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        sim.schedule(0.0, self._step, _Resume(None, None))

    def _step(self, resume: "_Resume") -> None:
        try:
            if resume.exc is not None:
                target = self._generator.throw(resume.exc)
            else:
                target = self._generator.send(resume.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - must reach waiters
            self.fail(exc)
            return
        if target is None:
            self.sim.schedule(0.0, self._step, _Resume(None, None))
        elif isinstance(target, Signal):
            target.add_callback(self._on_wait_done)
        else:
            error = SimulationError(
                f"process {self.name!r} yielded non-waitable {target!r}"
            )
            self.sim.schedule(0.0, self._step, _Resume(None, error))

    def _on_wait_done(self, signal: Signal) -> None:
        self._step(_Resume(signal.value, signal.exc))


class _Resume:
    """What to feed back into a process generator on its next step."""

    __slots__ = ("value", "exc")

    def __init__(self, value: Any, exc: Optional[BaseException]) -> None:
        self.value = value
        self.exc = exc


class Simulator:
    """The virtual clock and scheduler.

    Determinism: scheduled callbacks with equal fire times run in
    scheduling order (a monotonically increasing sequence number breaks
    ties), so a fixed program + fixed RNG seeds always produces identical
    traces.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Any] = []
        self._sequence = 0
        self._step_count = 0

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` virtual milliseconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._sequence += 1
        heapq.heappush(self._heap, (self.now + delay, self._sequence, callback, args))

    def signal(self, name: str = "") -> Signal:
        """Create a fresh pending :class:`Signal`."""
        return Signal(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a signal firing after ``delay`` ms."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Spawn a new process driving ``generator``."""
        return Process(self, generator, name)

    def all_of(self, children: Iterable[Signal]) -> AllOf:
        """Signal that completes when all ``children`` complete."""
        return AllOf(self, children)

    def any_of(self, children: Iterable[Signal]) -> AnyOf:
        """Signal that completes when the first child completes."""
        return AnyOf(self, children)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_steps: Optional[int] = None) -> float:
        """Run the simulation.

        ``until`` stops the clock at that virtual time (events scheduled
        later stay queued); ``max_steps`` bounds the number of callbacks
        (a safety valve against accidental infinite loops).  Returns the
        final clock value.
        """
        while self._heap:
            fire_at, _seq, callback, args = self._heap[0]
            if until is not None and fire_at > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = fire_at
            self._step_count += 1
            if max_steps is not None and self._step_count > max_steps:
                raise SimulationError(f"exceeded max_steps={max_steps}")
            callback(*args)
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def run_process(self, generator: Generator, name: str = "",
                    until: Optional[float] = None) -> Any:
        """Convenience: spawn ``generator`` and run until it completes.

        Returns the process return value; re-raises its exception.
        """
        proc = self.process(generator, name)
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError(f"process {proc.name!r} did not finish")
        if proc.exc is not None:
            raise proc.exc
        return proc.value

    @property
    def pending_events(self) -> int:
        """Number of callbacks still queued on the heap."""
        return len(self._heap)
