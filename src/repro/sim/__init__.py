"""Deterministic discrete-event simulation substrate.

This subpackage replaces the paper's EC2 testbed: it models virtual
machines (:mod:`repro.sim.cluster`), the datacenter network
(:mod:`repro.sim.network`), and provides the process/scheduling kernel
(:mod:`repro.sim.kernel`) that every runtime in the repository runs on.
"""

from .cluster import (
    Cluster,
    InstanceType,
    INSTANCE_TYPES,
    M1_LARGE,
    M1_MEDIUM,
    M1_SMALL,
    M3_LARGE,
    Server,
)
from .kernel import AllOf, AnyOf, Process, Signal, SimulationError, Simulator, Timeout
from .metrics import (
    LatencyRecorder,
    LatencySample,
    ThroughputRecorder,
    TimeSeries,
    mean,
    percentile,
)
from .network import DeliveryError, LatencyModel, Message, Network
from .queues import Notifier, Resource, Store
from .rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Cluster",
    "DeliveryError",
    "InstanceType",
    "INSTANCE_TYPES",
    "LatencyModel",
    "LatencyRecorder",
    "LatencySample",
    "M1_LARGE",
    "M1_MEDIUM",
    "M1_SMALL",
    "M3_LARGE",
    "mean",
    "Message",
    "Network",
    "Notifier",
    "percentile",
    "Process",
    "Resource",
    "RngRegistry",
    "Server",
    "Signal",
    "SimulationError",
    "Simulator",
    "Store",
    "ThroughputRecorder",
    "TimeSeries",
    "Timeout",
]
