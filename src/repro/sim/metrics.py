"""Measurement utilities: latency records, throughput series, percentiles.

The experiment harness asks every runtime the same questions the paper
asks its testbed: completed events per second (scaling figures), the
latency distribution (performance figures), latency/server-count time
series (elasticity figures) and windowed throughput (migration figures).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from random import Random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_SAMPLE_THRESHOLD",
    "LatencySample",
    "LatencyRecorder",
    "ThroughputRecorder",
    "TimeSeries",
    "percentile",
    "mean",
]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(values) / len(values) if values else 0.0


def percentile(values: Sequence[float], pct: float, presorted: bool = False) -> float:
    """The ``pct``-th percentile (0..100) by nearest-rank; 0.0 if empty.

    Pass ``presorted=True`` to skip the sort when ``values`` is already
    ordered (callers issuing percentile batches sort once up front).
    """
    if not values:
        return 0.0
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile out of range: {pct}")
    ordered = values if presorted else sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(pct / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass(frozen=True)
class LatencySample:
    """One completed request: submission time, completion time, tag."""

    start_ms: float
    end_ms: float
    tag: str = ""

    @property
    def latency_ms(self) -> float:
        """End-to-end latency in milliseconds."""
        return self.end_ms - self.start_ms


#: Exact-to-sampled switchover: below this many samples the recorder
#: keeps every completion (the golden-pinned figures run far below it,
#: so their metrics stay exact and byte-identical); at/above it the
#: recorder degrades to a fixed-size reservoir plus exact scalar
#: aggregates, bounding memory for massive-tier runs.
DEFAULT_SAMPLE_THRESHOLD = 4_000_000


class LatencyRecorder:
    """Collects completed-request samples and answers latency questions.

    Storage is three append-only parallel lists (start, end, tag) — one
    dataclass allocation per completed request was a measurable share of
    the simulation hot path.  Completions from a simulator arrive in
    nondecreasing end-time order, so ``since_ms`` windows are located
    with :func:`bisect.bisect_left` instead of an O(n) scan; out-of-order
    records (hand-fed in tests) degrade gracefully to scans.

    **Reservoir mode.**  Once ``sample_threshold`` samples have been
    recorded, the recorder switches to Algorithm R reservoir sampling
    over a fixed-size buffer of ``(start, end, tag)`` triples, seeded
    deterministically: total count and latency sum stay exact (so
    ``len``, ``count()`` and ``mean_latency()`` over the full run are
    exact), while window/percentile queries answer from the reservoir —
    unbiased estimates with the usual ~1/sqrt(k) error for a window
    holding ``k`` reservoir points.  The threshold is far above every
    golden-pinned figure's sample count, so quick/full figures never
    leave exact mode.
    """

    def __init__(
        self,
        sample_threshold: int = DEFAULT_SAMPLE_THRESHOLD,
        reservoir_size: int = 65536,
        sample_seed: int = 0,
    ) -> None:
        self._starts: List[float] = []
        self._ends: List[float] = []
        self._tags: List[str] = []
        # End times seen so far are nondecreasing (bisect is valid).
        self._monotonic = True
        # Single-slot cache of the last sorted latency view, keyed by
        # (record-version, since_ms, tag): percentile batches over the
        # same window sort once instead of once per call.
        self._sorted_key: Optional[tuple] = None
        self._sorted_view: List[float] = []
        # Single-slot cache of the last window-bucket view (same idea):
        # windowed count + percentile series over the same horizon reuse
        # one O(n) bucketing pass instead of rescanning per query.
        self._buckets_key: Optional[tuple] = None
        self._buckets_view: Dict[int, List[float]] = {}
        # Reservoir-sampling state (engaged at sample_threshold).
        self._sample_threshold = max(1, int(sample_threshold))
        self._reservoir_size = max(1, int(reservoir_size))
        self._sample_seed = sample_seed
        self._reservoir: Optional[List[Tuple[float, float, str]]] = None
        self._rng: Optional[Random] = None
        self._seen = 0
        self._lat_sum = 0.0

    @property
    def sampling(self) -> bool:
        """Whether the recorder has switched to reservoir mode."""
        return self._reservoir is not None

    def __len__(self) -> int:
        if self._reservoir is not None:
            return self._seen
        return len(self._ends)

    def record(self, start_ms: float, end_ms: float, tag: str = "") -> None:
        """Record one completed request."""
        if end_ms < start_ms:
            raise ValueError("request completed before it started")
        reservoir = self._reservoir
        if reservoir is not None:
            self._seen += 1
            self._lat_sum += end_ms - start_ms
            if len(reservoir) < self._reservoir_size:
                reservoir.append((start_ms, end_ms, tag))
            else:
                j = self._rng.randrange(self._seen)
                if j < self._reservoir_size:
                    reservoir[j] = (start_ms, end_ms, tag)
            return
        ends = self._ends
        if ends and end_ms < ends[-1]:
            self._monotonic = False
        self._starts.append(start_ms)
        ends.append(end_ms)
        self._tags.append(tag)
        if len(ends) >= self._sample_threshold:
            self._engage_sampling()

    def _engage_sampling(self) -> None:
        """Switch to reservoir mode: replay the exact samples, drop them.

        Algorithm R over the existing stream with a fixed-seed RNG, so
        the reservoir (and everything derived from it) is a pure
        function of the recorded stream and the seed.
        """
        rng = Random(self._sample_seed)
        size = self._reservoir_size
        reservoir: List[Tuple[float, float, str]] = []
        starts, ends, tags = self._starts, self._ends, self._tags
        seen = 0
        lat_sum = 0.0
        for i in range(len(ends)):
            seen += 1
            lat_sum += ends[i] - starts[i]
            if len(reservoir) < size:
                reservoir.append((starts[i], ends[i], tags[i]))
            else:
                j = rng.randrange(seen)
                if j < size:
                    reservoir[j] = (starts[i], ends[i], tags[i])
        self._reservoir = reservoir
        self._rng = rng
        self._seen = seen
        self._lat_sum = lat_sum
        self._starts = []
        self._ends = []
        self._tags = []
        self._sorted_key = None
        self._buckets_key = None

    def _scale(self) -> float:
        """How many recorded samples each reservoir point represents."""
        reservoir = self._reservoir
        if not reservoir:
            return 1.0
        return self._seen / len(reservoir)

    @property
    def samples(self) -> List[LatencySample]:
        """Materialized sample objects (compatibility/introspection view).

        In reservoir mode this is the reservoir's content — a uniform
        random subset of the stream — not every completion.
        """
        if self._reservoir is not None:
            return [LatencySample(s, e, t) for s, e, t in self._reservoir]
        return [
            LatencySample(s, e, t)
            for s, e, t in zip(self._starts, self._ends, self._tags)
        ]

    def _first_at_or_after(self, since_ms: float) -> int:
        """Index of the first sample completing at/after ``since_ms``."""
        if since_ms <= 0.0:
            return 0
        if self._monotonic:
            return bisect.bisect_left(self._ends, since_ms)
        for index, end in enumerate(self._ends):
            if end >= since_ms:
                return index
        return len(self._ends)

    def latencies(self, since_ms: float = 0.0, tag: Optional[str] = None) -> List[float]:
        """Latency values completed at/after ``since_ms`` (optionally by tag).

        Reservoir mode answers from the sampled subset.
        """
        reservoir = self._reservoir
        if reservoir is not None:
            return [
                e - s for s, e, t in reservoir
                if e >= since_ms and (tag is None or t == tag)
            ]
        lo = self._first_at_or_after(since_ms)
        starts, ends, since = self._starts, self._ends, since_ms
        if tag is None:
            if self._monotonic:
                return [ends[i] - starts[i] for i in range(lo, len(ends))]
            return [
                ends[i] - starts[i] for i in range(lo, len(ends)) if ends[i] >= since
            ]
        tags = self._tags
        return [
            ends[i] - starts[i]
            for i in range(lo, len(ends))
            if tags[i] == tag and (self._monotonic or ends[i] >= since)
        ]

    def latencies_between(
        self,
        since_ms: float,
        before_ms: float,
        tags: Optional[Sequence[str]] = None,
    ) -> List[float]:
        """Latencies of completions in ``[since_ms, before_ms)``, record order.

        ``tags`` restricts the result to samples whose tag is in the
        given set — how co-tenancy scenarios split one shared latency
        stream into per-application views.  Reservoir mode answers from
        the sampled subset.
        """
        reservoir = self._reservoir
        if reservoir is not None:
            wanted = None if tags is None else set(tags)
            return [
                e - s for s, e, t in reservoir
                if since_ms <= e < before_ms and (wanted is None or t in wanted)
            ]
        starts, ends = self._starts, self._ends
        tagset = None if tags is None else set(tags)
        if self._monotonic:
            lo = bisect.bisect_left(ends, since_ms)
            hi = bisect.bisect_left(ends, before_ms)
            if tagset is None:
                return [ends[i] - starts[i] for i in range(lo, hi)]
            sample_tags = self._tags
            return [
                ends[i] - starts[i]
                for i in range(lo, hi)
                if sample_tags[i] in tagset
            ]
        sample_tags = self._tags
        return [
            ends[i] - starts[i]
            for i in range(len(ends))
            if since_ms <= ends[i] < before_ms
            and (tagset is None or sample_tags[i] in tagset)
        ]

    def count(self, since_ms: float = 0.0) -> int:
        """Number of completions at/after ``since_ms``.

        Exact in exact mode; in reservoir mode the full-stream count is
        exact and windowed counts are scaled reservoir estimates.
        """
        if self._reservoir is not None:
            if since_ms <= 0.0:
                return self._seen
            reservoir = self._reservoir
            if not reservoir:
                return 0
            matching = sum(1 for _s, e, _t in reservoir if e >= since_ms)
            return int(round(matching * self._scale()))
        if self._monotonic:
            return len(self._ends) - self._first_at_or_after(since_ms)
        return sum(1 for end in self._ends if end >= since_ms)

    def mean_latency(self, since_ms: float = 0.0) -> float:
        """Mean latency of completions at/after ``since_ms``.

        The full-stream mean stays exact in reservoir mode (tracked as
        a running sum); windowed means are reservoir estimates.
        """
        if self._reservoir is not None and since_ms <= 0.0:
            return self._lat_sum / self._seen if self._seen else 0.0
        return mean(self.latencies(since_ms))

    def _sorted_latencies(self, since_ms: float, tag: Optional[str]) -> List[float]:
        key = (len(self._ends), self._seen, since_ms, tag)
        if key != self._sorted_key:
            self._sorted_view = sorted(self.latencies(since_ms, tag))
            self._sorted_key = key
        return self._sorted_view

    def percentile_latency(self, pct: float, since_ms: float = 0.0) -> float:
        """Latency percentile of completions at/after ``since_ms``.

        Repeated percentile queries over the same window (p50/p99/...
        batches in ``measure()`` and SLA reports) reuse one cached
        sorted view instead of re-sorting per call.
        """
        return percentile(self._sorted_latencies(since_ms, None), pct,
                          presorted=True)

    def fraction_over(self, threshold_ms: float, since_ms: float = 0.0) -> float:
        """Fraction of requests with latency > threshold (SLA accounting)."""
        lats = self.latencies(since_ms)
        if not lats:
            return 0.0
        return sum(1 for value in lats if value > threshold_ms) / len(lats)

    def windowed_mean(self, window_ms: float, horizon_ms: float) -> "TimeSeries":
        """Mean latency per ``window_ms`` bucket over [0, horizon)."""
        buckets = self._window_buckets(window_ms, horizon_ms, None)
        points = [
            ((index + 0.5) * window_ms, mean(values))
            for index, values in sorted(buckets.items())
        ]
        return TimeSeries(points)

    def _window_buckets(
        self, window_ms: float, horizon_ms: float, exclude_tag: Optional[str]
    ) -> Dict[int, List[float]]:
        """Latencies bucketed by completion window, optionally minus a tag.

        One O(n) bucketing pass serves every windowed series over the
        same (window, horizon, tag) triple: the result is cached in a
        single slot keyed like the sorted-latency view, so the
        count+percentile query pairs issued by the availability
        experiments stop rescanning the full record per query.  Callers
        treat the returned dict as read-only.
        """
        key = (len(self._ends), self._seen, window_ms, horizon_ms, exclude_tag)
        if key == self._buckets_key:
            return self._buckets_view
        buckets: Dict[int, List[float]] = {}
        if self._reservoir is not None:
            for start, end, tag in self._reservoir:
                if end >= horizon_ms:
                    continue
                if exclude_tag is not None and tag == exclude_tag:
                    continue
                buckets.setdefault(int(end // window_ms), []).append(end - start)
        else:
            starts, ends, tags = self._starts, self._ends, self._tags
            for i in range(len(ends)):
                end = ends[i]
                if end >= horizon_ms:
                    if self._monotonic:
                        break
                    continue
                if exclude_tag is not None and tags[i] == exclude_tag:
                    continue
                buckets.setdefault(int(end // window_ms), []).append(end - starts[i])
        self._buckets_key = key
        self._buckets_view = buckets
        return buckets

    def _windowed_series(
        self,
        window_ms: float,
        horizon_ms: float,
        exclude_tag: Optional[str],
        aggregate,
    ) -> "TimeSeries":
        """One point per window over [0, horizon): ``aggregate(values, span_s)``.

        Every bucket appears — ``aggregate`` receives ``None`` for empty
        windows — so outage gaps show as explicit points.
        """
        buckets = self._window_buckets(window_ms, horizon_ms, exclude_tag)
        points: List[Tuple[float, float]] = []
        index = 0
        start = 0.0
        while start < horizon_ms:
            end = min(start + window_ms, horizon_ms)
            value = aggregate(buckets.get(index), (end - start) / 1000.0)
            points.append(((start + end) / 2.0, value))
            index += 1
            start = end
        return TimeSeries(points)

    def windowed_count(
        self,
        window_ms: float,
        horizon_ms: float,
        exclude_tag: Optional[str] = None,
    ) -> "TimeSeries":
        """Completions/second per bucket over [0, horizon), minus a tag.

        Empty buckets report 0.0, so outage windows show as explicit
        zeros — with ``exclude_tag="!failed"`` this is the *goodput*
        series of the availability experiments.  Reservoir mode scales
        each sampled point by the stream/reservoir ratio so the rates
        stay unbiased.
        """
        weight = self._scale() if self._reservoir is not None else 1.0

        def rate(values: Optional[List[float]], span_s: float) -> float:
            if not values or span_s <= 0:
                return 0.0
            return len(values) * weight / span_s

        return self._windowed_series(window_ms, horizon_ms, exclude_tag, rate)

    def windowed_percentile(
        self,
        pct: float,
        window_ms: float,
        horizon_ms: float,
        exclude_tag: Optional[str] = None,
    ) -> "TimeSeries":
        """Latency percentile per bucket over [0, horizon), minus a tag.

        Empty buckets report 0.0 (nothing completed in the window).
        """

        def bucket_pct(values: Optional[List[float]], _span_s: float) -> float:
            return percentile(values, pct) if values else 0.0

        return self._windowed_series(window_ms, horizon_ms, exclude_tag, bucket_pct)


class ThroughputRecorder:
    """Counts completions; reports rates over intervals and windows."""

    def __init__(self) -> None:
        self.completion_times: List[float] = []

    def record(self, end_ms: float) -> None:
        """Record one completion at virtual time ``end_ms``.

        Completions arrive in nondecreasing time order from a single
        simulator, so an append keeps the list sorted.
        """
        self.completion_times.append(end_ms)

    def count_between(self, start_ms: float, end_ms: float) -> int:
        """Completions in the half-open interval [start, end)."""
        lo = bisect.bisect_left(self.completion_times, start_ms)
        hi = bisect.bisect_left(self.completion_times, end_ms)
        return hi - lo

    def rate_per_s(self, start_ms: float, end_ms: float) -> float:
        """Throughput (completions/second) over [start, end)."""
        span = end_ms - start_ms
        if span <= 0:
            return 0.0
        return self.count_between(start_ms, end_ms) / (span / 1000.0)

    def windowed_rate(self, window_ms: float, horizon_ms: float) -> "TimeSeries":
        """Throughput per ``window_ms`` bucket over [0, horizon)."""
        points: List[Tuple[float, float]] = []
        start = 0.0
        while start < horizon_ms:
            end = min(start + window_ms, horizon_ms)
            points.append(((start + end) / 2.0, self.rate_per_s(start, end)))
            start = end
        return TimeSeries(points)


@dataclass
class TimeSeries:
    """A list of ``(time_ms, value)`` points with small conveniences."""

    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, time_ms: float, value: float) -> None:
        """Append one point."""
        self.points.append((time_ms, value))

    def values(self) -> List[float]:
        """All y-values."""
        return [value for _t, value in self.points]

    def times(self) -> List[float]:
        """All x-values (milliseconds)."""
        return [time_ms for time_ms, _v in self.points]

    def mean_value(self) -> float:
        """Mean of the y-values."""
        return mean(self.values())

    def max_value(self) -> float:
        """Max of the y-values (0.0 if empty)."""
        return max(self.values()) if self.points else 0.0

    def resample(self, times: Iterable[float]) -> "TimeSeries":
        """Step-function resample at the given times (previous-point hold)."""
        result = TimeSeries()
        xs = self.times()
        for t in times:
            idx = bisect.bisect_right(xs, t) - 1
            result.add(t, self.points[idx][1] if idx >= 0 else 0.0)
        return result
