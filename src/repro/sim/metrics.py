"""Measurement utilities: latency records, throughput series, percentiles.

The experiment harness asks every runtime the same questions the paper
asks its testbed: completed events per second (scaling figures), the
latency distribution (performance figures), latency/server-count time
series (elasticity figures) and windowed throughput (migration figures).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "LatencySample",
    "LatencyRecorder",
    "ThroughputRecorder",
    "TimeSeries",
    "percentile",
    "mean",
]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(values) / len(values) if values else 0.0


def percentile(values: Sequence[float], pct: float) -> float:
    """The ``pct``-th percentile (0..100) by nearest-rank; 0.0 if empty."""
    if not values:
        return 0.0
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile out of range: {pct}")
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(pct / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass(frozen=True)
class LatencySample:
    """One completed request: submission time, completion time, tag."""

    start_ms: float
    end_ms: float
    tag: str = ""

    @property
    def latency_ms(self) -> float:
        """End-to-end latency in milliseconds."""
        return self.end_ms - self.start_ms


class LatencyRecorder:
    """Collects completed-request samples and answers latency questions."""

    def __init__(self) -> None:
        self.samples: List[LatencySample] = []

    def record(self, start_ms: float, end_ms: float, tag: str = "") -> None:
        """Record one completed request."""
        if end_ms < start_ms:
            raise ValueError("request completed before it started")
        self.samples.append(LatencySample(start_ms, end_ms, tag))

    def latencies(self, since_ms: float = 0.0, tag: Optional[str] = None) -> List[float]:
        """Latency values completed at/after ``since_ms`` (optionally by tag)."""
        return [
            s.latency_ms
            for s in self.samples
            if s.end_ms >= since_ms and (tag is None or s.tag == tag)
        ]

    def count(self, since_ms: float = 0.0) -> int:
        """Number of completions at/after ``since_ms``."""
        return sum(1 for s in self.samples if s.end_ms >= since_ms)

    def mean_latency(self, since_ms: float = 0.0) -> float:
        """Mean latency of completions at/after ``since_ms``."""
        return mean(self.latencies(since_ms))

    def percentile_latency(self, pct: float, since_ms: float = 0.0) -> float:
        """Latency percentile of completions at/after ``since_ms``."""
        return percentile(self.latencies(since_ms), pct)

    def fraction_over(self, threshold_ms: float, since_ms: float = 0.0) -> float:
        """Fraction of requests with latency > threshold (SLA accounting)."""
        lats = self.latencies(since_ms)
        if not lats:
            return 0.0
        return sum(1 for value in lats if value > threshold_ms) / len(lats)

    def windowed_mean(self, window_ms: float, horizon_ms: float) -> "TimeSeries":
        """Mean latency per ``window_ms`` bucket over [0, horizon)."""
        buckets: Dict[int, List[float]] = {}
        for sample in self.samples:
            if sample.end_ms >= horizon_ms:
                continue
            buckets.setdefault(int(sample.end_ms // window_ms), []).append(
                sample.latency_ms
            )
        points = [
            ((index + 0.5) * window_ms, mean(values))
            for index, values in sorted(buckets.items())
        ]
        return TimeSeries(points)


class ThroughputRecorder:
    """Counts completions; reports rates over intervals and windows."""

    def __init__(self) -> None:
        self.completion_times: List[float] = []

    def record(self, end_ms: float) -> None:
        """Record one completion at virtual time ``end_ms``.

        Completions arrive in nondecreasing time order from a single
        simulator, so an append keeps the list sorted.
        """
        self.completion_times.append(end_ms)

    def count_between(self, start_ms: float, end_ms: float) -> int:
        """Completions in the half-open interval [start, end)."""
        lo = bisect.bisect_left(self.completion_times, start_ms)
        hi = bisect.bisect_left(self.completion_times, end_ms)
        return hi - lo

    def rate_per_s(self, start_ms: float, end_ms: float) -> float:
        """Throughput (completions/second) over [start, end)."""
        span = end_ms - start_ms
        if span <= 0:
            return 0.0
        return self.count_between(start_ms, end_ms) / (span / 1000.0)

    def windowed_rate(self, window_ms: float, horizon_ms: float) -> "TimeSeries":
        """Throughput per ``window_ms`` bucket over [0, horizon)."""
        points: List[Tuple[float, float]] = []
        start = 0.0
        while start < horizon_ms:
            end = min(start + window_ms, horizon_ms)
            points.append(((start + end) / 2.0, self.rate_per_s(start, end)))
            start = end
        return TimeSeries(points)


@dataclass
class TimeSeries:
    """A list of ``(time_ms, value)`` points with small conveniences."""

    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, time_ms: float, value: float) -> None:
        """Append one point."""
        self.points.append((time_ms, value))

    def values(self) -> List[float]:
        """All y-values."""
        return [value for _t, value in self.points]

    def times(self) -> List[float]:
        """All x-values (milliseconds)."""
        return [time_ms for time_ms, _v in self.points]

    def mean_value(self) -> float:
        """Mean of the y-values."""
        return mean(self.values())

    def max_value(self) -> float:
        """Max of the y-values (0.0 if empty)."""
        return max(self.values()) if self.points else 0.0

    def resample(self, times: Iterable[float]) -> "TimeSeries":
        """Step-function resample at the given times (previous-point hold)."""
        result = TimeSeries()
        xs = self.times()
        for t in times:
            idx = bisect.bisect_right(xs, t) - 1
            result.add(t, self.points[idx][1] if idx >= 0 else 0.0)
        return result
