"""Measurement utilities: latency records, throughput series, percentiles.

The experiment harness asks every runtime the same questions the paper
asks its testbed: completed events per second (scaling figures), the
latency distribution (performance figures), latency/server-count time
series (elasticity figures) and windowed throughput (migration figures).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "LatencySample",
    "LatencyRecorder",
    "ThroughputRecorder",
    "TimeSeries",
    "percentile",
    "mean",
]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(values) / len(values) if values else 0.0


def percentile(values: Sequence[float], pct: float, presorted: bool = False) -> float:
    """The ``pct``-th percentile (0..100) by nearest-rank; 0.0 if empty.

    Pass ``presorted=True`` to skip the sort when ``values`` is already
    ordered (callers issuing percentile batches sort once up front).
    """
    if not values:
        return 0.0
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile out of range: {pct}")
    ordered = values if presorted else sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(pct / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass(frozen=True)
class LatencySample:
    """One completed request: submission time, completion time, tag."""

    start_ms: float
    end_ms: float
    tag: str = ""

    @property
    def latency_ms(self) -> float:
        """End-to-end latency in milliseconds."""
        return self.end_ms - self.start_ms


class LatencyRecorder:
    """Collects completed-request samples and answers latency questions.

    Storage is three append-only parallel lists (start, end, tag) — one
    dataclass allocation per completed request was a measurable share of
    the simulation hot path.  Completions from a simulator arrive in
    nondecreasing end-time order, so ``since_ms`` windows are located
    with :func:`bisect.bisect_left` instead of an O(n) scan; out-of-order
    records (hand-fed in tests) degrade gracefully to scans.
    """

    def __init__(self) -> None:
        self._starts: List[float] = []
        self._ends: List[float] = []
        self._tags: List[str] = []
        # End times seen so far are nondecreasing (bisect is valid).
        self._monotonic = True
        # Single-slot cache of the last sorted latency view, keyed by
        # (record-version, since_ms, tag): percentile batches over the
        # same window sort once instead of once per call.
        self._sorted_key: Optional[tuple] = None
        self._sorted_view: List[float] = []

    def __len__(self) -> int:
        return len(self._ends)

    def record(self, start_ms: float, end_ms: float, tag: str = "") -> None:
        """Record one completed request."""
        if end_ms < start_ms:
            raise ValueError("request completed before it started")
        ends = self._ends
        if ends and end_ms < ends[-1]:
            self._monotonic = False
        self._starts.append(start_ms)
        ends.append(end_ms)
        self._tags.append(tag)

    @property
    def samples(self) -> List[LatencySample]:
        """Materialized sample objects (compatibility/introspection view)."""
        return [
            LatencySample(s, e, t)
            for s, e, t in zip(self._starts, self._ends, self._tags)
        ]

    def _first_at_or_after(self, since_ms: float) -> int:
        """Index of the first sample completing at/after ``since_ms``."""
        if since_ms <= 0.0:
            return 0
        if self._monotonic:
            return bisect.bisect_left(self._ends, since_ms)
        for index, end in enumerate(self._ends):
            if end >= since_ms:
                return index
        return len(self._ends)

    def latencies(self, since_ms: float = 0.0, tag: Optional[str] = None) -> List[float]:
        """Latency values completed at/after ``since_ms`` (optionally by tag)."""
        lo = self._first_at_or_after(since_ms)
        starts, ends, since = self._starts, self._ends, since_ms
        if tag is None:
            if self._monotonic:
                return [ends[i] - starts[i] for i in range(lo, len(ends))]
            return [
                ends[i] - starts[i] for i in range(lo, len(ends)) if ends[i] >= since
            ]
        tags = self._tags
        return [
            ends[i] - starts[i]
            for i in range(lo, len(ends))
            if tags[i] == tag and (self._monotonic or ends[i] >= since)
        ]

    def latencies_between(
        self,
        since_ms: float,
        before_ms: float,
        tags: Optional[Sequence[str]] = None,
    ) -> List[float]:
        """Latencies of completions in ``[since_ms, before_ms)``, record order.

        ``tags`` restricts the result to samples whose tag is in the
        given set — how co-tenancy scenarios split one shared latency
        stream into per-application views.
        """
        starts, ends = self._starts, self._ends
        tagset = None if tags is None else set(tags)
        if self._monotonic:
            lo = bisect.bisect_left(ends, since_ms)
            hi = bisect.bisect_left(ends, before_ms)
            if tagset is None:
                return [ends[i] - starts[i] for i in range(lo, hi)]
            sample_tags = self._tags
            return [
                ends[i] - starts[i]
                for i in range(lo, hi)
                if sample_tags[i] in tagset
            ]
        sample_tags = self._tags
        return [
            ends[i] - starts[i]
            for i in range(len(ends))
            if since_ms <= ends[i] < before_ms
            and (tagset is None or sample_tags[i] in tagset)
        ]

    def count(self, since_ms: float = 0.0) -> int:
        """Number of completions at/after ``since_ms``."""
        if self._monotonic:
            return len(self._ends) - self._first_at_or_after(since_ms)
        return sum(1 for end in self._ends if end >= since_ms)

    def mean_latency(self, since_ms: float = 0.0) -> float:
        """Mean latency of completions at/after ``since_ms``."""
        return mean(self.latencies(since_ms))

    def _sorted_latencies(self, since_ms: float, tag: Optional[str]) -> List[float]:
        key = (len(self._ends), since_ms, tag)
        if key != self._sorted_key:
            self._sorted_view = sorted(self.latencies(since_ms, tag))
            self._sorted_key = key
        return self._sorted_view

    def percentile_latency(self, pct: float, since_ms: float = 0.0) -> float:
        """Latency percentile of completions at/after ``since_ms``.

        Repeated percentile queries over the same window (p50/p99/...
        batches in ``measure()`` and SLA reports) reuse one cached
        sorted view instead of re-sorting per call.
        """
        return percentile(self._sorted_latencies(since_ms, None), pct,
                          presorted=True)

    def fraction_over(self, threshold_ms: float, since_ms: float = 0.0) -> float:
        """Fraction of requests with latency > threshold (SLA accounting)."""
        lats = self.latencies(since_ms)
        if not lats:
            return 0.0
        return sum(1 for value in lats if value > threshold_ms) / len(lats)

    def windowed_mean(self, window_ms: float, horizon_ms: float) -> "TimeSeries":
        """Mean latency per ``window_ms`` bucket over [0, horizon)."""
        buckets = self._window_buckets(window_ms, horizon_ms, None)
        points = [
            ((index + 0.5) * window_ms, mean(values))
            for index, values in sorted(buckets.items())
        ]
        return TimeSeries(points)

    def _window_buckets(
        self, window_ms: float, horizon_ms: float, exclude_tag: Optional[str]
    ) -> Dict[int, List[float]]:
        """Latencies bucketed by completion window, optionally minus a tag."""
        buckets: Dict[int, List[float]] = {}
        starts, ends, tags = self._starts, self._ends, self._tags
        for i in range(len(ends)):
            end = ends[i]
            if end >= horizon_ms:
                if self._monotonic:
                    break
                continue
            if exclude_tag is not None and tags[i] == exclude_tag:
                continue
            buckets.setdefault(int(end // window_ms), []).append(end - starts[i])
        return buckets

    def _windowed_series(
        self,
        window_ms: float,
        horizon_ms: float,
        exclude_tag: Optional[str],
        aggregate,
    ) -> "TimeSeries":
        """One point per window over [0, horizon): ``aggregate(values, span_s)``.

        Every bucket appears — ``aggregate`` receives ``None`` for empty
        windows — so outage gaps show as explicit points.
        """
        buckets = self._window_buckets(window_ms, horizon_ms, exclude_tag)
        points: List[Tuple[float, float]] = []
        index = 0
        start = 0.0
        while start < horizon_ms:
            end = min(start + window_ms, horizon_ms)
            value = aggregate(buckets.get(index), (end - start) / 1000.0)
            points.append(((start + end) / 2.0, value))
            index += 1
            start = end
        return TimeSeries(points)

    def windowed_count(
        self,
        window_ms: float,
        horizon_ms: float,
        exclude_tag: Optional[str] = None,
    ) -> "TimeSeries":
        """Completions/second per bucket over [0, horizon), minus a tag.

        Empty buckets report 0.0, so outage windows show as explicit
        zeros — with ``exclude_tag="!failed"`` this is the *goodput*
        series of the availability experiments.
        """

        def rate(values: Optional[List[float]], span_s: float) -> float:
            if not values or span_s <= 0:
                return 0.0
            return len(values) / span_s

        return self._windowed_series(window_ms, horizon_ms, exclude_tag, rate)

    def windowed_percentile(
        self,
        pct: float,
        window_ms: float,
        horizon_ms: float,
        exclude_tag: Optional[str] = None,
    ) -> "TimeSeries":
        """Latency percentile per bucket over [0, horizon), minus a tag.

        Empty buckets report 0.0 (nothing completed in the window).
        """

        def bucket_pct(values: Optional[List[float]], _span_s: float) -> float:
            return percentile(values, pct) if values else 0.0

        return self._windowed_series(window_ms, horizon_ms, exclude_tag, bucket_pct)


class ThroughputRecorder:
    """Counts completions; reports rates over intervals and windows."""

    def __init__(self) -> None:
        self.completion_times: List[float] = []

    def record(self, end_ms: float) -> None:
        """Record one completion at virtual time ``end_ms``.

        Completions arrive in nondecreasing time order from a single
        simulator, so an append keeps the list sorted.
        """
        self.completion_times.append(end_ms)

    def count_between(self, start_ms: float, end_ms: float) -> int:
        """Completions in the half-open interval [start, end)."""
        lo = bisect.bisect_left(self.completion_times, start_ms)
        hi = bisect.bisect_left(self.completion_times, end_ms)
        return hi - lo

    def rate_per_s(self, start_ms: float, end_ms: float) -> float:
        """Throughput (completions/second) over [start, end)."""
        span = end_ms - start_ms
        if span <= 0:
            return 0.0
        return self.count_between(start_ms, end_ms) / (span / 1000.0)

    def windowed_rate(self, window_ms: float, horizon_ms: float) -> "TimeSeries":
        """Throughput per ``window_ms`` bucket over [0, horizon)."""
        points: List[Tuple[float, float]] = []
        start = 0.0
        while start < horizon_ms:
            end = min(start + window_ms, horizon_ms)
            points.append(((start + end) / 2.0, self.rate_per_s(start, end)))
            start = end
        return TimeSeries(points)


@dataclass
class TimeSeries:
    """A list of ``(time_ms, value)`` points with small conveniences."""

    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, time_ms: float, value: float) -> None:
        """Append one point."""
        self.points.append((time_ms, value))

    def values(self) -> List[float]:
        """All y-values."""
        return [value for _t, value in self.points]

    def times(self) -> List[float]:
        """All x-values (milliseconds)."""
        return [time_ms for time_ms, _v in self.points]

    def mean_value(self) -> float:
        """Mean of the y-values."""
        return mean(self.values())

    def max_value(self) -> float:
        """Max of the y-values (0.0 if empty)."""
        return max(self.values()) if self.points else 0.0

    def resample(self, times: Iterable[float]) -> "TimeSeries":
        """Step-function resample at the given times (previous-point hold)."""
        result = TimeSeries()
        xs = self.times()
        for t in times:
            idx = bisect.bisect_right(xs, t) - 1
            result.add(t, self.points[idx][1] if idx >= 0 else 0.0)
        return result
