"""Message transport between simulated endpoints.

Endpoints (servers, clients, the eManager) register a mailbox under a
name.  ``send`` delivers a payload after propagation latency plus
transmission time (size / sender NIC bandwidth).  Two properties matter
to the runtimes built on top:

* **FIFO per sender→receiver pair** — the AEON dominator protocol and the
  EventWave root sequencer both assume ordered channels; the transport
  enforces nondecreasing delivery times per pair.
* **Bandwidth serialization per sender** — large transfers (context
  migrations) queue on the sender's egress link, which is what bounds the
  eManager migration throughput in Fig. 9.

Fault injection (:mod:`repro.faults`) plugs in through two hooks kept
deliberately cheap when unused:

* ``fault`` — an optional filter object consulted on every transmission.
  It is duck typed: ``hop_penalty_ms(src, dst)`` returns extra latency
  for a process-style hop or raises :class:`DeliveryError` when the pair
  is unreachable (endpoint down, network partition);
  ``message_penalty_ms(src, dst)`` returns extra latency for a fire-and-
  forget message or ``None`` to drop it.  Process hops model TCP-like
  protocol channels (loss shows up as latency or hard failure), messages
  model UDP-like traffic (heartbeats) that is silently lost.
* ``detach``/``reattach`` — take an endpoint's mailbox off the fabric
  without forgetting its registration (a crashed server that may
  restart), unlike :meth:`Network.unregister`.

With no fault filter installed every code path is byte-identical to the
fault-free transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from .cluster import InstanceType
from .kernel import Signal, Simulator
from .queues import Store

__all__ = ["Message", "Network", "LatencyModel", "DeliveryError"]


class DeliveryError(Exception):
    """A message could not reach its destination (crash or partition).

    Raised synchronously by :meth:`Network.delay_ms` /
    :meth:`Network.delay_signal` when an installed fault filter reports
    the (src, dst) pair unreachable.  Marked ``retryable``: the failure
    is transient — callers (clients) may resubmit once the fault heals.
    """

    retryable = True


@dataclass(frozen=True)
class Message:
    """A delivered payload with its envelope."""

    src: str
    dst: str
    payload: Any
    size_bytes: int
    sent_at_ms: float


def _ms_per_byte(gbps: float) -> float:
    """Egress transmit cost in milliseconds per byte for a NIC speed."""
    return 8.0 / (gbps * 1e6) if gbps > 0 else 0.0


class LatencyModel:
    """Propagation latency between endpoints.

    Default: ``same_host_ms`` when src == dst, ``lan_ms`` otherwise (one
    intra-datacenter hop, the paper's EC2 placement).  Subclass or pass a
    custom function for other topologies.
    """

    def __init__(self, lan_ms: float = 0.25, same_host_ms: float = 0.01) -> None:
        self.lan_ms = lan_ms
        self.same_host_ms = same_host_ms

    def latency_ms(self, src: str, dst: str) -> float:
        """One-way propagation latency from ``src`` to ``dst``."""
        return self.same_host_ms if src == dst else self.lan_ms


class Network:
    """The datacenter fabric connecting all registered endpoints."""

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        default_gbps: float = 0.7,
    ) -> None:
        self.sim = sim
        self.latency = latency or LatencyModel()
        self.default_gbps = default_gbps
        self._mailboxes: Dict[str, Store] = {}
        # Per-sender egress record ``[ms_per_byte, free_at_ms, last_by_dst]``
        # — one dict lookup per transmission instead of three: transmit
        # cost (precomputed ms/byte), link busy-until (bandwidth FIFO)
        # and last delivery per destination (per-pair FIFO).
        self._egress: Dict[str, list] = {}
        self._default_ms_per_byte = _ms_per_byte(default_gbps)
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_dropped = 0
        #: Optional fault filter (see module docstring); installed by
        #: :class:`repro.faults.FaultInjector`, None in fault-free runs.
        self.fault: Optional[Any] = None
        # Mailboxes of detached (crashed-but-restartable) endpoints.
        self._detached: Dict[str, Store] = {}

    def _egress_record(self, src: str) -> list:
        record = self._egress.get(src)
        if record is None:
            # Unregistered sender (tests drive these): default NIC.
            record = [self._default_ms_per_byte, 0.0, {}]
            self._egress[src] = record
        return record

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        mailbox: Optional[Store] = None,
        itype: Optional[InstanceType] = None,
    ) -> Store:
        """Register an endpoint; returns its mailbox (created if absent)."""
        if name in self._mailboxes:
            raise ValueError(f"endpoint {name!r} already registered")
        box = mailbox if mailbox is not None else Store(self.sim, name=f"mbox:{name}")
        self._mailboxes[name] = box
        gbps = itype.nic_gbps if itype else self.default_gbps
        self._egress[name] = [_ms_per_byte(gbps), 0.0, {}]
        return box

    def unregister(self, name: str) -> None:
        """Remove an endpoint (e.g. a decommissioned server)."""
        self._mailboxes.pop(name, None)
        self._egress.pop(name, None)
        self._detached.pop(name, None)

    def detach(self, name: str) -> None:
        """Take a crashed endpoint off the fabric, keeping its registration.

        Messages in flight to it are silently lost; new ``send``s are
        dropped by the fault filter (which tracks down endpoints); the
        mailbox is restored by :meth:`reattach` on restart.
        """
        box = self._mailboxes.pop(name, None)
        if box is not None:
            self._detached[name] = box

    def reattach(self, name: str) -> None:
        """Put a restarted endpoint's mailbox back on the fabric."""
        box = self._detached.pop(name, None)
        if box is not None and name not in self._mailboxes:
            self._mailboxes[name] = box

    def mailbox(self, name: str) -> Store:
        """The mailbox of a registered endpoint."""
        return self._mailboxes[name]

    def is_registered(self, name: str) -> bool:
        """Whether ``name`` is a known endpoint."""
        return name in self._mailboxes

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send(
        self,
        src: str,
        dst: str,
        payload: Any,
        size_bytes: int = 256,
        on_delivered: Optional[Callable[[Message], None]] = None,
    ) -> None:
        """Deliver ``payload`` from ``src`` to ``dst``.

        Delivery time = egress queueing + size/bandwidth + propagation,
        clamped to preserve per-(src, dst) FIFO order.  Unknown
        destinations raise ``KeyError`` immediately (the caller — e.g.
        a client with a stale context map — handles redirection at a
        higher layer); detached (crashed) destinations and fault-filter
        drops lose the message silently, like UDP — the sender still
        pays egress, and the ghost's delivery time still advances the
        per-pair FIFO marker so later messages cannot overtake it.
        """
        dropped = dst in self._detached
        if not dropped and dst not in self._mailboxes:
            raise KeyError(f"unknown endpoint {dst!r}")
        extra = 0.0
        fault = self.fault
        if fault is not None and not dropped:
            penalty = fault.message_penalty_ms(src, dst)
            if penalty is None:
                dropped = True
            else:
                extra = penalty
        now = self.sim.now
        record = self._egress_record(src)
        free = record[1]
        finish = (now if now > free else free) + size_bytes * record[0]
        record[1] = finish
        deliver_at = finish + self.latency.latency_ms(src, dst) + extra
        last_by_dst = record[2]
        last = last_by_dst.get(dst, 0.0)
        if deliver_at < last:
            deliver_at = last
        last_by_dst[dst] = deliver_at
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        if dropped:
            self.messages_dropped += 1
            return
        message = Message(src, dst, payload, size_bytes, now)

        def deliver() -> None:
            box = self._mailboxes.get(dst)
            if box is None:
                return  # endpoint vanished mid-flight (decommissioned)
            box.put(message)
            if on_delivered is not None:
                on_delivered(message)

        self.sim.schedule(deliver_at - now, deliver)

    def delay_ms(self, src: str, dst: str, size_bytes: int = 256) -> float:
        """The wait (ms) until a ``size_bytes`` message reaches ``dst``.

        Process-style runtimes yield this float to 'travel' between
        servers — the kernel resumes them directly, no signal needed.
        Shares the egress link and per-pair FIFO bookkeeping with
        :meth:`send`, so in-flight ordering between the two styles
        stays consistent.  With a fault filter installed, an unreachable
        pair raises :class:`DeliveryError` (before any egress state is
        touched) and a degraded link adds its latency penalty.
        """
        extra = 0.0
        fault = self.fault
        if fault is not None:
            extra = fault.hop_penalty_ms(src, dst)  # raises DeliveryError
        now = self.sim.now
        record = self._egress.get(src)
        if record is None:
            record = self._egress_record(src)
        free = record[1]
        finish = (now if now > free else free) + size_bytes * record[0]
        record[1] = finish
        latency = self.latency
        if type(latency) is LatencyModel:  # open-coded default model
            deliver_at = finish + extra + (
                latency.same_host_ms if src == dst else latency.lan_ms
            )
        else:
            deliver_at = finish + extra + latency.latency_ms(src, dst)
        last_by_dst = record[2]
        last = last_by_dst.get(dst, 0.0)
        if deliver_at < last:
            deliver_at = last
        last_by_dst[dst] = deliver_at
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        return deliver_at - now

    def delay_signal(self, src: str, dst: str, size_bytes: int = 256) -> "Signal":
        """A signal firing when a message of ``size_bytes`` would arrive.

        Signal-object variant of :meth:`delay_ms`, for callers that need
        a waitable to combine or hand around.
        """
        signal = Signal(self.sim, "net")
        self.sim.schedule(self.delay_ms(src, dst, size_bytes), signal.succeed, None)
        return signal
